#!/usr/bin/env bash
# Run every feature-gated property-test suite with the real `proptest`
# crate. The workspace itself is registry-free (the default build
# environment is offline), so this script adds the dev-dependency on the
# fly, runs the suites, and restores the manifests afterwards. The nightly
# CI job (`property-tests` in .github/workflows/ci.yml) calls this.
#
# Usage:
#   scripts/proptests.sh                 # all suites, default case count
#   PROPTEST_CASES=2048 scripts/proptests.sh
set -uo pipefail
cd "$(dirname "$0")/.."

# Crates whose tests/ hold a `#![cfg(feature = "proptest-tests")]` suite.
CRATES=(siesta-grammar siesta-proxy siesta-trace siesta-perfmodel siesta-codegen siesta-mpisim)

# Network is required once here; everything else in this repo stays offline.
export CARGO_NET_OFFLINE=false
for crate in "${CRATES[@]}"; do
  cargo add proptest@1 --dev --package "$crate" --quiet || {
    echo "error: could not add the proptest dev-dependency (no network?)" >&2
    exit 2
  }
done

restore_manifests() {
  git checkout --quiet -- 'crates/*/Cargo.toml' Cargo.lock 2>/dev/null || true
}
trap restore_manifests EXIT

status=0
for crate in "${CRATES[@]}"; do
  echo "=== property tests: $crate ==="
  if ! cargo test --package "$crate" --features proptest-tests; then
    status=1
    cat >&2 <<EOF
----------------------------------------------------------------------
FAILED: $crate property tests.
proptest printed the shrunken counterexample and its seed above, and
persisted the seed under crates/${crate#siesta-}/proptest-regressions/.
Replay deterministically (regressions always re-run first):

    scripts/proptests.sh

Commit the new proptest-regressions/ file together with the fix so the
case stays covered forever.
----------------------------------------------------------------------
EOF
  fi
done
exit $status
