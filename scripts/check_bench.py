#!/usr/bin/env python3
"""Gate benchmark results against their recorded budgets.

Reads one or more BENCH_*.json files produced by the siesta-bench
harnesses and fails (exit 1) if any measured value violates its budget.

Two formats are understood:

* Legacy (no ``version`` key, e.g. BENCH_obs.json): every top-level key
  ``<metric>_pct`` with a sibling ``budget_<metric>_pct`` gates as
  ``metric <= budget``.
* Format v2 (``"version": 2``, e.g. BENCH_grammar.json): top-level
  ``budget_min_<metric>`` / ``budget_max_<metric>`` keys gate the
  sibling ``<metric>``, and each entry of ``points`` may carry
  ``budget_max_mean_ms`` (gates its ``mean_ms``) and
  ``budget_min_speedup_vs_1`` (gates its ``speedup_vs_1``). Speedup
  budgets on points whose ``threads`` exceeds the file's
  ``host_parallelism`` are *skipped* — a single-core recording host
  cannot exhibit parallel speedup; the gate arms itself automatically
  where the cores exist.

Usage:
    scripts/check_bench.py BENCH_obs.json BENCH_grammar.json
    scripts/check_bench.py --slack 4.0 BENCH_obs_quick.json

``--slack`` loosens every budget (upper bounds are multiplied by it,
lower bounds divided) — CI smoke runs on shared, noisy runners gate
loosely; the checked-in full results gate at 1.0 (exact).
"""

import argparse
import json
import sys


def gate(path: str, label: str, measured: float, budget: float, slack: float,
         minimum: bool, violations: list[str]) -> None:
    """One budget comparison: print a line, record a violation on FAIL."""
    if minimum:
        eff = budget / slack
        ok = measured >= eff
        op = ">="
    else:
        eff = budget * slack
        ok = measured <= eff
        op = "<="
    status = "ok" if ok else "FAIL"
    print(
        f"{path}: {label:<44} {measured:9.4f} {op} {eff:9.4f}"
        f" (budget {budget:.4f} @ slack {slack:g})  {status}"
    )
    if not ok:
        violations.append(
            f"{path}: {label} = {measured:.4f} violates {op} "
            f"{budget:.4f} @ slack {slack:g} = {eff:.4f}"
        )


def check_legacy(path: str, data: dict, slack: float) -> list[str]:
    violations: list[str] = []
    checked = 0
    for key, value in sorted(data.items()):
        if not key.startswith("budget_") or not key.endswith("_pct"):
            continue
        metric = key[len("budget_"):]
        if metric not in data:
            violations.append(f"{path}: {key} has no measured {metric}")
            continue
        checked += 1
        gate(path, metric, float(data[metric]), float(value), slack, False, violations)
    if checked == 0:
        violations.append(f"{path}: no budget_*_pct keys found — nothing gated")
    return violations


def check_v2(path: str, data: dict, slack: float) -> list[str]:
    violations: list[str] = []
    checked = 0
    host_par = int(data.get("host_parallelism", 1))

    for key, value in sorted(data.items()):
        for prefix, minimum in (("budget_min_", True), ("budget_max_", False)):
            if not key.startswith(prefix):
                continue
            metric = key[len(prefix):]
            if metric not in data:
                violations.append(f"{path}: {key} has no measured {metric}")
                continue
            checked += 1
            gate(path, metric, float(data[metric]), float(value), slack, minimum, violations)

    for point in data.get("points", []):
        phase = point.get("phase", "?")
        tag = f"@{point['threads']}t" if "threads" in point else ""
        memo = {True: ":memo", False: ":raw"}.get(point.get("memo"), "")
        label = f"{phase}{memo}{tag}"
        if "budget_max_mean_ms" in point:
            checked += 1
            gate(path, f"{label} mean_ms", float(point["mean_ms"]),
                 float(point["budget_max_mean_ms"]), slack, False, violations)
        if "budget_min_speedup_vs_1" in point:
            if int(point.get("threads", 1)) > host_par:
                print(
                    f"{path}: {label + ' speedup_vs_1':<44} skipped"
                    f" (threads {point['threads']} > host_parallelism {host_par})"
                )
                continue
            checked += 1
            gate(path, f"{label} speedup_vs_1", float(point["speedup_vs_1"]),
                 float(point["budget_min_speedup_vs_1"]), slack, True, violations)

    if checked == 0:
        violations.append(f"{path}: no budget keys found — nothing gated")
    return violations


def check_file(path: str, slack: float) -> list[str]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("version") == 2:
        return check_v2(path, data, slack)
    return check_legacy(path, data, slack)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to gate")
    parser.add_argument(
        "--slack",
        type=float,
        default=1.0,
        help="multiply every budget by this factor (default 1.0)",
    )
    args = parser.parse_args()
    if args.slack <= 0:
        parser.error("--slack must be positive")

    violations = []
    for path in args.files:
        try:
            violations.extend(check_file(path, args.slack))
        except (OSError, json.JSONDecodeError) as e:
            violations.append(f"{path}: {e}")

    if violations:
        print("\nbench gate FAILED:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
