#!/usr/bin/env python3
"""Gate benchmark results against their recorded budgets.

Reads one or more BENCH_*.json files produced by the siesta-bench
harnesses and fails (exit 1) if any measured value exceeds its budget.
Currently gated pairs, matched by naming convention: every key
``<metric>_pct`` with a sibling ``budget_<metric>_pct``.

Usage:
    scripts/check_bench.py BENCH_obs.json
    scripts/check_bench.py --slack 4.0 BENCH_obs_quick.json

``--slack`` multiplies every budget — CI smoke runs on shared, noisy
runners gate loosely; the checked-in full results gate at 1.0 (exact).
"""

import argparse
import json
import sys


def check_file(path: str, slack: float) -> list[str]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    violations = []
    checked = 0
    for key, value in sorted(data.items()):
        if not key.startswith("budget_") or not key.endswith("_pct"):
            continue
        metric = key[len("budget_"):]
        if metric not in data:
            violations.append(f"{path}: {key} has no measured {metric}")
            continue
        measured = float(data[metric])
        budget = float(value) * slack
        checked += 1
        status = "ok" if measured <= budget else "FAIL"
        print(
            f"{path}: {metric:<24} {measured:8.4f} <= {budget:8.4f}"
            f" (budget {float(value):.4f} x slack {slack:g})  {status}"
        )
        if measured > budget:
            violations.append(
                f"{path}: {metric} = {measured:.4f} exceeds budget"
                f" {float(value):.4f} x slack {slack:g} = {budget:.4f}"
            )
    if checked == 0:
        violations.append(f"{path}: no budget_*_pct keys found — nothing gated")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to gate")
    parser.add_argument(
        "--slack",
        type=float,
        default=1.0,
        help="multiply every budget by this factor (default 1.0)",
    )
    args = parser.parse_args()
    if args.slack <= 0:
        parser.error("--slack must be positive")

    violations = []
    for path in args.files:
        try:
            violations.extend(check_file(path, args.slack))
        except (OSError, json.JSONDecodeError) as e:
            violations.append(f"{path}: {e}")

    if violations:
        print("\nbench gate FAILED:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
