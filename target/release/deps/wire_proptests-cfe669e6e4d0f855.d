/root/repo/target/release/deps/wire_proptests-cfe669e6e4d0f855.d: crates/codegen/tests/wire_proptests.rs

/root/repo/target/release/deps/wire_proptests-cfe669e6e4d0f855: crates/codegen/tests/wire_proptests.rs

crates/codegen/tests/wire_proptests.rs:
