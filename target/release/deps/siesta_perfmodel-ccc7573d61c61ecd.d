/root/repo/target/release/deps/siesta_perfmodel-ccc7573d61c61ecd.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

/root/repo/target/release/deps/libsiesta_perfmodel-ccc7573d61c61ecd.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

/root/repo/target/release/deps/libsiesta_perfmodel-ccc7573d61c61ecd.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/counters.rs:
crates/perfmodel/src/cpu.rs:
crates/perfmodel/src/flavor.rs:
crates/perfmodel/src/kernel.rs:
crates/perfmodel/src/net.rs:
crates/perfmodel/src/noise.rs:
crates/perfmodel/src/platform.rs:
