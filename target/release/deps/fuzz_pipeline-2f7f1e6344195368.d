/root/repo/target/release/deps/fuzz_pipeline-2f7f1e6344195368.d: crates/core/tests/fuzz_pipeline.rs

/root/repo/target/release/deps/fuzz_pipeline-2f7f1e6344195368: crates/core/tests/fuzz_pipeline.rs

crates/core/tests/fuzz_pipeline.rs:
