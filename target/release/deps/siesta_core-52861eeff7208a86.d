/root/repo/target/release/deps/siesta_core-52861eeff7208a86.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/siesta_core-52861eeff7208a86: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
