/root/repo/target/release/deps/siesta_obs-0929a7d302b17324.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/siesta_obs-0929a7d302b17324: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
