/root/repo/target/release/deps/baseline_contrasts-2203cd92fd882772.d: crates/bench/../../tests/baseline_contrasts.rs

/root/repo/target/release/deps/baseline_contrasts-2203cd92fd882772: crates/bench/../../tests/baseline_contrasts.rs

crates/bench/../../tests/baseline_contrasts.rs:
