/root/repo/target/release/deps/siesta_baselines-378433bff594f18d.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/siesta_baselines-378433bff594f18d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
