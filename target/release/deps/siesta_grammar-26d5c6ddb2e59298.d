/root/repo/target/release/deps/siesta_grammar-26d5c6ddb2e59298.d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/release/deps/siesta_grammar-26d5c6ddb2e59298: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

crates/grammar/src/lib.rs:
crates/grammar/src/cluster.rs:
crates/grammar/src/grammar.rs:
crates/grammar/src/lcs.rs:
crates/grammar/src/merge.rs:
crates/grammar/src/sequitur.rs:
crates/grammar/src/stats.rs:
crates/grammar/src/symbol.rs:
