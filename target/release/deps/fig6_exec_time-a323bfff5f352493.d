/root/repo/target/release/deps/fig6_exec_time-a323bfff5f352493.d: crates/bench/benches/fig6_exec_time.rs

/root/repo/target/release/deps/fig6_exec_time-a323bfff5f352493: crates/bench/benches/fig6_exec_time.rs

crates/bench/benches/fig6_exec_time.rs:
