/root/repo/target/release/deps/world_semantics-43b0f31b764e8817.d: crates/mpisim/tests/world_semantics.rs

/root/repo/target/release/deps/world_semantics-43b0f31b764e8817: crates/mpisim/tests/world_semantics.rs

crates/mpisim/tests/world_semantics.rs:
