/root/repo/target/release/deps/fig5_event_sequence-8d75fde69dd502b9.d: crates/bench/benches/fig5_event_sequence.rs

/root/repo/target/release/deps/fig5_event_sequence-8d75fde69dd502b9: crates/bench/benches/fig5_event_sequence.rs

crates/bench/benches/fig5_event_sequence.rs:
