/root/repo/target/release/deps/portability-f145f43eeb54d594.d: crates/bench/../../tests/portability.rs

/root/repo/target/release/deps/portability-f145f43eeb54d594: crates/bench/../../tests/portability.rs

crates/bench/../../tests/portability.rs:
