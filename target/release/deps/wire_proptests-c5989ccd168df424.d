/root/repo/target/release/deps/wire_proptests-c5989ccd168df424.d: crates/codegen/tests/wire_proptests.rs

/root/repo/target/release/deps/wire_proptests-c5989ccd168df424: crates/codegen/tests/wire_proptests.rs

crates/codegen/tests/wire_proptests.rs:
