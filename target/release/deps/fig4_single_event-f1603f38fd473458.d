/root/repo/target/release/deps/fig4_single_event-f1603f38fd473458.d: crates/bench/benches/fig4_single_event.rs

/root/repo/target/release/deps/fig4_single_event-f1603f38fd473458: crates/bench/benches/fig4_single_event.rs

crates/bench/benches/fig4_single_event.rs:
