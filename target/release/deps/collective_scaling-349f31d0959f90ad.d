/root/repo/target/release/deps/collective_scaling-349f31d0959f90ad.d: crates/mpisim/tests/collective_scaling.rs

/root/repo/target/release/deps/collective_scaling-349f31d0959f90ad: crates/mpisim/tests/collective_scaling.rs

crates/mpisim/tests/collective_scaling.rs:
