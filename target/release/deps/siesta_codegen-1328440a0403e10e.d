/root/repo/target/release/deps/siesta_codegen-1328440a0403e10e.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-1328440a0403e10e.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-1328440a0403e10e.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
