/root/repo/target/release/deps/siesta-bbeb28c3779fcd60.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/siesta-bbeb28c3779fcd60: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
