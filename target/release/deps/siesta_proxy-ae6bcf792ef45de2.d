/root/repo/target/release/deps/siesta_proxy-ae6bcf792ef45de2.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/release/deps/siesta_proxy-ae6bcf792ef45de2: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
