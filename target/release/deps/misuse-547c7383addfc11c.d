/root/repo/target/release/deps/misuse-547c7383addfc11c.d: crates/mpisim/tests/misuse.rs

/root/repo/target/release/deps/misuse-547c7383addfc11c: crates/mpisim/tests/misuse.rs

crates/mpisim/tests/misuse.rs:
