/root/repo/target/release/deps/siesta_baselines-ea3a3e09de26036e.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-ea3a3e09de26036e.rlib: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-ea3a3e09de26036e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
