/root/repo/target/release/deps/fig9_platform_ab-3eb1eb205304a1ad.d: crates/bench/benches/fig9_platform_ab.rs

/root/repo/target/release/deps/fig9_platform_ab-3eb1eb205304a1ad: crates/bench/benches/fig9_platform_ab.rs

crates/bench/benches/fig9_platform_ab.rs:
