/root/repo/target/release/deps/siesta_workloads-43b0d55c0f00034a.d: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

/root/repo/target/release/deps/libsiesta_workloads-43b0d55c0f00034a.rlib: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

/root/repo/target/release/deps/libsiesta_workloads-43b0d55c0f00034a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cg.rs:
crates/workloads/src/flash.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/is.rs:
crates/workloads/src/lu.rs:
crates/workloads/src/mg.rs:
crates/workloads/src/npb_adi.rs:
crates/workloads/src/sweep3d.rs:
