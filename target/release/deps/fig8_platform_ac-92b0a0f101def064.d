/root/repo/target/release/deps/fig8_platform_ac-92b0a0f101def064.d: crates/bench/benches/fig8_platform_ac.rs

/root/repo/target/release/deps/fig8_platform_ac-92b0a0f101def064: crates/bench/benches/fig8_platform_ac.rs

crates/bench/benches/fig8_platform_ac.rs:
