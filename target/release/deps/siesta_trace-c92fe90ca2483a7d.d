/root/repo/target/release/deps/siesta_trace-c92fe90ca2483a7d.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libsiesta_trace-c92fe90ca2483a7d.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libsiesta_trace-c92fe90ca2483a7d.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
