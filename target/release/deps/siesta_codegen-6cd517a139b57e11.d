/root/repo/target/release/deps/siesta_codegen-6cd517a139b57e11.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-6cd517a139b57e11.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-6cd517a139b57e11.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
