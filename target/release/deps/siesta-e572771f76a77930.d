/root/repo/target/release/deps/siesta-e572771f76a77930.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/siesta-e572771f76a77930: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
