/root/repo/target/release/deps/proptests-dae27a4195a162e3.d: crates/grammar/tests/proptests.rs

/root/repo/target/release/deps/proptests-dae27a4195a162e3: crates/grammar/tests/proptests.rs

crates/grammar/tests/proptests.rs:
