/root/repo/target/release/deps/siesta_proxy-ea2b519da3a4b180.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/release/deps/libsiesta_proxy-ea2b519da3a4b180.rlib: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/release/deps/libsiesta_proxy-ea2b519da3a4b180.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
