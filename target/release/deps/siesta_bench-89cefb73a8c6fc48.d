/root/repo/target/release/deps/siesta_bench-89cefb73a8c6fc48.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-89cefb73a8c6fc48.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-89cefb73a8c6fc48.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
