/root/repo/target/release/deps/siesta_baselines-8f56ab2c11b9529e.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-8f56ab2c11b9529e.rlib: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-8f56ab2c11b9529e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
