/root/repo/target/release/deps/siesta_core-65c1a2900ae66fa8.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/siesta_core-65c1a2900ae66fa8: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
