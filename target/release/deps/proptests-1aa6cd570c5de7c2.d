/root/repo/target/release/deps/proptests-1aa6cd570c5de7c2.d: crates/trace/tests/proptests.rs

/root/repo/target/release/deps/proptests-1aa6cd570c5de7c2: crates/trace/tests/proptests.rs

crates/trace/tests/proptests.rs:
