/root/repo/target/release/deps/proptests-e6ce1953a4a38d7e.d: crates/proxy/tests/proptests.rs

/root/repo/target/release/deps/proptests-e6ce1953a4a38d7e: crates/proxy/tests/proptests.rs

crates/proxy/tests/proptests.rs:
