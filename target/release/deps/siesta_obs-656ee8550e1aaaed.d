/root/repo/target/release/deps/siesta_obs-656ee8550e1aaaed.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libsiesta_obs-656ee8550e1aaaed.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libsiesta_obs-656ee8550e1aaaed.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
