/root/repo/target/release/deps/end_to_end-c0b085dc66efbbfc.d: crates/core/tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-c0b085dc66efbbfc: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
