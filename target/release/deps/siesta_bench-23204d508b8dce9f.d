/root/repo/target/release/deps/siesta_bench-23204d508b8dce9f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-23204d508b8dce9f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-23204d508b8dce9f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
