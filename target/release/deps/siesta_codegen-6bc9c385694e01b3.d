/root/repo/target/release/deps/siesta_codegen-6bc9c385694e01b3.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/siesta_codegen-6bc9c385694e01b3: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
