/root/repo/target/release/deps/siesta_bench-69c0a174bb2c99d4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/siesta_bench-69c0a174bb2c99d4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
