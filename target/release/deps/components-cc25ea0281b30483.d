/root/repo/target/release/deps/components-cc25ea0281b30483.d: crates/bench/benches/components.rs

/root/repo/target/release/deps/components-cc25ea0281b30483: crates/bench/benches/components.rs

crates/bench/benches/components.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
