/root/repo/target/release/deps/cli_integration-59a7dd08abff2742.d: crates/cli/tests/cli_integration.rs

/root/repo/target/release/deps/cli_integration-59a7dd08abff2742: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:

# env-dep:CARGO_BIN_EXE_siesta=/root/repo/target/release/siesta
