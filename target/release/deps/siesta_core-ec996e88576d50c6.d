/root/repo/target/release/deps/siesta_core-ec996e88576d50c6.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-ec996e88576d50c6.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-ec996e88576d50c6.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
