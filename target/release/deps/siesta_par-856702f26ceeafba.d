/root/repo/target/release/deps/siesta_par-856702f26ceeafba.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libsiesta_par-856702f26ceeafba.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libsiesta_par-856702f26ceeafba.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
