/root/repo/target/release/deps/collective_scaling-bf3ad1642c4fb201.d: crates/mpisim/tests/collective_scaling.rs

/root/repo/target/release/deps/collective_scaling-bf3ad1642c4fb201: crates/mpisim/tests/collective_scaling.rs

crates/mpisim/tests/collective_scaling.rs:
