/root/repo/target/release/deps/table3-b03668ed39f27d26.d: crates/bench/benches/table3.rs

/root/repo/target/release/deps/table3-b03668ed39f27d26: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
