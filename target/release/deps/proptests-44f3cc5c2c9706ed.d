/root/repo/target/release/deps/proptests-44f3cc5c2c9706ed.d: crates/proxy/tests/proptests.rs

/root/repo/target/release/deps/proptests-44f3cc5c2c9706ed: crates/proxy/tests/proptests.rs

crates/proxy/tests/proptests.rs:
