/root/repo/target/release/deps/proptests-43b29535fc34e4a0.d: crates/grammar/tests/proptests.rs

/root/repo/target/release/deps/proptests-43b29535fc34e4a0: crates/grammar/tests/proptests.rs

crates/grammar/tests/proptests.rs:
