/root/repo/target/release/deps/world_semantics-09b18a42f66e1957.d: crates/mpisim/tests/world_semantics.rs

/root/repo/target/release/deps/world_semantics-09b18a42f66e1957: crates/mpisim/tests/world_semantics.rs

crates/mpisim/tests/world_semantics.rs:
