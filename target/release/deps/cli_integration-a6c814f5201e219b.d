/root/repo/target/release/deps/cli_integration-a6c814f5201e219b.d: crates/cli/tests/cli_integration.rs

/root/repo/target/release/deps/cli_integration-a6c814f5201e219b: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:

# env-dep:CARGO_BIN_EXE_siesta=/root/repo/target/release/siesta
