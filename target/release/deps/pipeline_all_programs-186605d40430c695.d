/root/repo/target/release/deps/pipeline_all_programs-186605d40430c695.d: crates/bench/../../tests/pipeline_all_programs.rs

/root/repo/target/release/deps/pipeline_all_programs-186605d40430c695: crates/bench/../../tests/pipeline_all_programs.rs

crates/bench/../../tests/pipeline_all_programs.rs:
