/root/repo/target/release/deps/proptests-4c987dec662035c5.d: crates/perfmodel/tests/proptests.rs

/root/repo/target/release/deps/proptests-4c987dec662035c5: crates/perfmodel/tests/proptests.rs

crates/perfmodel/tests/proptests.rs:
