/root/repo/target/release/deps/siesta_bench-48586b7ccd8c332e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-48586b7ccd8c332e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsiesta_bench-48586b7ccd8c332e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
