/root/repo/target/release/deps/siesta_core-26388f1028049683.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-26388f1028049683.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-26388f1028049683.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
