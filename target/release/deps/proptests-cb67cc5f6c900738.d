/root/repo/target/release/deps/proptests-cb67cc5f6c900738.d: crates/trace/tests/proptests.rs

/root/repo/target/release/deps/proptests-cb67cc5f6c900738: crates/trace/tests/proptests.rs

crates/trace/tests/proptests.rs:
