/root/repo/target/release/deps/siesta_bench-ab3b0164863427d7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/siesta_bench-ab3b0164863427d7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
