/root/repo/target/release/deps/siesta-41102668aa8c7384.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/siesta-41102668aa8c7384: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
