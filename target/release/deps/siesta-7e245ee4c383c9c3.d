/root/repo/target/release/deps/siesta-7e245ee4c383c9c3.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/siesta-7e245ee4c383c9c3: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
