/root/repo/target/release/deps/siesta_baselines-54ff9303db554295.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/siesta_baselines-54ff9303db554295: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
