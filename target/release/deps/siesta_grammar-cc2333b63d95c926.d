/root/repo/target/release/deps/siesta_grammar-cc2333b63d95c926.d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/release/deps/libsiesta_grammar-cc2333b63d95c926.rlib: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/release/deps/libsiesta_grammar-cc2333b63d95c926.rmeta: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

crates/grammar/src/lib.rs:
crates/grammar/src/cluster.rs:
crates/grammar/src/grammar.rs:
crates/grammar/src/lcs.rs:
crates/grammar/src/merge.rs:
crates/grammar/src/sequitur.rs:
crates/grammar/src/stats.rs:
crates/grammar/src/symbol.rs:
