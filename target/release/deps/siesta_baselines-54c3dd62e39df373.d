/root/repo/target/release/deps/siesta_baselines-54c3dd62e39df373.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-54c3dd62e39df373.rlib: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/release/deps/libsiesta_baselines-54c3dd62e39df373.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
