/root/repo/target/release/deps/pipeline_all_programs-a9483e33abbf6d2e.d: crates/bench/../../tests/pipeline_all_programs.rs

/root/repo/target/release/deps/pipeline_all_programs-a9483e33abbf6d2e: crates/bench/../../tests/pipeline_all_programs.rs

crates/bench/../../tests/pipeline_all_programs.rs:
