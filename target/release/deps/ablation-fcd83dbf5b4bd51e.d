/root/repo/target/release/deps/ablation-fcd83dbf5b4bd51e.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-fcd83dbf5b4bd51e: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
