/root/repo/target/release/deps/portability-3b4cc6accabd4f48.d: crates/bench/../../tests/portability.rs

/root/repo/target/release/deps/portability-3b4cc6accabd4f48: crates/bench/../../tests/portability.rs

crates/bench/../../tests/portability.rs:
