/root/repo/target/release/deps/siesta_proxy-7d57da270e137583.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/release/deps/libsiesta_proxy-7d57da270e137583.rlib: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/release/deps/libsiesta_proxy-7d57da270e137583.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
