/root/repo/target/release/deps/fuzz_pipeline-7d97d7c7a2eea89b.d: crates/core/tests/fuzz_pipeline.rs

/root/repo/target/release/deps/fuzz_pipeline-7d97d7c7a2eea89b: crates/core/tests/fuzz_pipeline.rs

crates/core/tests/fuzz_pipeline.rs:
