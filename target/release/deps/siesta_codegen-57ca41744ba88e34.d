/root/repo/target/release/deps/siesta_codegen-57ca41744ba88e34.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-57ca41744ba88e34.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/release/deps/libsiesta_codegen-57ca41744ba88e34.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
