/root/repo/target/release/deps/misuse-acd1fbe3467fd36c.d: crates/mpisim/tests/misuse.rs

/root/repo/target/release/deps/misuse-acd1fbe3467fd36c: crates/mpisim/tests/misuse.rs

crates/mpisim/tests/misuse.rs:
