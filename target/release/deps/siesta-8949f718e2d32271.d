/root/repo/target/release/deps/siesta-8949f718e2d32271.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/siesta-8949f718e2d32271: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
