/root/repo/target/release/deps/siesta_mpisim-a6aad205a82151a9.d: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

/root/repo/target/release/deps/siesta_mpisim-a6aad205a82151a9: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/collectives.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/engine.rs:
crates/mpisim/src/hook.rs:
crates/mpisim/src/message.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/request.rs:
crates/mpisim/src/world.rs:
