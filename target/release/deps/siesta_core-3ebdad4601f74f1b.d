/root/repo/target/release/deps/siesta_core-3ebdad4601f74f1b.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-3ebdad4601f74f1b.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libsiesta_core-3ebdad4601f74f1b.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
