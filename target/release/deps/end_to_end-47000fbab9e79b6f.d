/root/repo/target/release/deps/end_to_end-47000fbab9e79b6f.d: crates/core/tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-47000fbab9e79b6f: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
