/root/repo/target/release/deps/siesta_perfmodel-4b842963ea3ed795.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

/root/repo/target/release/deps/siesta_perfmodel-4b842963ea3ed795: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/counters.rs:
crates/perfmodel/src/cpu.rs:
crates/perfmodel/src/flavor.rs:
crates/perfmodel/src/kernel.rs:
crates/perfmodel/src/net.rs:
crates/perfmodel/src/noise.rs:
crates/perfmodel/src/platform.rs:
