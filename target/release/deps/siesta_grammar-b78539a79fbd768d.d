/root/repo/target/release/deps/siesta_grammar-b78539a79fbd768d.d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/release/deps/siesta_grammar-b78539a79fbd768d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

crates/grammar/src/lib.rs:
crates/grammar/src/cluster.rs:
crates/grammar/src/grammar.rs:
crates/grammar/src/lcs.rs:
crates/grammar/src/merge.rs:
crates/grammar/src/sequitur.rs:
crates/grammar/src/stats.rs:
crates/grammar/src/symbol.rs:
