/root/repo/target/release/deps/fig7_mpi_impls-9c1fd925d3804929.d: crates/bench/benches/fig7_mpi_impls.rs

/root/repo/target/release/deps/fig7_mpi_impls-9c1fd925d3804929: crates/bench/benches/fig7_mpi_impls.rs

crates/bench/benches/fig7_mpi_impls.rs:
