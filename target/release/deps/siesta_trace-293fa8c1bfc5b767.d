/root/repo/target/release/deps/siesta_trace-293fa8c1bfc5b767.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libsiesta_trace-293fa8c1bfc5b767.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libsiesta_trace-293fa8c1bfc5b767.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
