/root/repo/target/release/deps/components-0a6d6e43645d1397.d: crates/bench/benches/components.rs

/root/repo/target/release/deps/components-0a6d6e43645d1397: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
