/root/repo/target/release/deps/baseline_contrasts-309657fe139ef7da.d: crates/bench/../../tests/baseline_contrasts.rs

/root/repo/target/release/deps/baseline_contrasts-309657fe139ef7da: crates/bench/../../tests/baseline_contrasts.rs

crates/bench/../../tests/baseline_contrasts.rs:
