/root/repo/target/release/examples/sweep3d_proxy-eb172c4850484d4d.d: crates/core/../../examples/sweep3d_proxy.rs

/root/repo/target/release/examples/sweep3d_proxy-eb172c4850484d4d: crates/core/../../examples/sweep3d_proxy.rs

crates/core/../../examples/sweep3d_proxy.rs:
