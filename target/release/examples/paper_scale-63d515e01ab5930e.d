/root/repo/target/release/examples/paper_scale-63d515e01ab5930e.d: crates/bench/examples/paper_scale.rs

/root/repo/target/release/examples/paper_scale-63d515e01ab5930e: crates/bench/examples/paper_scale.rs

crates/bench/examples/paper_scale.rs:
