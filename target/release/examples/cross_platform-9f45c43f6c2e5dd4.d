/root/repo/target/release/examples/cross_platform-9f45c43f6c2e5dd4.d: crates/core/../../examples/cross_platform.rs

/root/repo/target/release/examples/cross_platform-9f45c43f6c2e5dd4: crates/core/../../examples/cross_platform.rs

crates/core/../../examples/cross_platform.rs:
