/root/repo/target/release/examples/sweep3d_proxy-a4b5fbc8224b814e.d: crates/core/../../examples/sweep3d_proxy.rs

/root/repo/target/release/examples/sweep3d_proxy-a4b5fbc8224b814e: crates/core/../../examples/sweep3d_proxy.rs

crates/core/../../examples/sweep3d_proxy.rs:
