/root/repo/target/release/examples/quickstart-1e4be0fefaac49ba.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1e4be0fefaac49ba: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
