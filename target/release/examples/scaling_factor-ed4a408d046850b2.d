/root/repo/target/release/examples/scaling_factor-ed4a408d046850b2.d: crates/core/../../examples/scaling_factor.rs

/root/repo/target/release/examples/scaling_factor-ed4a408d046850b2: crates/core/../../examples/scaling_factor.rs

crates/core/../../examples/scaling_factor.rs:
