/root/repo/target/release/examples/dbg_flash-2601437bc1ac6490.d: crates/core/examples/dbg_flash.rs

/root/repo/target/release/examples/dbg_flash-2601437bc1ac6490: crates/core/examples/dbg_flash.rs

crates/core/examples/dbg_flash.rs:
