/root/repo/target/release/examples/scaling_factor-5b6a7b852ed95534.d: crates/core/../../examples/scaling_factor.rs

/root/repo/target/release/examples/scaling_factor-5b6a7b852ed95534: crates/core/../../examples/scaling_factor.rs

crates/core/../../examples/scaling_factor.rs:
