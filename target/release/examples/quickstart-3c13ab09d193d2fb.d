/root/repo/target/release/examples/quickstart-3c13ab09d193d2fb.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3c13ab09d193d2fb: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
