/root/repo/target/release/examples/dbg_flash-d9a878f5faab37bf.d: crates/core/examples/dbg_flash.rs

/root/repo/target/release/examples/dbg_flash-d9a878f5faab37bf: crates/core/examples/dbg_flash.rs

crates/core/examples/dbg_flash.rs:
