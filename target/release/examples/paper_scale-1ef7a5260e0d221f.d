/root/repo/target/release/examples/paper_scale-1ef7a5260e0d221f.d: crates/bench/examples/paper_scale.rs

/root/repo/target/release/examples/paper_scale-1ef7a5260e0d221f: crates/bench/examples/paper_scale.rs

crates/bench/examples/paper_scale.rs:
