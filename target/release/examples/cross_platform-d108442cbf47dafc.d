/root/repo/target/release/examples/cross_platform-d108442cbf47dafc.d: crates/core/../../examples/cross_platform.rs

/root/repo/target/release/examples/cross_platform-d108442cbf47dafc: crates/core/../../examples/cross_platform.rs

crates/core/../../examples/cross_platform.rs:
