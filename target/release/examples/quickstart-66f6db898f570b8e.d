/root/repo/target/release/examples/quickstart-66f6db898f570b8e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-66f6db898f570b8e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
