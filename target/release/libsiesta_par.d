/root/repo/target/release/libsiesta_par.rlib: /root/repo/crates/par/src/lib.rs
