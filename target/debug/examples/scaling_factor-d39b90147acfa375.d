/root/repo/target/debug/examples/scaling_factor-d39b90147acfa375.d: crates/core/../../examples/scaling_factor.rs

/root/repo/target/debug/examples/scaling_factor-d39b90147acfa375: crates/core/../../examples/scaling_factor.rs

crates/core/../../examples/scaling_factor.rs:
