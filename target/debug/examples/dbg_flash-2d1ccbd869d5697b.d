/root/repo/target/debug/examples/dbg_flash-2d1ccbd869d5697b.d: crates/core/examples/dbg_flash.rs Cargo.toml

/root/repo/target/debug/examples/libdbg_flash-2d1ccbd869d5697b.rmeta: crates/core/examples/dbg_flash.rs Cargo.toml

crates/core/examples/dbg_flash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
