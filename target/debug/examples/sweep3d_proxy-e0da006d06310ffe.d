/root/repo/target/debug/examples/sweep3d_proxy-e0da006d06310ffe.d: crates/core/../../examples/sweep3d_proxy.rs

/root/repo/target/debug/examples/sweep3d_proxy-e0da006d06310ffe: crates/core/../../examples/sweep3d_proxy.rs

crates/core/../../examples/sweep3d_proxy.rs:
