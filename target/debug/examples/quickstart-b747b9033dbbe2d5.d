/root/repo/target/debug/examples/quickstart-b747b9033dbbe2d5.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b747b9033dbbe2d5.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
