/root/repo/target/debug/examples/paper_scale-a051cb3dcb565a45.d: crates/bench/examples/paper_scale.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_scale-a051cb3dcb565a45.rmeta: crates/bench/examples/paper_scale.rs Cargo.toml

crates/bench/examples/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
