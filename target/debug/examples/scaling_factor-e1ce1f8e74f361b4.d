/root/repo/target/debug/examples/scaling_factor-e1ce1f8e74f361b4.d: crates/core/../../examples/scaling_factor.rs

/root/repo/target/debug/examples/scaling_factor-e1ce1f8e74f361b4: crates/core/../../examples/scaling_factor.rs

crates/core/../../examples/scaling_factor.rs:
