/root/repo/target/debug/examples/quickstart-d9b878582e9eaf1e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d9b878582e9eaf1e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
