/root/repo/target/debug/examples/cross_platform-68eb55e0f8b970f5.d: crates/core/../../examples/cross_platform.rs Cargo.toml

/root/repo/target/debug/examples/libcross_platform-68eb55e0f8b970f5.rmeta: crates/core/../../examples/cross_platform.rs Cargo.toml

crates/core/../../examples/cross_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
