/root/repo/target/debug/examples/quickstart-d14eb7dc4a247c9b.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d14eb7dc4a247c9b.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
