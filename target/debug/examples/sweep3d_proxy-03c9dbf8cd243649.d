/root/repo/target/debug/examples/sweep3d_proxy-03c9dbf8cd243649.d: crates/core/../../examples/sweep3d_proxy.rs

/root/repo/target/debug/examples/sweep3d_proxy-03c9dbf8cd243649: crates/core/../../examples/sweep3d_proxy.rs

crates/core/../../examples/sweep3d_proxy.rs:
