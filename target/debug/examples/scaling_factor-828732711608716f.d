/root/repo/target/debug/examples/scaling_factor-828732711608716f.d: crates/core/../../examples/scaling_factor.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_factor-828732711608716f.rmeta: crates/core/../../examples/scaling_factor.rs Cargo.toml

crates/core/../../examples/scaling_factor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
