/root/repo/target/debug/examples/sweep3d_proxy-d98d45e74e0590de.d: crates/core/../../examples/sweep3d_proxy.rs Cargo.toml

/root/repo/target/debug/examples/libsweep3d_proxy-d98d45e74e0590de.rmeta: crates/core/../../examples/sweep3d_proxy.rs Cargo.toml

crates/core/../../examples/sweep3d_proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
