/root/repo/target/debug/examples/dbg_flash-93c167edd503c163.d: crates/core/examples/dbg_flash.rs

/root/repo/target/debug/examples/dbg_flash-93c167edd503c163: crates/core/examples/dbg_flash.rs

crates/core/examples/dbg_flash.rs:
