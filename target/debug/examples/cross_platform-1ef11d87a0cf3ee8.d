/root/repo/target/debug/examples/cross_platform-1ef11d87a0cf3ee8.d: crates/core/../../examples/cross_platform.rs

/root/repo/target/debug/examples/cross_platform-1ef11d87a0cf3ee8: crates/core/../../examples/cross_platform.rs

crates/core/../../examples/cross_platform.rs:
