/root/repo/target/debug/examples/sweep3d_proxy-a8c4031e6d9e01fe.d: crates/core/../../examples/sweep3d_proxy.rs Cargo.toml

/root/repo/target/debug/examples/libsweep3d_proxy-a8c4031e6d9e01fe.rmeta: crates/core/../../examples/sweep3d_proxy.rs Cargo.toml

crates/core/../../examples/sweep3d_proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
