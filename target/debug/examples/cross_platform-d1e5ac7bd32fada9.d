/root/repo/target/debug/examples/cross_platform-d1e5ac7bd32fada9.d: crates/core/../../examples/cross_platform.rs Cargo.toml

/root/repo/target/debug/examples/libcross_platform-d1e5ac7bd32fada9.rmeta: crates/core/../../examples/cross_platform.rs Cargo.toml

crates/core/../../examples/cross_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
