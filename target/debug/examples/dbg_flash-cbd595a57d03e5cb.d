/root/repo/target/debug/examples/dbg_flash-cbd595a57d03e5cb.d: crates/core/examples/dbg_flash.rs

/root/repo/target/debug/examples/dbg_flash-cbd595a57d03e5cb: crates/core/examples/dbg_flash.rs

crates/core/examples/dbg_flash.rs:
