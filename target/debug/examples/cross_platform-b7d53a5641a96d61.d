/root/repo/target/debug/examples/cross_platform-b7d53a5641a96d61.d: crates/core/../../examples/cross_platform.rs

/root/repo/target/debug/examples/cross_platform-b7d53a5641a96d61: crates/core/../../examples/cross_platform.rs

crates/core/../../examples/cross_platform.rs:
