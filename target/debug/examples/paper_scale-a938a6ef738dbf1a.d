/root/repo/target/debug/examples/paper_scale-a938a6ef738dbf1a.d: crates/bench/examples/paper_scale.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_scale-a938a6ef738dbf1a.rmeta: crates/bench/examples/paper_scale.rs Cargo.toml

crates/bench/examples/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
