/root/repo/target/debug/examples/paper_scale-2c4f9c038afbe718.d: crates/bench/examples/paper_scale.rs

/root/repo/target/debug/examples/paper_scale-2c4f9c038afbe718: crates/bench/examples/paper_scale.rs

crates/bench/examples/paper_scale.rs:
