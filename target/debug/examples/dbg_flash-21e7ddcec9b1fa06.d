/root/repo/target/debug/examples/dbg_flash-21e7ddcec9b1fa06.d: crates/core/examples/dbg_flash.rs Cargo.toml

/root/repo/target/debug/examples/libdbg_flash-21e7ddcec9b1fa06.rmeta: crates/core/examples/dbg_flash.rs Cargo.toml

crates/core/examples/dbg_flash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
