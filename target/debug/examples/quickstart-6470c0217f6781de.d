/root/repo/target/debug/examples/quickstart-6470c0217f6781de.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6470c0217f6781de: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
