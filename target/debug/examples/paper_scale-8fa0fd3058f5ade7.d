/root/repo/target/debug/examples/paper_scale-8fa0fd3058f5ade7.d: crates/bench/examples/paper_scale.rs

/root/repo/target/debug/examples/paper_scale-8fa0fd3058f5ade7: crates/bench/examples/paper_scale.rs

crates/bench/examples/paper_scale.rs:
