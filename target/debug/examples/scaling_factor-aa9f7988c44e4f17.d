/root/repo/target/debug/examples/scaling_factor-aa9f7988c44e4f17.d: crates/core/../../examples/scaling_factor.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_factor-aa9f7988c44e4f17.rmeta: crates/core/../../examples/scaling_factor.rs Cargo.toml

crates/core/../../examples/scaling_factor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
