/root/repo/target/debug/deps/siesta_bench-863799c6d59c25bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-863799c6d59c25bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-863799c6d59c25bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
