/root/repo/target/debug/deps/siesta_proxy-f81891a60119b131.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/debug/deps/libsiesta_proxy-f81891a60119b131.rlib: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/debug/deps/libsiesta_proxy-f81891a60119b131.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
