/root/repo/target/debug/deps/proptests-b73064a2fbc647cc.d: crates/proxy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b73064a2fbc647cc: crates/proxy/tests/proptests.rs

crates/proxy/tests/proptests.rs:
