/root/repo/target/debug/deps/siesta-92158241a9f498a6.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta-92158241a9f498a6.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
