/root/repo/target/debug/deps/siesta_baselines-d1c539dedc366650.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_baselines-d1c539dedc366650.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
