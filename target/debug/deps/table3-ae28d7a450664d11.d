/root/repo/target/debug/deps/table3-ae28d7a450664d11.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-ae28d7a450664d11: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
