/root/repo/target/debug/deps/fig5_event_sequence-50efafa4921538cb.d: crates/bench/benches/fig5_event_sequence.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_event_sequence-50efafa4921538cb.rmeta: crates/bench/benches/fig5_event_sequence.rs Cargo.toml

crates/bench/benches/fig5_event_sequence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
