/root/repo/target/debug/deps/siesta_baselines-7c3ad0c1d3b61f27.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_baselines-7c3ad0c1d3b61f27.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
