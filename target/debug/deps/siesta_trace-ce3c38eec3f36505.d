/root/repo/target/debug/deps/siesta_trace-ce3c38eec3f36505.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libsiesta_trace-ce3c38eec3f36505.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libsiesta_trace-ce3c38eec3f36505.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
