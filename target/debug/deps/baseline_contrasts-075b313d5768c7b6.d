/root/repo/target/debug/deps/baseline_contrasts-075b313d5768c7b6.d: crates/bench/../../tests/baseline_contrasts.rs

/root/repo/target/debug/deps/baseline_contrasts-075b313d5768c7b6: crates/bench/../../tests/baseline_contrasts.rs

crates/bench/../../tests/baseline_contrasts.rs:
