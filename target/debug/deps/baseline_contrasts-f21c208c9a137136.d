/root/repo/target/debug/deps/baseline_contrasts-f21c208c9a137136.d: crates/bench/../../tests/baseline_contrasts.rs

/root/repo/target/debug/deps/baseline_contrasts-f21c208c9a137136: crates/bench/../../tests/baseline_contrasts.rs

crates/bench/../../tests/baseline_contrasts.rs:
