/root/repo/target/debug/deps/wire_proptests-e430097ca9f8e545.d: crates/codegen/tests/wire_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libwire_proptests-e430097ca9f8e545.rmeta: crates/codegen/tests/wire_proptests.rs Cargo.toml

crates/codegen/tests/wire_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
