/root/repo/target/debug/deps/portability-4b953f01a59f92f5.d: crates/bench/../../tests/portability.rs Cargo.toml

/root/repo/target/debug/deps/libportability-4b953f01a59f92f5.rmeta: crates/bench/../../tests/portability.rs Cargo.toml

crates/bench/../../tests/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
