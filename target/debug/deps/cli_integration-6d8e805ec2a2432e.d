/root/repo/target/debug/deps/cli_integration-6d8e805ec2a2432e.d: crates/cli/tests/cli_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcli_integration-6d8e805ec2a2432e.rmeta: crates/cli/tests/cli_integration.rs Cargo.toml

crates/cli/tests/cli_integration.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_siesta=placeholder:siesta
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
