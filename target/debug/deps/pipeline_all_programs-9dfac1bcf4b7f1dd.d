/root/repo/target/debug/deps/pipeline_all_programs-9dfac1bcf4b7f1dd.d: crates/bench/../../tests/pipeline_all_programs.rs

/root/repo/target/debug/deps/pipeline_all_programs-9dfac1bcf4b7f1dd: crates/bench/../../tests/pipeline_all_programs.rs

crates/bench/../../tests/pipeline_all_programs.rs:
