/root/repo/target/debug/deps/siesta_mpisim-98a3d5a9a70cffb8.d: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libsiesta_mpisim-98a3d5a9a70cffb8.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libsiesta_mpisim-98a3d5a9a70cffb8.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/collectives.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/engine.rs:
crates/mpisim/src/hook.rs:
crates/mpisim/src/message.rs:
crates/mpisim/src/obs.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/request.rs:
crates/mpisim/src/world.rs:
