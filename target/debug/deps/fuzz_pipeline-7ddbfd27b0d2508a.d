/root/repo/target/debug/deps/fuzz_pipeline-7ddbfd27b0d2508a.d: crates/core/tests/fuzz_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_pipeline-7ddbfd27b0d2508a.rmeta: crates/core/tests/fuzz_pipeline.rs Cargo.toml

crates/core/tests/fuzz_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
