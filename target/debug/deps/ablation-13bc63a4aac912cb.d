/root/repo/target/debug/deps/ablation-13bc63a4aac912cb.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-13bc63a4aac912cb.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
