/root/repo/target/debug/deps/components-7c3bab9e624f8612.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-7c3bab9e624f8612.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
