/root/repo/target/debug/deps/fig6_exec_time-c615b902ad5930bd.d: crates/bench/benches/fig6_exec_time.rs

/root/repo/target/debug/deps/fig6_exec_time-c615b902ad5930bd: crates/bench/benches/fig6_exec_time.rs

crates/bench/benches/fig6_exec_time.rs:
