/root/repo/target/debug/deps/siesta_bench-6999e85fa2d97d07.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_bench-6999e85fa2d97d07.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
