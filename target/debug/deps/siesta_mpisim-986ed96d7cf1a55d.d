/root/repo/target/debug/deps/siesta_mpisim-986ed96d7cf1a55d.d: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_mpisim-986ed96d7cf1a55d.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs Cargo.toml

crates/mpisim/src/lib.rs:
crates/mpisim/src/collectives.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/engine.rs:
crates/mpisim/src/hook.rs:
crates/mpisim/src/message.rs:
crates/mpisim/src/obs.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/request.rs:
crates/mpisim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
