/root/repo/target/debug/deps/golden_fixtures-d35c97a4313a4452.d: crates/bench/../../tests/golden_fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_fixtures-d35c97a4313a4452.rmeta: crates/bench/../../tests/golden_fixtures.rs Cargo.toml

crates/bench/../../tests/golden_fixtures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
