/root/repo/target/debug/deps/siesta_mpisim-659b8ce69acf0371.d: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/siesta_mpisim-659b8ce69acf0371: crates/mpisim/src/lib.rs crates/mpisim/src/collectives.rs crates/mpisim/src/comm.rs crates/mpisim/src/engine.rs crates/mpisim/src/hook.rs crates/mpisim/src/message.rs crates/mpisim/src/obs.rs crates/mpisim/src/rank.rs crates/mpisim/src/request.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/collectives.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/engine.rs:
crates/mpisim/src/hook.rs:
crates/mpisim/src/message.rs:
crates/mpisim/src/obs.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/request.rs:
crates/mpisim/src/world.rs:
