/root/repo/target/debug/deps/fig6_exec_time-b9b817c062d7f389.d: crates/bench/benches/fig6_exec_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_exec_time-b9b817c062d7f389.rmeta: crates/bench/benches/fig6_exec_time.rs Cargo.toml

crates/bench/benches/fig6_exec_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
