/root/repo/target/debug/deps/fig8_platform_ac-22ba50cc63d9dea4.d: crates/bench/benches/fig8_platform_ac.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_platform_ac-22ba50cc63d9dea4.rmeta: crates/bench/benches/fig8_platform_ac.rs Cargo.toml

crates/bench/benches/fig8_platform_ac.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
