/root/repo/target/debug/deps/portability-8bd66cd4b795f231.d: crates/bench/../../tests/portability.rs

/root/repo/target/debug/deps/portability-8bd66cd4b795f231: crates/bench/../../tests/portability.rs

crates/bench/../../tests/portability.rs:
