/root/repo/target/debug/deps/siesta_core-598d6c9d65b32760.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_core-598d6c9d65b32760.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
