/root/repo/target/debug/deps/siesta-f351383b598d6e47.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta-f351383b598d6e47.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
