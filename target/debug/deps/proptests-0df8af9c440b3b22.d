/root/repo/target/debug/deps/proptests-0df8af9c440b3b22.d: crates/perfmodel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0df8af9c440b3b22.rmeta: crates/perfmodel/tests/proptests.rs Cargo.toml

crates/perfmodel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
