/root/repo/target/debug/deps/siesta_par-a89aa60c01d25e66.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/siesta_par-a89aa60c01d25e66: crates/par/src/lib.rs

crates/par/src/lib.rs:
