/root/repo/target/debug/deps/baseline_contrasts-56182f0585ffedfe.d: crates/bench/../../tests/baseline_contrasts.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_contrasts-56182f0585ffedfe.rmeta: crates/bench/../../tests/baseline_contrasts.rs Cargo.toml

crates/bench/../../tests/baseline_contrasts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
