/root/repo/target/debug/deps/end_to_end-7ae69a4f68d878c9.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7ae69a4f68d878c9: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
