/root/repo/target/debug/deps/proptests-fcd1315cdcc650c4.d: crates/proxy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fcd1315cdcc650c4.rmeta: crates/proxy/tests/proptests.rs Cargo.toml

crates/proxy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
