/root/repo/target/debug/deps/siesta_trace-d3ac148edab9d87c.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/siesta_trace-d3ac148edab9d87c: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
