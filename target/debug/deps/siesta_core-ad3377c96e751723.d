/root/repo/target/debug/deps/siesta_core-ad3377c96e751723.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libsiesta_core-ad3377c96e751723.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libsiesta_core-ad3377c96e751723.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
