/root/repo/target/debug/deps/siesta_obs-ff626a186dcee8a1.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libsiesta_obs-ff626a186dcee8a1.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libsiesta_obs-ff626a186dcee8a1.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
