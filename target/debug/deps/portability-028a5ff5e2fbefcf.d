/root/repo/target/debug/deps/portability-028a5ff5e2fbefcf.d: crates/bench/../../tests/portability.rs Cargo.toml

/root/repo/target/debug/deps/libportability-028a5ff5e2fbefcf.rmeta: crates/bench/../../tests/portability.rs Cargo.toml

crates/bench/../../tests/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
