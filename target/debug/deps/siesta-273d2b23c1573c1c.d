/root/repo/target/debug/deps/siesta-273d2b23c1573c1c.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/siesta-273d2b23c1573c1c: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
