/root/repo/target/debug/deps/golden_fixtures-926ab9497abc19e7.d: crates/bench/../../tests/golden_fixtures.rs

/root/repo/target/debug/deps/golden_fixtures-926ab9497abc19e7: crates/bench/../../tests/golden_fixtures.rs

crates/bench/../../tests/golden_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
