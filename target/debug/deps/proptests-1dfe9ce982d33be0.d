/root/repo/target/debug/deps/proptests-1dfe9ce982d33be0.d: crates/trace/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1dfe9ce982d33be0.rmeta: crates/trace/tests/proptests.rs Cargo.toml

crates/trace/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
