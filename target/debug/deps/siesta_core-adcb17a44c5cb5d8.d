/root/repo/target/debug/deps/siesta_core-adcb17a44c5cb5d8.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libsiesta_core-adcb17a44c5cb5d8.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libsiesta_core-adcb17a44c5cb5d8.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
