/root/repo/target/debug/deps/end_to_end-43788981273628d9.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-43788981273628d9: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
