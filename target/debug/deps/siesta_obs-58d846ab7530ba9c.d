/root/repo/target/debug/deps/siesta_obs-58d846ab7530ba9c.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_obs-58d846ab7530ba9c.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
