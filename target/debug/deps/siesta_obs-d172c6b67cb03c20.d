/root/repo/target/debug/deps/siesta_obs-d172c6b67cb03c20.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/siesta_obs-d172c6b67cb03c20: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
