/root/repo/target/debug/deps/siesta_perfmodel-04959f5ccd9b84b1.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

/root/repo/target/debug/deps/libsiesta_perfmodel-04959f5ccd9b84b1.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

/root/repo/target/debug/deps/libsiesta_perfmodel-04959f5ccd9b84b1.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/counters.rs:
crates/perfmodel/src/cpu.rs:
crates/perfmodel/src/flavor.rs:
crates/perfmodel/src/kernel.rs:
crates/perfmodel/src/net.rs:
crates/perfmodel/src/noise.rs:
crates/perfmodel/src/platform.rs:
