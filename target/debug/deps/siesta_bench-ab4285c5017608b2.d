/root/repo/target/debug/deps/siesta_bench-ab4285c5017608b2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-ab4285c5017608b2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-ab4285c5017608b2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
