/root/repo/target/debug/deps/siesta_baselines-90e1ce800b37241e.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_baselines-90e1ce800b37241e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
