/root/repo/target/debug/deps/siesta_bench-fc397d2c3ed14318.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_bench-fc397d2c3ed14318.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
