/root/repo/target/debug/deps/collective_scaling-ee58d29642fbc4d4.d: crates/mpisim/tests/collective_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libcollective_scaling-ee58d29642fbc4d4.rmeta: crates/mpisim/tests/collective_scaling.rs Cargo.toml

crates/mpisim/tests/collective_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
