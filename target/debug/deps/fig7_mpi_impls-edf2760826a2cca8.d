/root/repo/target/debug/deps/fig7_mpi_impls-edf2760826a2cca8.d: crates/bench/benches/fig7_mpi_impls.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mpi_impls-edf2760826a2cca8.rmeta: crates/bench/benches/fig7_mpi_impls.rs Cargo.toml

crates/bench/benches/fig7_mpi_impls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
