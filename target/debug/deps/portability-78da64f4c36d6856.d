/root/repo/target/debug/deps/portability-78da64f4c36d6856.d: crates/bench/../../tests/portability.rs

/root/repo/target/debug/deps/portability-78da64f4c36d6856: crates/bench/../../tests/portability.rs

crates/bench/../../tests/portability.rs:
