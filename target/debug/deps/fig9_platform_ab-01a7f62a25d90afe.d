/root/repo/target/debug/deps/fig9_platform_ab-01a7f62a25d90afe.d: crates/bench/benches/fig9_platform_ab.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_platform_ab-01a7f62a25d90afe.rmeta: crates/bench/benches/fig9_platform_ab.rs Cargo.toml

crates/bench/benches/fig9_platform_ab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
