/root/repo/target/debug/deps/differential_parallel-f0551793743ef6e8.d: crates/bench/../../tests/differential_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_parallel-f0551793743ef6e8.rmeta: crates/bench/../../tests/differential_parallel.rs Cargo.toml

crates/bench/../../tests/differential_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
