/root/repo/target/debug/deps/siesta_bench-91a3d0f9ae09a2ab.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/siesta_bench-91a3d0f9ae09a2ab: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
