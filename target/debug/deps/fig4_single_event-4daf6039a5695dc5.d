/root/repo/target/debug/deps/fig4_single_event-4daf6039a5695dc5.d: crates/bench/benches/fig4_single_event.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_single_event-4daf6039a5695dc5.rmeta: crates/bench/benches/fig4_single_event.rs Cargo.toml

crates/bench/benches/fig4_single_event.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
