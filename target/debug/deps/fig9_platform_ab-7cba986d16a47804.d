/root/repo/target/debug/deps/fig9_platform_ab-7cba986d16a47804.d: crates/bench/benches/fig9_platform_ab.rs

/root/repo/target/debug/deps/fig9_platform_ab-7cba986d16a47804: crates/bench/benches/fig9_platform_ab.rs

crates/bench/benches/fig9_platform_ab.rs:
