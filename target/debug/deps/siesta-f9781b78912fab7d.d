/root/repo/target/debug/deps/siesta-f9781b78912fab7d.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta-f9781b78912fab7d.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
