/root/repo/target/debug/deps/baseline_contrasts-6ae8099e42cff21d.d: crates/bench/../../tests/baseline_contrasts.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_contrasts-6ae8099e42cff21d.rmeta: crates/bench/../../tests/baseline_contrasts.rs Cargo.toml

crates/bench/../../tests/baseline_contrasts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
