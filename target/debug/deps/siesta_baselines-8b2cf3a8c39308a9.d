/root/repo/target/debug/deps/siesta_baselines-8b2cf3a8c39308a9.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/siesta_baselines-8b2cf3a8c39308a9: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
