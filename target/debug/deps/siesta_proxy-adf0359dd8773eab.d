/root/repo/target/debug/deps/siesta_proxy-adf0359dd8773eab.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/debug/deps/libsiesta_proxy-adf0359dd8773eab.rlib: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/debug/deps/libsiesta_proxy-adf0359dd8773eab.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
