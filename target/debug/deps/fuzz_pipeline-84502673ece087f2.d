/root/repo/target/debug/deps/fuzz_pipeline-84502673ece087f2.d: crates/core/tests/fuzz_pipeline.rs

/root/repo/target/debug/deps/fuzz_pipeline-84502673ece087f2: crates/core/tests/fuzz_pipeline.rs

crates/core/tests/fuzz_pipeline.rs:
