/root/repo/target/debug/deps/siesta_bench-04c65f1e12f3c9a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/siesta_bench-04c65f1e12f3c9a4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
