/root/repo/target/debug/deps/siesta_codegen-3011d359e256d5e8.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_codegen-3011d359e256d5e8.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
