/root/repo/target/debug/deps/siesta_baselines-fb7ae1ca8c40eeb0.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/libsiesta_baselines-fb7ae1ca8c40eeb0.rlib: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/libsiesta_baselines-fb7ae1ca8c40eeb0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
