/root/repo/target/debug/deps/fig5_event_sequence-146561c0ffec2d04.d: crates/bench/benches/fig5_event_sequence.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_event_sequence-146561c0ffec2d04.rmeta: crates/bench/benches/fig5_event_sequence.rs Cargo.toml

crates/bench/benches/fig5_event_sequence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
