/root/repo/target/debug/deps/misuse-020fc9801ae0f79e.d: crates/mpisim/tests/misuse.rs

/root/repo/target/debug/deps/misuse-020fc9801ae0f79e: crates/mpisim/tests/misuse.rs

crates/mpisim/tests/misuse.rs:
