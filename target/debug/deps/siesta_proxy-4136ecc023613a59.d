/root/repo/target/debug/deps/siesta_proxy-4136ecc023613a59.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_proxy-4136ecc023613a59.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs Cargo.toml

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
