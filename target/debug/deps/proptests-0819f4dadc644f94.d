/root/repo/target/debug/deps/proptests-0819f4dadc644f94.d: crates/trace/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0819f4dadc644f94.rmeta: crates/trace/tests/proptests.rs Cargo.toml

crates/trace/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
