/root/repo/target/debug/deps/fuzz_pipeline-ecc80103f8483bf5.d: crates/core/tests/fuzz_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_pipeline-ecc80103f8483bf5.rmeta: crates/core/tests/fuzz_pipeline.rs Cargo.toml

crates/core/tests/fuzz_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
