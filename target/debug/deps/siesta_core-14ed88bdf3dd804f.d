/root/repo/target/debug/deps/siesta_core-14ed88bdf3dd804f.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/siesta_core-14ed88bdf3dd804f: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
