/root/repo/target/debug/deps/siesta_bench-045b60959dd61828.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-045b60959dd61828.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsiesta_bench-045b60959dd61828.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
