/root/repo/target/debug/deps/ablation-9c5c6ee94cb4f1ed.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-9c5c6ee94cb4f1ed: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
