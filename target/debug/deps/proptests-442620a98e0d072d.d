/root/repo/target/debug/deps/proptests-442620a98e0d072d.d: crates/perfmodel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-442620a98e0d072d: crates/perfmodel/tests/proptests.rs

crates/perfmodel/tests/proptests.rs:
