/root/repo/target/debug/deps/wire_proptests-0a8a8bd4027aa2ac.d: crates/codegen/tests/wire_proptests.rs

/root/repo/target/debug/deps/wire_proptests-0a8a8bd4027aa2ac: crates/codegen/tests/wire_proptests.rs

crates/codegen/tests/wire_proptests.rs:
