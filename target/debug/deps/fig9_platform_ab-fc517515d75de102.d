/root/repo/target/debug/deps/fig9_platform_ab-fc517515d75de102.d: crates/bench/benches/fig9_platform_ab.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_platform_ab-fc517515d75de102.rmeta: crates/bench/benches/fig9_platform_ab.rs Cargo.toml

crates/bench/benches/fig9_platform_ab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
