/root/repo/target/debug/deps/siesta_proxy-ef1f3dd4860a79b8.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_proxy-ef1f3dd4860a79b8.rmeta: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs Cargo.toml

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
