/root/repo/target/debug/deps/siesta_par-62fa7c4424fe6a5f.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_par-62fa7c4424fe6a5f.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
