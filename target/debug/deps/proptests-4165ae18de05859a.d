/root/repo/target/debug/deps/proptests-4165ae18de05859a.d: crates/proxy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4165ae18de05859a: crates/proxy/tests/proptests.rs

crates/proxy/tests/proptests.rs:
