/root/repo/target/debug/deps/siesta_codegen-b6ff652a2c62eb57.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/debug/deps/siesta_codegen-b6ff652a2c62eb57: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
