/root/repo/target/debug/deps/siesta_obs-79408d14a66e30f8.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_obs-79408d14a66e30f8.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
