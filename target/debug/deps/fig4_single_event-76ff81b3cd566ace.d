/root/repo/target/debug/deps/fig4_single_event-76ff81b3cd566ace.d: crates/bench/benches/fig4_single_event.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_single_event-76ff81b3cd566ace.rmeta: crates/bench/benches/fig4_single_event.rs Cargo.toml

crates/bench/benches/fig4_single_event.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
