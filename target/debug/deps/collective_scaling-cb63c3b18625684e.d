/root/repo/target/debug/deps/collective_scaling-cb63c3b18625684e.d: crates/mpisim/tests/collective_scaling.rs

/root/repo/target/debug/deps/collective_scaling-cb63c3b18625684e: crates/mpisim/tests/collective_scaling.rs

crates/mpisim/tests/collective_scaling.rs:
