/root/repo/target/debug/deps/proptests-93ff5f6cbaebc5f5.d: crates/grammar/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-93ff5f6cbaebc5f5.rmeta: crates/grammar/tests/proptests.rs Cargo.toml

crates/grammar/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
