/root/repo/target/debug/deps/siesta_perfmodel-14bff4dae2a831d4.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_perfmodel-14bff4dae2a831d4.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/counters.rs:
crates/perfmodel/src/cpu.rs:
crates/perfmodel/src/flavor.rs:
crates/perfmodel/src/kernel.rs:
crates/perfmodel/src/net.rs:
crates/perfmodel/src/noise.rs:
crates/perfmodel/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
