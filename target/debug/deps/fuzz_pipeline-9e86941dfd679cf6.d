/root/repo/target/debug/deps/fuzz_pipeline-9e86941dfd679cf6.d: crates/core/tests/fuzz_pipeline.rs

/root/repo/target/debug/deps/fuzz_pipeline-9e86941dfd679cf6: crates/core/tests/fuzz_pipeline.rs

crates/core/tests/fuzz_pipeline.rs:
