/root/repo/target/debug/deps/siesta_par-f390f440136ce0c3.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libsiesta_par-f390f440136ce0c3.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libsiesta_par-f390f440136ce0c3.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
