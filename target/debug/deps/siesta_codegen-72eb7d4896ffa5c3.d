/root/repo/target/debug/deps/siesta_codegen-72eb7d4896ffa5c3.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/debug/deps/libsiesta_codegen-72eb7d4896ffa5c3.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

/root/repo/target/debug/deps/libsiesta_codegen-72eb7d4896ffa5c3.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
