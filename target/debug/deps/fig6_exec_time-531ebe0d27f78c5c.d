/root/repo/target/debug/deps/fig6_exec_time-531ebe0d27f78c5c.d: crates/bench/benches/fig6_exec_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_exec_time-531ebe0d27f78c5c.rmeta: crates/bench/benches/fig6_exec_time.rs Cargo.toml

crates/bench/benches/fig6_exec_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
