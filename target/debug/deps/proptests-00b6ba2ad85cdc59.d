/root/repo/target/debug/deps/proptests-00b6ba2ad85cdc59.d: crates/trace/tests/proptests.rs

/root/repo/target/debug/deps/proptests-00b6ba2ad85cdc59: crates/trace/tests/proptests.rs

crates/trace/tests/proptests.rs:
