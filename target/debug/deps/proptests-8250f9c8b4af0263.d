/root/repo/target/debug/deps/proptests-8250f9c8b4af0263.d: crates/trace/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8250f9c8b4af0263: crates/trace/tests/proptests.rs

crates/trace/tests/proptests.rs:
