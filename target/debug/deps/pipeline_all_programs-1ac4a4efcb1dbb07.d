/root/repo/target/debug/deps/pipeline_all_programs-1ac4a4efcb1dbb07.d: crates/bench/../../tests/pipeline_all_programs.rs

/root/repo/target/debug/deps/pipeline_all_programs-1ac4a4efcb1dbb07: crates/bench/../../tests/pipeline_all_programs.rs

crates/bench/../../tests/pipeline_all_programs.rs:
