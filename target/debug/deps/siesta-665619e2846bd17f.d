/root/repo/target/debug/deps/siesta-665619e2846bd17f.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/siesta-665619e2846bd17f: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
