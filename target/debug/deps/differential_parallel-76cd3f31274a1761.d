/root/repo/target/debug/deps/differential_parallel-76cd3f31274a1761.d: crates/bench/../../tests/differential_parallel.rs

/root/repo/target/debug/deps/differential_parallel-76cd3f31274a1761: crates/bench/../../tests/differential_parallel.rs

crates/bench/../../tests/differential_parallel.rs:
