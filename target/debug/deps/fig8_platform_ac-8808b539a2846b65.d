/root/repo/target/debug/deps/fig8_platform_ac-8808b539a2846b65.d: crates/bench/benches/fig8_platform_ac.rs

/root/repo/target/debug/deps/fig8_platform_ac-8808b539a2846b65: crates/bench/benches/fig8_platform_ac.rs

crates/bench/benches/fig8_platform_ac.rs:
