/root/repo/target/debug/deps/world_semantics-7d70fa30dc49d8cf.d: crates/mpisim/tests/world_semantics.rs

/root/repo/target/debug/deps/world_semantics-7d70fa30dc49d8cf: crates/mpisim/tests/world_semantics.rs

crates/mpisim/tests/world_semantics.rs:
