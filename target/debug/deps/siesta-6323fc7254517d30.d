/root/repo/target/debug/deps/siesta-6323fc7254517d30.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/siesta-6323fc7254517d30: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
