/root/repo/target/debug/deps/siesta_bench-ac135c2cc1d16409.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_bench-ac135c2cc1d16409.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
