/root/repo/target/debug/deps/world_semantics-5f4d2ebe3854f67a.d: crates/mpisim/tests/world_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libworld_semantics-5f4d2ebe3854f67a.rmeta: crates/mpisim/tests/world_semantics.rs Cargo.toml

crates/mpisim/tests/world_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
