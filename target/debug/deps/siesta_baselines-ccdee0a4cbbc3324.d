/root/repo/target/debug/deps/siesta_baselines-ccdee0a4cbbc3324.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/libsiesta_baselines-ccdee0a4cbbc3324.rlib: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/libsiesta_baselines-ccdee0a4cbbc3324.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
