/root/repo/target/debug/deps/siesta_workloads-610f5f72f4ed14bd.d: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

/root/repo/target/debug/deps/libsiesta_workloads-610f5f72f4ed14bd.rlib: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

/root/repo/target/debug/deps/libsiesta_workloads-610f5f72f4ed14bd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cg.rs:
crates/workloads/src/flash.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/is.rs:
crates/workloads/src/lu.rs:
crates/workloads/src/mg.rs:
crates/workloads/src/npb_adi.rs:
crates/workloads/src/sweep3d.rs:
