/root/repo/target/debug/deps/siesta_perfmodel-a24de0b2814bc041.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_perfmodel-a24de0b2814bc041.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/counters.rs crates/perfmodel/src/cpu.rs crates/perfmodel/src/flavor.rs crates/perfmodel/src/kernel.rs crates/perfmodel/src/net.rs crates/perfmodel/src/noise.rs crates/perfmodel/src/platform.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/counters.rs:
crates/perfmodel/src/cpu.rs:
crates/perfmodel/src/flavor.rs:
crates/perfmodel/src/kernel.rs:
crates/perfmodel/src/net.rs:
crates/perfmodel/src/noise.rs:
crates/perfmodel/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
