/root/repo/target/debug/deps/siesta_workloads-3212e529e9129fa2.d: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_workloads-3212e529e9129fa2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cg.rs crates/workloads/src/flash.rs crates/workloads/src/grid.rs crates/workloads/src/is.rs crates/workloads/src/lu.rs crates/workloads/src/mg.rs crates/workloads/src/npb_adi.rs crates/workloads/src/sweep3d.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cg.rs:
crates/workloads/src/flash.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/is.rs:
crates/workloads/src/lu.rs:
crates/workloads/src/mg.rs:
crates/workloads/src/npb_adi.rs:
crates/workloads/src/sweep3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
