/root/repo/target/debug/deps/cli_integration-e24c464abeb685bf.d: crates/cli/tests/cli_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcli_integration-e24c464abeb685bf.rmeta: crates/cli/tests/cli_integration.rs Cargo.toml

crates/cli/tests/cli_integration.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_siesta=placeholder:siesta
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
