/root/repo/target/debug/deps/components-2a15c6bdef29b724.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/components-2a15c6bdef29b724: crates/bench/benches/components.rs

crates/bench/benches/components.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
