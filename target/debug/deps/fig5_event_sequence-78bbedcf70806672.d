/root/repo/target/debug/deps/fig5_event_sequence-78bbedcf70806672.d: crates/bench/benches/fig5_event_sequence.rs

/root/repo/target/debug/deps/fig5_event_sequence-78bbedcf70806672: crates/bench/benches/fig5_event_sequence.rs

crates/bench/benches/fig5_event_sequence.rs:
