/root/repo/target/debug/deps/siesta_trace-e2d14616d9b00a01.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libsiesta_trace-e2d14616d9b00a01.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libsiesta_trace-e2d14616d9b00a01.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
