/root/repo/target/debug/deps/siesta_core-e47bb333f2fb3083.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/siesta_core-e47bb333f2fb3083: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
