/root/repo/target/debug/deps/fig7_mpi_impls-f1f992fb5c131fb3.d: crates/bench/benches/fig7_mpi_impls.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mpi_impls-f1f992fb5c131fb3.rmeta: crates/bench/benches/fig7_mpi_impls.rs Cargo.toml

crates/bench/benches/fig7_mpi_impls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
