/root/repo/target/debug/deps/siesta_proxy-29b213c09e31d73f.d: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

/root/repo/target/debug/deps/siesta_proxy-29b213c09e31d73f: crates/proxy/src/lib.rs crates/proxy/src/blocks.rs crates/proxy/src/minime.rs crates/proxy/src/qp.rs crates/proxy/src/search.rs crates/proxy/src/shrink.rs

crates/proxy/src/lib.rs:
crates/proxy/src/blocks.rs:
crates/proxy/src/minime.rs:
crates/proxy/src/qp.rs:
crates/proxy/src/search.rs:
crates/proxy/src/shrink.rs:
