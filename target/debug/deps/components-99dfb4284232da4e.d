/root/repo/target/debug/deps/components-99dfb4284232da4e.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-99dfb4284232da4e.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
