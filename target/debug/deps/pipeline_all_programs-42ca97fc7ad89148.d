/root/repo/target/debug/deps/pipeline_all_programs-42ca97fc7ad89148.d: crates/bench/../../tests/pipeline_all_programs.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_all_programs-42ca97fc7ad89148.rmeta: crates/bench/../../tests/pipeline_all_programs.rs Cargo.toml

crates/bench/../../tests/pipeline_all_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
