/root/repo/target/debug/deps/siesta_codegen-dfa62a3fe3ca1ce8.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_codegen-dfa62a3fe3ca1ce8.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/ir.rs crates/codegen/src/replay.rs crates/codegen/src/retarget.rs crates/codegen/src/wire.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/ir.rs:
crates/codegen/src/replay.rs:
crates/codegen/src/retarget.rs:
crates/codegen/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
