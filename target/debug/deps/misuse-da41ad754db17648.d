/root/repo/target/debug/deps/misuse-da41ad754db17648.d: crates/mpisim/tests/misuse.rs Cargo.toml

/root/repo/target/debug/deps/libmisuse-da41ad754db17648.rmeta: crates/mpisim/tests/misuse.rs Cargo.toml

crates/mpisim/tests/misuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
