/root/repo/target/debug/deps/fig8_platform_ac-8e65380527213ea9.d: crates/bench/benches/fig8_platform_ac.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_platform_ac-8e65380527213ea9.rmeta: crates/bench/benches/fig8_platform_ac.rs Cargo.toml

crates/bench/benches/fig8_platform_ac.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
