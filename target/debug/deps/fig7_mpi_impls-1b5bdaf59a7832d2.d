/root/repo/target/debug/deps/fig7_mpi_impls-1b5bdaf59a7832d2.d: crates/bench/benches/fig7_mpi_impls.rs

/root/repo/target/debug/deps/fig7_mpi_impls-1b5bdaf59a7832d2: crates/bench/benches/fig7_mpi_impls.rs

crates/bench/benches/fig7_mpi_impls.rs:
