/root/repo/target/debug/deps/siesta_grammar-d6726baeb4cc7635.d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/debug/deps/libsiesta_grammar-d6726baeb4cc7635.rlib: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

/root/repo/target/debug/deps/libsiesta_grammar-d6726baeb4cc7635.rmeta: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs

crates/grammar/src/lib.rs:
crates/grammar/src/cluster.rs:
crates/grammar/src/grammar.rs:
crates/grammar/src/lcs.rs:
crates/grammar/src/merge.rs:
crates/grammar/src/sequitur.rs:
crates/grammar/src/stats.rs:
crates/grammar/src/symbol.rs:
