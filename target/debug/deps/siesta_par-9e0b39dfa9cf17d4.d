/root/repo/target/debug/deps/siesta_par-9e0b39dfa9cf17d4.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_par-9e0b39dfa9cf17d4.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
