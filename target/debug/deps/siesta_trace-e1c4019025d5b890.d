/root/repo/target/debug/deps/siesta_trace-e1c4019025d5b890.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/siesta_trace-e1c4019025d5b890: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
