/root/repo/target/debug/deps/proptests-2a178036da853c96.d: crates/grammar/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2a178036da853c96: crates/grammar/tests/proptests.rs

crates/grammar/tests/proptests.rs:
