/root/repo/target/debug/deps/siesta_baselines-bca3c1cb6a474bb6.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_baselines-bca3c1cb6a474bb6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
