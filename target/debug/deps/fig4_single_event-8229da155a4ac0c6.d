/root/repo/target/debug/deps/fig4_single_event-8229da155a4ac0c6.d: crates/bench/benches/fig4_single_event.rs

/root/repo/target/debug/deps/fig4_single_event-8229da155a4ac0c6: crates/bench/benches/fig4_single_event.rs

crates/bench/benches/fig4_single_event.rs:
