/root/repo/target/debug/deps/siesta_core-cd2b3f72f6b8cc26.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_core-cd2b3f72f6b8cc26.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
