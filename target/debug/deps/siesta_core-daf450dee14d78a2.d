/root/repo/target/debug/deps/siesta_core-daf450dee14d78a2.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_core-daf450dee14d78a2.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
