/root/repo/target/debug/deps/wire_proptests-6564c32406eb72c0.d: crates/codegen/tests/wire_proptests.rs

/root/repo/target/debug/deps/wire_proptests-6564c32406eb72c0: crates/codegen/tests/wire_proptests.rs

crates/codegen/tests/wire_proptests.rs:
