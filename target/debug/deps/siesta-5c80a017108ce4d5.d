/root/repo/target/debug/deps/siesta-5c80a017108ce4d5.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/siesta-5c80a017108ce4d5: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
