/root/repo/target/debug/deps/siesta_trace-b26380f74f3b11c4.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_trace-b26380f74f3b11c4.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/merge.rs crates/trace/src/pool.rs crates/trace/src/recorder.rs crates/trace/src/serialize.rs crates/trace/src/text.rs crates/trace/src/wire.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/merge.rs:
crates/trace/src/pool.rs:
crates/trace/src/recorder.rs:
crates/trace/src/serialize.rs:
crates/trace/src/text.rs:
crates/trace/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
