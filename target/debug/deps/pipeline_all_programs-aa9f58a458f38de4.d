/root/repo/target/debug/deps/pipeline_all_programs-aa9f58a458f38de4.d: crates/bench/../../tests/pipeline_all_programs.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_all_programs-aa9f58a458f38de4.rmeta: crates/bench/../../tests/pipeline_all_programs.rs Cargo.toml

crates/bench/../../tests/pipeline_all_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
