/root/repo/target/debug/deps/cli_integration-eac21b8a83b43a3a.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-eac21b8a83b43a3a: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:

# env-dep:CARGO_BIN_EXE_siesta=/root/repo/target/debug/siesta
