/root/repo/target/debug/deps/ablation-39602fb9c72a25ee.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-39602fb9c72a25ee.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
