/root/repo/target/debug/deps/siesta_grammar-71bfca1aa3038895.d: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_grammar-71bfca1aa3038895.rmeta: crates/grammar/src/lib.rs crates/grammar/src/cluster.rs crates/grammar/src/grammar.rs crates/grammar/src/lcs.rs crates/grammar/src/merge.rs crates/grammar/src/sequitur.rs crates/grammar/src/stats.rs crates/grammar/src/symbol.rs Cargo.toml

crates/grammar/src/lib.rs:
crates/grammar/src/cluster.rs:
crates/grammar/src/grammar.rs:
crates/grammar/src/lcs.rs:
crates/grammar/src/merge.rs:
crates/grammar/src/sequitur.rs:
crates/grammar/src/stats.rs:
crates/grammar/src/symbol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
