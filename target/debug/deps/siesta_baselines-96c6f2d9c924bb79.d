/root/repo/target/debug/deps/siesta_baselines-96c6f2d9c924bb79.d: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

/root/repo/target/debug/deps/siesta_baselines-96c6f2d9c924bb79: crates/baselines/src/lib.rs crates/baselines/src/pilgrim.rs crates/baselines/src/scalabench.rs

crates/baselines/src/lib.rs:
crates/baselines/src/pilgrim.rs:
crates/baselines/src/scalabench.rs:
