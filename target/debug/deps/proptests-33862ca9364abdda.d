/root/repo/target/debug/deps/proptests-33862ca9364abdda.d: crates/proxy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-33862ca9364abdda.rmeta: crates/proxy/tests/proptests.rs Cargo.toml

crates/proxy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
