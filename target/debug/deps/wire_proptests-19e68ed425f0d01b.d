/root/repo/target/debug/deps/wire_proptests-19e68ed425f0d01b.d: crates/codegen/tests/wire_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libwire_proptests-19e68ed425f0d01b.rmeta: crates/codegen/tests/wire_proptests.rs Cargo.toml

crates/codegen/tests/wire_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
