/root/repo/target/debug/deps/cli_integration-2220c3e96a0500b4.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-2220c3e96a0500b4: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:

# env-dep:CARGO_BIN_EXE_siesta=/root/repo/target/debug/siesta
