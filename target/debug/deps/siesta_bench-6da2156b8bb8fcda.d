/root/repo/target/debug/deps/siesta_bench-6da2156b8bb8fcda.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsiesta_bench-6da2156b8bb8fcda.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
