/root/repo/target/debug/libsiesta_par.rlib: /root/repo/crates/par/src/lib.rs
