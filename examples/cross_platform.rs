//! Portability demo (the mechanism behind the paper's Figures 8–9):
//! generate a proxy-app on platform A, execute it on platforms B and C, and
//! compare against the ScalaBench-like sleep-replay baseline.
//!
//! ```sh
//! cargo run --release --example cross_platform
//! ```

use siesta_baselines::scalabench;
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, platform_b, platform_c, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

fn main() {
    let program = Program::Cg;
    let nranks = 16;
    let size = ProblemSize::Small;
    let gen_machine = Machine::new(platform_a(), MpiFlavor::OpenMpi);

    println!("Generating a {} proxy on platform A (Xeon 6248)...", program.name());
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) = siesta.synthesize_run(gen_machine, nranks, program.body(size));
    let scala = scalabench::trace_and_synthesize(gen_machine, nranks, program.body(size))
        .expect("CG has no communicator management");

    println!();
    println!(
        "{:<34} {:>10} {:>10} {:>8} | {:>10} {:>8}",
        "platform", "original", "Siesta", "err%", "ScalaBench", "err%"
    );
    println!("{}", "-".repeat(88));
    for (label, machine) in [
        ("A  (Xeon 6248, 2.5 GHz)", Machine::new(platform_a(), MpiFlavor::OpenMpi)),
        ("B  (Xeon Phi KNL, 1.3 GHz)", Machine::new(platform_b(), MpiFlavor::OpenMpi)),
        ("C  (Xeon E5-2680v4, 2.4 GHz)", Machine::new(platform_c(), MpiFlavor::OpenMpi)),
    ] {
        let original = program.run(machine, nranks, size);
        let proxy = replay(&synthesis.program, machine);
        let scala_run = scala.replay(machine);
        println!(
            "{:<34} {:>8.2}ms {:>8.2}ms {:>7.1}% | {:>8.2}ms {:>7.1}%",
            label,
            original.elapsed_ms(),
            proxy.elapsed_ms(),
            100.0 * proxy.time_error(&original),
            scala_run.elapsed_ms(),
            100.0 * scala_run.time_error(&original),
        );
    }
    println!();
    println!("Siesta's block proxies re-cost on each platform's CPU, so the proxy");
    println!("slows down on KNL the way the original does. The sleep-based baseline");
    println!("replays platform-A wall time everywhere — near-zero error on A, huge");
    println!("error on B. (Paper Figure 9: ScalaBench 70.44% vs Siesta 13.68% on B.)");
}
