//! Quickstart: synthesize a proxy-app for a hand-written MPI program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Writes the generated C proxy-app to `target/quickstart_proxy.c`.

use siesta_codegen::{emit_c, replay};
use siesta_core::{human_bytes, human_ms, Siesta, SiestaConfig};
use siesta_mpisim::{Rank, RankFut};
use siesta_perfmodel::{KernelDesc, Machine};
use siesta_workloads::grid::{Dir, Grid2d};

/// A small hand-written "application": a 2D Jacobi-style iteration with
/// halo exchanges, a convergence allreduce every step, and a final gather.
fn app(mut rank: Rank) -> RankFut<'static> {
    Box::pin(async move {
        let comm = rank.comm_world();
        let grid = Grid2d::near_square(rank.nranks());
        let me = rank.rank();
        let interior = KernelDesc::stencil(40_000.0, 5.0, 1.5e6);

        rank.bcast(&comm, 0, 128).await; // read the input deck
        for _step in 0..30 {
            // Halo exchange with the four periodic neighbors.
            let mut reqs = Vec::new();
            for dir in [Dir::North, Dir::South, Dir::East, Dir::West] {
                let nb = grid.neighbor_periodic(me, dir);
                reqs.push(rank.irecv(&comm, nb, 7, 8192));
            }
            for dir in [Dir::North, Dir::South, Dir::East, Dir::West] {
                let nb = grid.neighbor_periodic(me, dir);
                reqs.push(rank.isend(&comm, nb, 7, 8192));
            }
            rank.waitall(&reqs).await;
            rank.compute(&interior);
            rank.allreduce(&comm, 8).await; // residual norm
        }
        rank.gather(&comm, 0, 4096).await; // collect the solution
        rank
    })
}

fn main() {
    let machine = Machine::default_eval();
    let nranks = 16;

    // 1. Run the original (for reference timing).
    let original = siesta_mpisim::World::new(machine, nranks).run(app);
    println!("original program:        {}", human_ms(original.elapsed_ns()));

    // 2. Trace + synthesize.
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, traced) = siesta.synthesize_run(machine, nranks, app);
    let s = &synthesis.stats;
    println!("traced run:              {}", human_ms(traced.elapsed_ns()));
    println!(
        "trace: {} events -> {} raw; compressed to {} ({}x)",
        s.num_terminals,
        human_bytes(s.raw_trace_bytes),
        human_bytes(s.size_c_bytes),
        s.compression_ratio() as u64,
    );
    println!(
        "grammar: {} rules, {} merged main rule(s), {} symbols",
        s.num_rules, s.num_mains, s.grammar_size
    );

    // 3. Replay the synthetic proxy-app and compare.
    let proxy = replay(&synthesis.program, machine);
    println!("synthetic proxy-app:     {}", human_ms(proxy.elapsed_ns()));
    println!(
        "time error: {:.2}%   counter error: {:.2}%",
        100.0 * proxy.time_error(&original),
        100.0 * proxy.mean_counter_error(&original),
    );

    // 4. Export the C source.
    let c = emit_c(&synthesis.program);
    let path = "target/quickstart_proxy.c";
    std::fs::write(path, &c).expect("write proxy source");
    println!("C proxy-app written to {path} ({} lines)", c.lines().count());
}
