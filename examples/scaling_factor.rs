//! The scaling factor (paper Section 2.7): emit shrunk proxy-apps whose
//! execution time is roughly `1/k` of the original, and check how well
//! multiplying the shrunk time back by `k` predicts the original.
//!
//! ```sh
//! cargo run --release --example scaling_factor
//! ```

use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::Machine;
use siesta_workloads::{ProblemSize, Program};

fn main() {
    let program = Program::Sp;
    let nranks = 16;
    let size = ProblemSize::Small;
    let machine = Machine::default_eval();

    let original = program.run(machine, nranks, size);
    println!(
        "{} on {} ranks: original execution time {:.2} ms\n",
        program.name(),
        nranks,
        original.elapsed_ms()
    );
    println!(
        "{:>7} {:>12} {:>10} {:>14} {:>10}",
        "factor", "proxy (ms)", "speedup", "reproduced", "err%"
    );
    println!("{}", "-".repeat(60));
    for factor in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let config = SiestaConfig { scale: factor, ..SiestaConfig::default() };
        let siesta = Siesta::new(config);
        let (synthesis, _) =
            siesta.synthesize_run(machine, nranks, program.body(size));
        let proxy = replay(&synthesis.program, machine);
        let reproduced_ms = proxy.elapsed_ms() * factor;
        let err = 100.0 * (reproduced_ms - original.elapsed_ms()).abs() / original.elapsed_ms();
        println!(
            "{:>7} {:>12.2} {:>9.1}x {:>12.2}ms {:>9.2}%",
            factor,
            proxy.elapsed_ms(),
            original.elapsed_ms() / proxy.elapsed_ms(),
            reproduced_ms,
            err,
        );
    }
    println!();
    println!("Computation shrinks by dividing the counter targets; communication");
    println!("volumes shrink through the time-vs-volume regression. Latency does not");
    println!("shrink, so the reproduction error grows with the factor — the same");
    println!("Siesta vs Siesta-scaled gap as the paper's Figure 6 (5.30% vs 9.31%).");
}
