//! Synthesize a proxy-app for the SWEEP3D wavefront workload — the program
//! with the largest traces in the paper's Table 3 — and inspect what the
//! grammar extraction does with its extremely regular structure.
//!
//! ```sh
//! cargo run --release --example sweep3d_proxy
//! ```

use siesta_codegen::{emit_c, replay, TerminalOp};
use siesta_core::{human_bytes, human_ms, Siesta, SiestaConfig};
use siesta_perfmodel::Machine;
use siesta_workloads::{ProblemSize, Program};

fn main() {
    let machine = Machine::default_eval();
    let nranks = 16;
    let size = ProblemSize::Small;
    let program = Program::Sweep3d;

    println!("=== SWEEP3D proxy synthesis ({nranks} ranks, {size:?}) ===\n");
    let original = program.run(machine, nranks, size);
    println!("original execution time: {}", human_ms(original.elapsed_ns()));
    println!(
        "MPI calls: {} total; payload {}",
        original.total_calls(),
        human_bytes(original.total_bytes() as usize)
    );

    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) =
        siesta.synthesize_run(machine, nranks, program.body(size));
    let s = &synthesis.stats;

    println!("\n--- compression ---");
    println!("raw trace:        {}", human_bytes(s.raw_trace_bytes));
    println!("size_C:           {}", human_bytes(s.size_c_bytes));
    println!("ratio:            {:.0}x", s.compression_ratio());
    println!(
        "terminals:        {} ({} comm + {} compute)",
        s.num_terminals, s.num_comm_terminals, s.num_compute_terminals
    );
    println!("grammar rules:    {}", s.num_rules);
    println!("merged mains:     {} (rank classes after LCS merge)", s.num_mains);
    println!("table merge:      {} tree rounds (⌈log₂{nranks}⌉)", s.merge_rounds);
    println!("mean fit error:   {:.2}%", 100.0 * s.mean_fit_error);

    // Show one synthesized computation proxy.
    let example = synthesis.program.terminals.iter().enumerate().find_map(|(i, t)| match t {
        TerminalOp::Compute { proxy, target } if proxy.total_reps() > 0 => {
            Some((i, proxy.clone(), *target))
        }
        _ => None,
    });
    if let Some((i, proxy, target)) = example {
        println!("\n--- example computation proxy (terminal {i}) ---");
        println!("target: {target}");
        println!("block repetitions: {:?}", proxy.reps);
    }

    println!("\n--- replay ---");
    let proxy_run = replay(&synthesis.program, machine);
    println!("proxy execution:  {}", human_ms(proxy_run.elapsed_ns()));
    println!(
        "time error {:.2}%, counter error {:.2}%",
        100.0 * proxy_run.time_error(&original),
        100.0 * proxy_run.mean_counter_error(&original)
    );

    let c = emit_c(&synthesis.program);
    let path = "target/sweep3d_proxy.c";
    std::fs::write(path, &c).expect("write proxy source");
    println!("\nC proxy-app written to {path} ({} bytes)", c.len());
}
