//! Golden-fixture tests: small recorded traces are checked in under
//! `tests/fixtures/`, together with snapshots of what the pipeline must
//! produce from them. Any unintended change to trace recording, table
//! merging, grammar construction, proxy search, or C emission shows up as
//! a snapshot diff.
//!
//! Regenerate after an *intended* change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p siesta-bench --test golden_fixtures
//! git diff tests/fixtures/   # review what actually changed
//! ```
//!
//! See `tests/README.md` for the full workflow.

use std::path::{Path, PathBuf};

use siesta_codegen::emit_c;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_trace::{text, trace_from_bytes, trace_to_bytes, GlobalTrace};
use siesta_workloads::{ProblemSize, Program};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The fixture set: small, fast, and covering three program shapes
/// (power-of-two NPB, square-grid NPB, wavefront sweep).
const CASES: [(&str, Program, usize); 3] = [
    ("cg4_tiny", Program::Cg, 4),
    ("bt4_tiny", Program::Bt, 4),
    ("sweep3d6_tiny", Program::Sweep3d, 6),
];

fn record(program: Program, nranks: usize) -> GlobalTrace {
    let machine = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    let siesta = Siesta::new(SiestaConfig::default());
    let (trace, _) =
        siesta.trace_run(machine, nranks, move |r| program.body(ProblemSize::Tiny)(r));
    siesta_trace::merge_tables(trace)
}

/// The snapshot of a synthesis that must stay stable: structure counts
/// plus the fit error, in a fixed text format.
fn stats_snapshot(s: &siesta_core::SynthesisStats) -> String {
    format!(
        "terminals: {} (comm {}, compute {})\n\
         rules: {}\n\
         mains: {}\n\
         grammar_size: {}\n\
         merge_rounds: {}\n\
         raw_trace_bytes: {}\n\
         size_c_bytes: {}\n\
         mean_fit_error: {:.9}\n",
        s.num_terminals,
        s.num_comm_terminals,
        s.num_compute_terminals,
        s.num_rules,
        s.num_mains,
        s.grammar_size,
        s.merge_rounds,
        s.raw_trace_bytes,
        s.size_c_bytes,
        s.mean_fit_error
    )
}

fn check_or_update(path: &Path, actual: &[u8], what: &str) {
    if updating() {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nmissing golden fixture — run UPDATE_GOLDEN=1 cargo test -p \
             siesta-bench --test golden_fixtures to (re)generate",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{what} diverges from golden {}\n\
         If the change is intended, regenerate with UPDATE_GOLDEN=1 and review the diff \
         (see tests/README.md).",
        path.display()
    );
}

/// All nine paper workloads, synthesized end to end at 16 ranks: the wire
/// bytes, emitted C, and synthesis report must match the checked-in
/// snapshots at every pool width, memo on and off. This pins the *absolute*
/// artifact bytes (the cross-width tests in `differential_parallel.rs` only
/// pin them relative to the width-1 run), so a rework of the grammar hot
/// path — arena Sequitur, parallel clustering, the pairwise merge tree —
/// cannot silently change synthesized output.
#[test]
fn all_nine_workloads_match_golden_at_every_width_and_memo() {
    use siesta_codegen::wire;

    let dir = fixtures_dir().join("all9");
    if updating() {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let machine = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    let memo_off = SiestaConfig { grammar_memo: false, ..SiestaConfig::default() };
    let run = |width: usize, config: SiestaConfig, program: Program| {
        siesta_par::with_threads(width, || {
            let siesta = Siesta::new(config);
            let (synthesis, _) =
                siesta.synthesize_run(machine, 16, move |r| program.body(ProblemSize::Tiny)(r));
            (
                wire::to_bytes(&synthesis.program),
                emit_c(&synthesis.program),
                stats_snapshot(&synthesis.stats),
            )
        })
    };
    for program in Program::ALL {
        let name = program.name();
        // The width-1 memoized run is the pinned artifact...
        let (wire_bytes, c_source, stats) = run(1, SiestaConfig::default(), program);
        check_or_update(
            &dir.join(format!("{name}16.wire.bin")),
            &wire_bytes,
            &format!("{name}: wire bytes"),
        );
        check_or_update(
            &dir.join(format!("{name}16.proxy.c")),
            c_source.as_bytes(),
            &format!("{name}: emitted C source"),
        );
        check_or_update(
            &dir.join(format!("{name}16.stats.txt")),
            stats.as_bytes(),
            &format!("{name}: synthesis stats"),
        );
        // ...and every other width × memo combination must reproduce it
        // byte for byte (checked in memory, so a regeneration run still
        // proves width/memo independence before writing anything bad).
        for width in [1usize, 2, 8] {
            for config in [SiestaConfig::default(), memo_off] {
                let what = format!(
                    "{name}: {width} threads, memo {}",
                    if config.grammar_memo { "on" } else { "off" }
                );
                let (w, c, s) = run(width, config, program);
                assert_eq!(w, wire_bytes, "{what}: wire bytes diverge from golden");
                assert_eq!(c, c_source, "{what}: C source diverges from golden");
                assert_eq!(s, stats, "{what}: synthesis report diverges from golden");
            }
        }
    }
}

#[test]
fn recorded_traces_match_golden() {
    let dir = fixtures_dir();
    for (name, program, nranks) in CASES {
        let global = record(program, nranks);
        check_or_update(
            &dir.join(format!("{name}.trace.bin")),
            &trace_to_bytes(&global),
            &format!("{name}: recorded trace bytes"),
        );
        check_or_update(
            &dir.join(format!("{name}.trace.txt")),
            text::render(&global).as_bytes(),
            &format!("{name}: rendered trace"),
        );
    }
}

#[test]
fn synthesis_from_checked_in_traces_matches_golden() {
    let dir = fixtures_dir();
    let machine = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    for (name, program, nranks) in CASES {
        // Synthesize from the *checked-in* trace, so this snapshot is
        // insulated from recording changes (those fail the test above
        // instead). When updating, regenerate the trace first.
        let trace_path = dir.join(format!("{name}.trace.bin"));
        let global = if updating() {
            let g = record(program, nranks);
            std::fs::write(&trace_path, trace_to_bytes(&g)).unwrap();
            g
        } else {
            let bytes = std::fs::read(&trace_path).unwrap_or_else(|e| {
                panic!(
                    "{}: {e}\nrun UPDATE_GOLDEN=1 cargo test -p siesta-bench --test \
                     golden_fixtures first",
                    trace_path.display()
                )
            });
            trace_from_bytes(&bytes).expect("checked-in trace parses")
        };
        let synthesis = Siesta::new(SiestaConfig::default()).synthesize_global(global, &machine);
        check_or_update(
            &dir.join(format!("{name}.proxy.c")),
            emit_c(&synthesis.program).as_bytes(),
            &format!("{name}: emitted C source"),
        );
        check_or_update(
            &dir.join(format!("{name}.stats.txt")),
            stats_snapshot(&synthesis.stats).as_bytes(),
            &format!("{name}: synthesis stats"),
        );
    }
}
