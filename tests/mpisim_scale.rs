//! Scale smoke tests for the event-driven simulator: worlds far past the
//! paper's 529-rank ceiling, on the capacity-unbounded platform B.
//!
//! Tier-1 (always on, debug-friendly sizes):
//!
//! * a 4096-rank halo exchange completes inside a wall-clock budget and
//!   stays SPMD-uniform and deterministic across pool widths;
//! * a 1024-rank synthesis drives the log₂P = 10-deep table-merge tree
//!   and the LCS main-rule merge at a depth the threaded engine could
//!   never reach.
//!
//! Full-scale sweeps run only when `SIESTA_SCALE_TESTS=1` (the dedicated
//! release-build CI job sets it; a debug `cargo test -q` skips them):
//!
//! * 65 536 ranks, byte-identical across pool widths 1/2/8, under 60 s
//!   wall and 2 GB peak RSS (the ISSUE 8 acceptance numbers);
//! * 2²⁰ = 1 048 576 ranks to completion — one small heap future per
//!   rank, not one OS thread;
//! * 2²⁰ ranks through the *streaming trace path*: online Sequitur ingest
//!   plus the 20-round table merge and grammar lift, with no rank's full
//!   id sequence ever materialized.

use std::sync::Arc;
use std::time::{Duration, Instant};

use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::{CommId, HookCtx, MpiCall, PmpiHook, World};
use siesta_perfmodel::{platform_b, CounterVec, Machine, MpiFlavor};
use siesta_trace::{merge_streamed, Recorder, TraceConfig};
use siesta_workloads::halo::halo2d_body;

fn machine() -> Machine {
    Machine::new(platform_b(), MpiFlavor::OpenMpi)
}

fn scale_tests_enabled() -> bool {
    std::env::var("SIESTA_SCALE_TESTS").is_ok_and(|v| v == "1")
}

/// Wall-clock guard: generous enough for a loaded debug CI runner, tight
/// enough that an accidental O(ranks²) scheduler regression still trips.
fn assert_within(budget: Duration, took: Duration, what: &str) {
    assert!(
        took <= budget,
        "{what} took {:.1}s, budget {:.1}s",
        took.as_secs_f64(),
        budget.as_secs_f64()
    );
}

#[test]
fn halo_4096_ranks_within_budget() {
    let t0 = Instant::now();
    let stats = World::new(machine(), 4096).run(halo2d_body(5, 4096));
    let took = t0.elapsed();
    assert_eq!(stats.per_rank.len(), 4096);
    assert!(stats.elapsed_ns() > 0.0);
    // Fully SPMD on a 64×64 grid: every rank makes the same calls.
    let c0 = stats.per_rank[0].app_calls;
    assert!(stats.per_rank.iter().all(|r| r.app_calls == c0));
    assert_within(Duration::from_secs(60), took, "4096-rank halo (debug)");

    // Pool width moves wall time, never an output bit.
    let narrow = siesta_par::with_threads(1, || {
        World::new(machine(), 4096).run(halo2d_body(5, 4096))
    });
    assert_eq!(narrow.schedule_hash(), stats.schedule_hash());
    assert_eq!(narrow.elapsed_ns(), stats.elapsed_ns());
}

#[test]
fn synthesize_1024_ranks_exercises_merge_depth() {
    // 1024 ranks ⇒ 10 table-merge rounds and a main-rule merge over 1024
    // per-rank grammars — the log₂P structures the paper stops at depth
    // ~9 (529 ranks) on.
    let t0 = Instant::now();
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, traced) = siesta.synthesize_run(machine(), 1024, halo2d_body(3, 2048));
    let took = t0.elapsed();
    assert_eq!(traced.per_rank.len(), 1024);
    assert_eq!(synthesis.program.nranks, 1024);
    assert!(synthesis.program.grammar_size() > 0);
    // Interior symmetry collapses the mains: far fewer than one per rank.
    assert!(
        synthesis.program.mains.len() < 64,
        "{} mains for 1024 SPMD ranks — LCS merge regressed",
        synthesis.program.mains.len()
    );
    assert_within(Duration::from_secs(120), took, "1024-rank synthesis (debug)");
}

#[test]
fn halo_65536_ranks_byte_identical_and_bounded() {
    if !scale_tests_enabled() {
        eprintln!("skipped: set SIESTA_SCALE_TESTS=1 (release build) to run the 64k-rank sweep");
        return;
    }
    let rss_at_entry = siesta_obs::peak_rss_bytes();
    let t0 = Instant::now();
    let mut runs = Vec::new();
    for width in [1usize, 2, 8] {
        let stats = siesta_par::with_threads(width, || {
            World::new(machine(), 65_536).run(halo2d_body(10, 4096))
        });
        // The full per-rank schedule, bit for bit: virtual finish times
        // and the rolling per-call completion-clock hashes.
        let fingerprint: Vec<(u64, u64)> = stats
            .per_rank
            .iter()
            .map(|r| (r.finish_ns.to_bits(), r.sched_hash))
            .collect();
        runs.push((width, stats.schedule_hash(), stats.elapsed_ns().to_bits(), fingerprint));
    }
    let took = t0.elapsed();
    let (_, hash0, elapsed0, ref fp0) = runs[0];
    for (width, hash, elapsed, fp) in &runs[1..] {
        assert_eq!(*hash, hash0, "schedule hash diverges at {width} threads");
        assert_eq!(*elapsed, elapsed0, "virtual time diverges at {width} threads");
        assert_eq!(fp, fp0, "per-rank schedules diverge at {width} threads");
    }
    // Acceptance: < 60 s wall for one run; three widths get 3× that.
    assert_within(Duration::from_secs(180), took, "65 536-rank halo × 3 widths");
    // < 2 GB peak RSS — skipped if another test in this process already
    // pushed the (monotonic) high-water mark past half the budget.
    if let (Some(before), Some(after)) = (rss_at_entry, siesta_obs::peak_rss_bytes()) {
        const GB: u64 = 1 << 30;
        if before < GB {
            assert!(
                after < 2 * GB,
                "peak RSS {:.2} GB exceeds the 2 GB budget",
                after as f64 / GB as f64
            );
        } else {
            eprintln!("peak-RSS gate skipped: high-water mark already {before} B at entry");
        }
    }
}

#[test]
fn halo_million_ranks_completes() {
    if !scale_tests_enabled() {
        eprintln!("skipped: set SIESTA_SCALE_TESTS=1 (release build) to run the 2^20-rank sweep");
        return;
    }
    const RANKS: usize = 1 << 20;
    let t0 = Instant::now();
    let stats = World::new(machine(), RANKS).run(halo2d_body(2, 1024));
    let took = t0.elapsed();
    assert_eq!(stats.per_rank.len(), RANKS);
    assert!(stats.elapsed_ns() > 0.0);
    let c0 = stats.per_rank[0].app_calls;
    assert!(stats.per_rank.iter().all(|r| r.app_calls == c0));
    assert_ne!(stats.schedule_hash(), 0);
    eprintln!(
        "2^20 ranks: {:.1}s wall, {:.0} ranks/s, peak RSS {:?}",
        took.as_secs_f64(),
        RANKS as f64 / took.as_secs_f64(),
        siesta_obs::peak_rss_bytes()
    );
    assert_within(Duration::from_secs(420), took, "2^20-rank halo");
}

#[test]
fn streaming_ingest_million_ranks_completes() {
    if !scale_tests_enabled() {
        eprintln!(
            "skipped: set SIESTA_SCALE_TESTS=1 (release build) to run the 2^20-rank streaming ingest"
        );
        return;
    }
    // Drive the PMPI recorder directly with a 2^20-rank halo-shaped call
    // stream — the same shape as `benches/trace_ingest.rs`, two orders of
    // magnitude past the bench's 64k gate. Every rank's ids feed its
    // online Sequitur through a 256-id buffer; the ~59M-event job never
    // holds a flat id sequence, and the merge lifts the per-rank grammars
    // through log₂(2²⁰) = 20 reduction rounds without expanding them.
    const RANKS: usize = 1 << 20;
    const ITERS: usize = 8;
    let t0 = Instant::now();
    let config = TraceConfig { stream_buf: 256, ..TraceConfig::default() };
    let rec = Arc::new(Recorder::new_streaming(RANKS, config));
    let step = CounterVec::from_array([5_000.0, 120.0, 30.0, 65_536.0, 400.0, 12.0]);
    for me in 0..RANKS {
        let right = (me + 1) % RANKS;
        let left = (me + RANKS - 1) % RANKS;
        let mut counters = CounterVec::default();
        let mut call_seq = 0u32;
        let mut post = |counters: CounterVec, call: &MpiCall| {
            let ctx = HookCtx {
                rank: me,
                clock_ns: 0.0,
                counters,
                comm_rank: me,
                comm_size: RANKS,
                call_start_ns: 0.0,
                wait_ns: 0.0,
                call_seq,
            };
            call_seq += 1;
            rec.post(&ctx, call);
        };
        for _ in 0..ITERS {
            counters += step;
            post(counters, &MpiCall::Isend { comm: CommId::WORLD, dest: right, tag: 7, bytes: 4096, req: 1 });
            post(counters, &MpiCall::Isend { comm: CommId::WORLD, dest: left, tag: 7, bytes: 4096, req: 2 });
            post(counters, &MpiCall::Irecv { comm: CommId::WORLD, src: left, tag: 7, bytes: 4096, req: 3 });
            post(counters, &MpiCall::Irecv { comm: CommId::WORLD, src: right, tag: 7, bytes: 4096, req: 4 });
            post(counters, &MpiCall::Waitall { reqs: vec![1, 2, 3, 4] });
            post(counters, &MpiCall::Allreduce { comm: CommId::WORLD, bytes: 8 });
        }
    }
    let st = rec.finish_streamed();
    assert_eq!(st.nranks, RANKS);
    assert_eq!(st.total_events(), RANKS * ITERS * 7);
    let ingest = t0.elapsed();

    let sg = merge_streamed(st, true);
    let took = t0.elapsed();
    assert_eq!(sg.nranks, RANKS);
    assert_eq!(sg.merge_rounds, 20);
    assert!(!sg.table.is_empty());
    assert_eq!(sg.grammars.len(), RANKS);
    // Spot-expand a handful of ranks: each grammar must reproduce exactly
    // one rank's worth of events over valid global ids.
    for rank in [0usize, 1, RANKS / 2, RANKS - 1] {
        let seq = sg.expand_rank(rank);
        assert_eq!(seq.len(), ITERS * 7, "rank {rank} expansion length");
        assert!(seq.iter().all(|&id| (id as usize) < sg.table.len()));
    }
    eprintln!(
        "2^20-rank streaming ingest: {:.1}s ingest, {:.1}s total, peak RSS {:?}",
        ingest.as_secs_f64(),
        took.as_secs_f64(),
        siesta_obs::peak_rss_bytes()
    );
    assert_within(Duration::from_secs(600), took, "2^20-rank streaming ingest + merge");
}
