//! Flight-recorder contract tests, run against the real `siesta-par`
//! persistent pool:
//!
//! * concurrent recording at widths 1/2/8 loses and tears nothing, and
//!   drained spans come out deterministically ordered;
//! * a no-arg span on a registered thread performs **zero heap
//!   allocations** (verified with a counting global allocator);
//! * ring-buffer overflow keeps exactly the newest `cap` spans and
//!   reports the dropped count exactly;
//! * self time on nested spans obeys `self = dur − Σ direct children`
//!   exactly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Mutex;

use siesta_obs::span;

/// Counts allocations made by the current thread while armed — a global
/// count would be polluted by the test harness's other threads.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// Both cells are `Cell<u64>`/`Cell<bool>` (no destructor, const-init), so
// touching them from inside the allocator cannot recurse into it.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.realloc(p, l, n)
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations the current thread makes while running `f`.
fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    LOCAL_ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let out = f();
    ARMED.with(|a| a.set(false));
    (out, LOCAL_ALLOCS.with(Cell::get))
}

/// The recorder (profiling switch, epoch, capacity) and the pool width
/// are process-global; every test serializes on this.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_recorder() {
    siesta_obs::set_span_capacity(0);
    siesta_obs::set_profiling_enabled(true);
    siesta_obs::drain_spans();
}

#[test]
fn concurrent_stress_under_pool_loses_nothing() {
    let _g = locked();
    const TASKS: usize = 8;
    const SPANS_PER_TASK: usize = 700; // 8 * 700 spans, some shards spill chunks
    for width in [1usize, 2, 8] {
        reset_recorder();
        let items: Vec<usize> = (0..TASKS).collect();
        let _: Vec<usize> = siesta_par::with_threads(width, || {
            siesta_par::parallel_map(&items, |_, &t| {
                for i in 0..SPANS_PER_TASK {
                    let _s = span!("stress", i = i);
                }
                t
            })
        });
        siesta_obs::set_profiling_enabled(false);
        let drained = siesta_obs::drain();
        assert_eq!(drained.dropped, 0, "width {width}: spans dropped");
        assert_eq!(
            drained.spans.len(),
            TASKS * SPANS_PER_TASK,
            "width {width}: lost spans"
        );

        // No torn span: every field is one of the values actually written.
        let mut per_arg: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &drained.spans {
            assert_eq!(s.name, "stress", "width {width}: torn name");
            assert_eq!(s.depth, 0);
            *per_arg.entry(s.args_str()).or_default() += 1;
        }
        assert_eq!(per_arg.len(), SPANS_PER_TASK, "width {width}: args set");
        for (arg, &n) in &per_arg {
            assert_eq!(n, TASKS, "width {width}: arg {arg} count");
        }

        // Deterministic drain order, hence monotonic per-thread starts.
        assert!(
            drained.spans.windows(2).all(|w| {
                (w[0].start_ns, w[0].tid, w[0].name) <= (w[1].start_ns, w[1].tid, w[1].name)
            }),
            "width {width}: drain not sorted"
        );
        let mut last_per_tid: BTreeMap<u32, u64> = BTreeMap::new();
        for s in &drained.spans {
            let last = last_per_tid.entry(s.tid).or_insert(0);
            assert!(*last <= s.start_ns, "width {width}: tid {} went backwards", s.tid);
            *last = s.start_ns;
        }
    }
}

#[test]
fn no_arg_span_records_without_heap_allocation() {
    let _g = locked();
    reset_recorder();
    // Warm this thread's shard (registration allocates its first chunk,
    // once per thread ever) and enter a fresh epoch before arming.
    {
        let _s = span!("warm");
    }
    siesta_obs::drain_spans();
    {
        let _s = span!("warm-epoch");
    }

    let ((), allocs) = allocs_during(|| {
        for _ in 0..500 {
            let _s = span!("noalloc");
        }
    });
    siesta_obs::set_profiling_enabled(false);
    assert_eq!(allocs, 0, "no-arg record path allocated");
    // And the spans really were recorded, not skipped.
    let spans = siesta_obs::drain_spans();
    assert_eq!(spans.iter().filter(|s| s.name == "noalloc").count(), 500);
}

#[test]
fn ring_overflow_drops_oldest_with_exact_count() {
    let _g = locked();
    reset_recorder();
    siesta_obs::drain_spans(); // enter a fresh epoch before capping
    siesta_obs::set_span_capacity(100);
    for i in 0..137 {
        let _s = span!("ring", i = i);
    }
    siesta_obs::set_span_capacity(0);
    siesta_obs::set_profiling_enabled(false);
    let drained = siesta_obs::drain();
    assert_eq!(drained.spans.len(), 100);
    assert_eq!(drained.dropped, 37);
    let kept: Vec<&str> = drained.spans.iter().map(|s| s.args_str()).collect();
    let expect: Vec<String> = (37..137).map(|i| format!("i={i}")).collect();
    assert_eq!(kept, expect, "survivors must be exactly the newest 100, oldest first");
}

#[test]
fn self_time_of_nested_spans_is_exact() {
    let _g = locked();
    reset_recorder();
    {
        let _outer = span!("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = span!("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _leaf = span!("leaf");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    siesta_obs::set_profiling_enabled(false);
    let spans = siesta_obs::drain_spans();
    assert_eq!(spans.len(), 3);
    let self_ns = siesta_obs::self_times(&spans);
    let by_name: BTreeMap<&str, (u64, u64)> = spans
        .iter()
        .zip(&self_ns)
        .map(|(s, &sf)| (s.name, (s.dur_ns, sf)))
        .collect();
    let (outer_dur, outer_self) = by_name["outer"];
    let (inner_dur, inner_self) = by_name["inner"];
    let (leaf_dur, leaf_self) = by_name["leaf"];
    // Exact arithmetic: self = dur − Σ direct children durations.
    assert_eq!(outer_self, outer_dur - inner_dur);
    assert_eq!(inner_self, inner_dur - leaf_dur);
    assert_eq!(leaf_self, leaf_dur);
    assert!(outer_self >= 4_000_000, "outer self covers its own sleeps");
    assert!(inner_self >= 2_000_000);
}
