//! Whole-pipeline integration tests across **all nine** evaluation
//! programs: losslessness, timing fidelity, and C emission, end to end.

use siesta_codegen::{emit_c, replay};
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

fn nprocs_for(program: Program) -> usize {
    match program {
        Program::Bt | Program::Sp => 16,
        _ => 16,
    }
}

#[test]
fn every_program_replays_its_comm_stream_losslessly() {
    let m = machine();
    for program in Program::ALL {
        let n = nprocs_for(program);
        let siesta = Siesta::new(SiestaConfig::default());
        let (trace, _) =
            siesta.trace_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let global = siesta_trace::merge_tables(trace);
        let (trace2, _) =
            siesta.trace_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let synthesis = siesta.synthesize(trace2, &m);
        for rank in 0..n as u32 {
            assert_eq!(
                synthesis.program.expand_for_rank(rank),
                global.seqs[rank as usize],
                "{} rank {rank} diverges",
                program.name()
            );
        }
    }
}

#[test]
fn every_program_proxy_time_is_close() {
    let m = machine();
    for program in Program::ALL {
        let n = nprocs_for(program);
        let original = program.run(m, n, ProblemSize::Tiny);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) =
            siesta.synthesize_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let proxy = replay(&synthesis.program, m);
        let err = proxy.time_error(&original);
        assert!(
            err < 0.25,
            "{}: time error {:.1}% (proxy {:.2} vs orig {:.2} ms)",
            program.name(),
            err * 100.0,
            proxy.elapsed_ms(),
            original.elapsed_ms()
        );
    }
}

#[test]
fn every_program_emits_wellformed_c() {
    let m = machine();
    for program in Program::ALL {
        let n = nprocs_for(program);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) =
            siesta.synthesize_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let c = emit_c(&synthesis.program);
        assert_eq!(
            c.matches('{').count(),
            c.matches('}').count(),
            "{}: unbalanced braces",
            program.name()
        );
        assert!(c.contains("MPI_Init"), "{}", program.name());
        assert!(c.contains("MPI_Finalize"), "{}", program.name());
        // Every terminal function is defined and `main` exists.
        for i in 0..synthesis.program.terminals.len() {
            assert!(
                c.contains(&format!("static void ev_{i}(void)")),
                "{}: missing ev_{i}",
                program.name()
            );
        }
    }
}

#[test]
fn scaled_proxies_shrink_every_program() {
    let m = machine();
    for program in [Program::Bt, Program::Mg, Program::Sweep3d, Program::Sedov] {
        let n = nprocs_for(program);
        let original = program.run(m, n, ProblemSize::Tiny);
        let siesta = Siesta::new(SiestaConfig::scaled());
        let (synthesis, _) =
            siesta.synthesize_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let proxy = replay(&synthesis.program, m);
        assert!(
            proxy.elapsed_ns() < 0.6 * original.elapsed_ns(),
            "{}: scaled proxy {:.2}ms not well under original {:.2}ms",
            program.name(),
            proxy.elapsed_ms(),
            original.elapsed_ms()
        );
    }
}

#[test]
fn compression_never_loses_to_raw_trace() {
    let m = machine();
    for program in Program::ALL {
        let n = nprocs_for(program);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) =
            siesta.synthesize_run(m, n, move |r| program.body(ProblemSize::Small)(r));
        assert!(
            synthesis.stats.size_c_bytes < synthesis.stats.raw_trace_bytes,
            "{}: size_C {} >= raw {}",
            program.name(),
            synthesis.stats.size_c_bytes,
            synthesis.stats.raw_trace_bytes
        );
    }
}

#[test]
fn out_of_sample_lu_goes_through_the_whole_pipeline() {
    // LU is not in the paper's evaluation set; the synthesis path must not
    // be overfit to the nine programs it was tuned on.
    let m = machine();
    let program = Program::Lu;
    let n = 9;
    let original = program.run(m, n, ProblemSize::Tiny);
    let siesta = Siesta::new(SiestaConfig::default());
    let (trace, _) = siesta.trace_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
    let global = siesta_trace::merge_tables(trace);
    let (trace2, _) = siesta.trace_run(m, n, move |r| program.body(ProblemSize::Tiny)(r));
    let synthesis = siesta.synthesize(trace2, &m);
    for rank in 0..n as u32 {
        assert_eq!(
            synthesis.program.expand_for_rank(rank),
            global.seqs[rank as usize],
            "LU rank {rank} diverges"
        );
    }
    let proxy = replay(&synthesis.program, m);
    let terr = proxy.time_error(&original);
    let cerr = proxy.mean_counter_error(&original);
    assert!(terr < 0.20, "LU time error {:.1}%", terr * 100.0);
    assert!(cerr < 0.15, "LU counter error {:.1}%", cerr * 100.0);
}
