//! Cross-platform and cross-implementation portability integration tests
//! (the mechanisms of the paper's Figures 7–9).

use siesta_baselines::scalabench;
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, platform_b, platform_c, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

fn gen_machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

#[test]
fn siesta_tracks_platform_b_slowdown_scalabench_does_not() {
    let program = Program::Bt;
    let n = 16;
    let size = ProblemSize::Tiny;
    let ma = gen_machine();
    let mb = Machine::new(platform_b(), MpiFlavor::OpenMpi);
    let orig_a = program.run(ma, n, size);
    let orig_b = program.run(mb, n, size);
    let slowdown = orig_b.elapsed_ns() / orig_a.elapsed_ns();
    assert!(slowdown > 2.0, "KNL should slow BT a lot: {slowdown}");

    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) = siesta.synthesize_run(ma, n, move |r| program.body(size)(r));
    let proxy_b = replay(&synthesis.program, mb);
    let siesta_err = proxy_b.time_error(&orig_b);

    let scala = scalabench::trace_and_synthesize(ma, n, move |r| program.body(size)(r))
        .expect("BT supported");
    let scala_err = scala.replay(mb).time_error(&orig_b);

    assert!(siesta_err < 0.2, "siesta error on B: {:.1}%", siesta_err * 100.0);
    assert!(scala_err > 0.4, "scalabench error on B: {:.1}%", scala_err * 100.0);
    assert!(siesta_err * 3.0 < scala_err, "separation too small");
}

#[test]
fn proxies_port_between_a_and_c_both_ways() {
    let program = Program::Mg;
    let n = 16;
    let size = ProblemSize::Tiny;
    let ma = gen_machine();
    let mc = Machine::new(platform_c(), MpiFlavor::OpenMpi);
    for (gen_m, run_m) in [(ma, mc), (mc, ma)] {
        let original = program.run(run_m, n, size);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) = siesta.synthesize_run(gen_m, n, move |r| program.body(size)(r));
        let proxy = replay(&synthesis.program, run_m);
        let err = proxy.time_error(&original);
        assert!(
            err < 0.20,
            "{}→{}: error {:.1}%",
            gen_m.platform.name,
            run_m.platform.name,
            err * 100.0
        );
    }
}

#[test]
fn proxies_follow_every_mpi_implementation() {
    let program = Program::Sweep3d;
    let n = 16;
    let size = ProblemSize::Tiny;
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) =
        siesta.synthesize_run(gen_machine(), n, move |r| program.body(size)(r));
    for flavor in MpiFlavor::ALL {
        let m = Machine::new(platform_a(), flavor);
        let original = program.run(m, n, size);
        let proxy = replay(&synthesis.program, m);
        let err = proxy.time_error(&original);
        assert!(err < 0.2, "{}: error {:.1}%", flavor.name(), err * 100.0);
    }
}

#[test]
fn generated_where_executed_is_most_accurate_for_sleep_replay() {
    // The sleep baseline is fine as long as the platform does not change —
    // the nuance of Fig. 8's "similar platforms" observation.
    let program = Program::Is;
    let n = 16;
    let size = ProblemSize::Tiny;
    let ma = gen_machine();
    let app = scalabench::trace_and_synthesize(ma, n, move |r| program.body(size)(r))
        .expect("IS supported");
    let orig_a = program.run(ma, n, size);
    let err_same = app.replay(ma).time_error(&orig_a);
    assert!(err_same < 0.15, "same-platform sleep replay error {err_same}");
}
