//! The paper's comparative claims, as integration tests: Siesta vs
//! Pilgrim-like vs ScalaBench-like vs MINIME.

use siesta_baselines::{pilgrim, scalabench};
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_proxy::{Minime, ProxySearcher};
use siesta_trace::{merge_tables, EventRecord};
use siesta_workloads::{ProblemSize, Program};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

#[test]
fn pilgrim_comm_only_severely_underruns() {
    // Section 3.4.1: Pilgrim's proxies cannot reflect execution time
    // (paper: 84.30% mean error). Check the same failure across programs.
    let m = machine();
    let mut total = 0.0;
    let programs = [Program::Bt, Program::Mg, Program::Sweep3d];
    for program in programs {
        let n = 16;
        let original = program.run(m, n, ProblemSize::Tiny);
        let prog =
            pilgrim::trace_and_synthesize(m, n, move |r| program.body(ProblemSize::Tiny)(r));
        let t = replay(&prog, m);
        total += t.time_error(&original);
    }
    let mean = total / programs.len() as f64;
    assert!(mean > 0.5, "Pilgrim-like mean error only {:.1}%", mean * 100.0);
}

#[test]
fn scalabench_rejects_flash_but_siesta_handles_it() {
    let m = machine();
    for program in [Program::Sedov, Program::Sod, Program::StirTurb] {
        let scala = scalabench::trace_and_synthesize(m, 8, move |r| {
            program.body(ProblemSize::Small)(r)
        });
        assert!(scala.is_err(), "{} should be rejected", program.name());
        // Siesta synthesizes and replays the same program fine.
        let original = program.run(m, 8, ProblemSize::Small);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) =
            siesta.synthesize_run(m, 8, move |r| program.body(ProblemSize::Small)(r));
        let proxy = replay(&synthesis.program, m);
        assert!(
            proxy.time_error(&original) < 0.15,
            "{}: siesta error too large",
            program.name()
        );
    }
}

#[test]
fn scalabench_histograms_quantize_volumes() {
    // The lossy step exists even when generation succeeds.
    let m = machine();
    let app = scalabench::trace_and_synthesize(m, 8, move |r| {
        Program::Mg.body(ProblemSize::Tiny)(r)
    })
    .unwrap();
    assert!(app.is_lossy(), "histogram pooling should lose volume information");
}

#[test]
fn siesta_beats_minime_on_event_sequences() {
    // Figure 5's claim, as a test: per-event fitting summed over the trace.
    let m = machine();
    let searcher = ProxySearcher::new(&m);
    let minime = Minime::new(&m);
    let siesta = Siesta::new(SiestaConfig::default());
    let mut siesta_err = 0.0;
    let mut minime_err = 0.0;
    for program in [Program::Bt, Program::Cg, Program::Mg] {
        let (trace, _) =
            siesta.trace_run(m, 16, move |r| program.body(ProblemSize::Tiny)(r));
        let global = merge_tables(trace);
        let mut occurrences = vec![0u64; global.table.len()];
        for seq in &global.seqs {
            for &id in seq {
                occurrences[id as usize] += 1;
            }
        }
        let mut origin = siesta_perfmodel::CounterVec::ZERO;
        let mut s_sum = siesta_perfmodel::CounterVec::ZERO;
        let mut m_sum = siesta_perfmodel::CounterVec::ZERO;
        for (id, rec) in global.table.iter().enumerate() {
            if let EventRecord::Compute(stats) = rec {
                let target = stats.mean();
                let w = occurrences[id] as f64;
                origin += target * w;
                s_sum += searcher.predict(&searcher.search(&target), &m) * w;
                let mp = minime.synthesize(&target, &m);
                m_sum += mp.counters_on(m.cpu(), minime.blocks()) * w;
            }
        }
        siesta_err += s_sum.mean_relative_error(&origin);
        minime_err += m_sum.mean_relative_error(&origin);
    }
    assert!(
        siesta_err < minime_err,
        "six-metric: siesta {siesta_err} !< minime {minime_err}"
    );
}

#[test]
fn scalabench_rsd_and_siesta_grammar_both_compress() {
    // Both tools compress the trace heavily; Siesta additionally carries
    // the computation model.
    let m = machine();
    let program = Program::Sp;
    let original = program.run(m, 16, ProblemSize::Tiny);
    let events = original.total_calls() as usize;
    let app = scalabench::trace_and_synthesize(m, 16, move |r| {
        program.body(ProblemSize::Tiny)(r)
    })
    .unwrap();
    assert!(app.total_items() * 3 < events, "RSD barely compressed");
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) =
        siesta.synthesize_run(m, 16, move |r| program.body(ProblemSize::Tiny)(r));
    assert!(synthesis.stats.grammar_size * 3 < events, "grammar barely compressed");
    assert!(synthesis.stats.num_compute_terminals > 0);
}
