//! Observability artifacts extend the PR 3 determinism contract: the
//! **canonical** Chrome trace and `--stats` report (what the CLI emits
//! under `SIESTA_OBS_CANONICAL=1`) must be byte-identical at any
//! `--threads` width, on every one of the nine evaluation workloads.
//!
//! The canonical forms strip what legitimately varies between runs —
//! wall-clock timestamps, thread ids, the recorder's own `obs.*`
//! bookkeeping, the `par.threads` gauge — and keep everything the
//! workload determines: which spans ran, with which args, how often, and
//! every pipeline counter/gauge.

use std::sync::Mutex;

use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

/// Serializes tests: pool width, profiling switch, and the metrics
/// registry are process-global.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 8];

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

struct Artifacts {
    chrome_canonical: String,
    report_canonical: String,
}

fn profile_at(width: usize, program: Program) -> Artifacts {
    siesta_obs::reset_metrics();
    siesta_obs::drain_spans();
    siesta_obs::set_profiling_enabled(true);
    siesta_par::with_threads(width, || {
        let siesta = Siesta::new(SiestaConfig::default());
        let (_, _) =
            siesta.synthesize_run(machine(), 16, move |r| program.body(ProblemSize::Tiny)(r));
    });
    siesta_obs::set_profiling_enabled(false);
    let spans = siesta_obs::drain_spans();
    let metrics = siesta_obs::metrics_snapshot();
    Artifacts {
        chrome_canonical: siesta_obs::chrome::chrome_trace_json_canonical(&spans),
        report_canonical: siesta_obs::report::render_canonical_report(&spans, &metrics),
    }
}

#[test]
fn canonical_trace_and_report_are_byte_identical_across_widths() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for program in Program::ALL {
        let baseline = profile_at(WIDTHS[0], program);
        // The artifacts must have real content, or the test is vacuous.
        assert!(
            baseline.chrome_canonical.contains("\"name\":\"sequitur"),
            "{}: canonical trace missing pipeline spans",
            program.name()
        );
        assert!(
            baseline.report_canonical.contains("counters:"),
            "{}: canonical report missing counters",
            program.name()
        );
        assert!(
            !baseline.report_canonical.contains("par.threads"),
            "{}: canonical report leaks the thread width",
            program.name()
        );
        for &width in &WIDTHS[1..] {
            let got = profile_at(width, program);
            assert_eq!(
                got.chrome_canonical,
                baseline.chrome_canonical,
                "{}: canonical Chrome trace diverges at {width} threads",
                program.name()
            );
            assert_eq!(
                got.report_canonical,
                baseline.report_canonical,
                "{}: canonical report diverges at {width} threads",
                program.name()
            );
        }
    }
}

#[test]
fn canonical_report_is_stable_across_repeat_runs_at_same_width() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // Same width twice: catches nondeterminism that width-variation alone
    // would mask (e.g. iteration order of a hash map leaking into the
    // report).
    let a = profile_at(2, Program::Sweep3d);
    let b = profile_at(2, Program::Sweep3d);
    assert_eq!(a.chrome_canonical, b.chrome_canonical);
    assert_eq!(a.report_canonical, b.report_canonical);
}
