//! Observability artifacts extend the PR 3 determinism contract: the
//! **canonical** Chrome trace and `--stats` report (what the CLI emits
//! under `SIESTA_OBS_CANONICAL=1`) must be byte-identical at any
//! `--threads` width, on every one of the nine evaluation workloads.
//!
//! The canonical forms strip what legitimately varies between runs —
//! wall-clock timestamps, thread ids, the recorder's own `obs.*`
//! bookkeeping, the `par.threads` gauge — and keep everything the
//! workload determines: which spans ran, with which args, how often, and
//! every pipeline counter/gauge.

use std::sync::Mutex;

use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

/// Serializes tests: pool width, profiling switch, and the metrics
/// registry are process-global.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 8];

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

struct Artifacts {
    chrome_canonical: String,
    report_canonical: String,
}

fn profile_at(width: usize, program: Program) -> Artifacts {
    siesta_obs::reset_metrics();
    siesta_obs::drain_spans();
    siesta_obs::set_profiling_enabled(true);
    siesta_par::with_threads(width, || {
        let siesta = Siesta::new(SiestaConfig::default());
        let (_, _) =
            siesta.synthesize_run(machine(), 16, move |r| program.body(ProblemSize::Tiny)(r));
    });
    siesta_obs::set_profiling_enabled(false);
    let spans = siesta_obs::drain_spans();
    let metrics = siesta_obs::metrics_snapshot();
    Artifacts {
        chrome_canonical: siesta_obs::chrome::chrome_trace_json_canonical(&spans),
        report_canonical: siesta_obs::report::render_canonical_report(&spans, &metrics),
    }
}

#[test]
fn canonical_trace_and_report_are_byte_identical_across_widths() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for program in Program::ALL {
        let baseline = profile_at(WIDTHS[0], program);
        // The artifacts must have real content, or the test is vacuous.
        assert!(
            baseline.chrome_canonical.contains("\"name\":\"sequitur"),
            "{}: canonical trace missing pipeline spans",
            program.name()
        );
        assert!(
            baseline.report_canonical.contains("counters:"),
            "{}: canonical report missing counters",
            program.name()
        );
        assert!(
            !baseline.report_canonical.contains("par.threads"),
            "{}: canonical report leaks the thread width",
            program.name()
        );
        for &width in &WIDTHS[1..] {
            let got = profile_at(width, program);
            assert_eq!(
                got.chrome_canonical,
                baseline.chrome_canonical,
                "{}: canonical Chrome trace diverges at {width} threads",
                program.name()
            );
            assert_eq!(
                got.report_canonical,
                baseline.report_canonical,
                "{}: canonical report diverges at {width} threads",
                program.name()
            );
        }
    }
}

/// Virtual-time profiler artifacts (PR 9): unlike the wall-clock trace,
/// these need no canonical form — virtual timestamps are a pure function
/// of the simulated program, so the raw exports themselves must be
/// byte-identical at any width, with grammar memoization on or off.
struct SimArtifacts {
    vt_trace: String,
    critical: String,
    comm_matrix: String,
}

fn sim_profile_at(width: usize, program: Program, memo: bool) -> SimArtifacts {
    siesta_obs::reset_metrics();
    siesta_obs::drain_spans();
    siesta_mpisim::set_sim_profile_enabled(true);
    siesta_mpisim::set_comm_matrix_enabled(true);
    siesta_par::with_threads(width, || {
        let config = SiestaConfig { grammar_memo: memo, ..SiestaConfig::default() };
        let siesta = Siesta::new(config);
        let (_, _) =
            siesta.synthesize_run(machine(), 16, move |r| program.body(ProblemSize::Tiny)(r));
    });
    siesta_mpisim::set_sim_profile_enabled(false);
    siesta_mpisim::set_comm_matrix_enabled(false);
    let snap = siesta_mpisim::take_sim_profile().expect("profiler installed by trace run");
    let matrix = siesta_mpisim::take_comm_matrix().expect("comm matrix installed by trace run");
    SimArtifacts {
        vt_trace: snap.chrome_trace_json(256),
        critical: siesta_mpisim::critical_path(&snap).render(),
        comm_matrix: matrix.to_json(),
    }
}

#[test]
fn sim_profiler_artifacts_are_byte_identical_across_widths_and_memo() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for program in Program::ALL {
        // Memoization must not change the simulated world either: fold it
        // into the same baseline comparison.
        let baseline = sim_profile_at(WIDTHS[0], program, true);
        assert!(
            baseline.vt_trace.contains("\"name\":\"MPI_"),
            "{}: virtual-time trace recorded no MPI intervals",
            program.name()
        );
        assert!(
            baseline.critical.starts_with("critical path:"),
            "{}: critical-path report missing headline",
            program.name()
        );
        assert!(
            baseline.comm_matrix.contains("\"p2p\""),
            "{}: comm matrix missing p2p cells",
            program.name()
        );
        for &memo in &[true, false] {
            for &width in &WIDTHS {
                if width == WIDTHS[0] && memo {
                    continue; // the baseline itself
                }
                let got = sim_profile_at(width, program, memo);
                assert_eq!(
                    got.vt_trace,
                    baseline.vt_trace,
                    "{}: virtual-time trace diverges at {width} threads (memo {memo})",
                    program.name()
                );
                assert_eq!(
                    got.critical,
                    baseline.critical,
                    "{}: critical-path report diverges at {width} threads (memo {memo})",
                    program.name()
                );
                assert_eq!(
                    got.comm_matrix,
                    baseline.comm_matrix,
                    "{}: comm matrix diverges at {width} threads (memo {memo})",
                    program.name()
                );
            }
        }
    }
}

#[test]
fn canonical_report_is_stable_across_repeat_runs_at_same_width() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // Same width twice: catches nondeterminism that width-variation alone
    // would mask (e.g. iteration order of a hash map leaking into the
    // report).
    let a = profile_at(2, Program::Sweep3d);
    let b = profile_at(2, Program::Sweep3d);
    assert_eq!(a.chrome_canonical, b.chrome_canonical);
    assert_eq!(a.report_canonical, b.report_canonical);
}
