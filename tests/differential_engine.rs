//! Differential oracle for the execution engines: the event-driven
//! scheduler (the production path) and the legacy thread-per-rank
//! executor (kept one release behind the `legacy-threads` feature as an
//! independent reference implementation) must produce **byte-identical**
//! artifacts.
//!
//! The two executors share nothing but the engine's matching logic: one
//! drives resumable rank futures in deterministic sorted batches over the
//! `siesta-par` pool, the other parks an OS thread per rank and wakes on
//! completion flags. If virtual-time accounting, message matching, or
//! collective rounds depended on *executor* order anywhere, these runs
//! would diverge. Every comparison covers the full synthesis pipeline
//! (wire bytes, emitted C, synthesis report, traced run stats including
//! the event-schedule hash) on all nine paper workloads, across pool
//! widths 1/2/8 and grammar memoization on/off.
//!
//! Run via the bench crate's feature forward:
//!
//! ```sh
//! cargo test -p siesta-bench --features legacy-threads --test differential_engine
//! ```

#![cfg(feature = "legacy-threads")]

use std::sync::Mutex;

use siesta_codegen::{emit_c, wire};
use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::set_legacy_threads;
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

/// Serializes tests: the executor mode and pool width are process-global.
static MODE_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 8];
const NPROCS: usize = 16;

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Restores the event executor even if an assertion unwinds mid-test.
struct ThreadedMode;

impl ThreadedMode {
    fn engage() -> ThreadedMode {
        set_legacy_threads(true);
        ThreadedMode
    }
}

impl Drop for ThreadedMode {
    fn drop(&mut self) {
        set_legacy_threads(false);
    }
}

/// Everything a synthesis run externalizes, as bytes/strings to compare.
struct Output {
    wire_bytes: Vec<u8>,
    c_source: String,
    report: String,
    stats: String,
}

fn synthesize(threaded: bool, width: usize, program: Program, config: SiestaConfig) -> Output {
    let _mode = threaded.then(ThreadedMode::engage);
    siesta_par::with_threads(width, || {
        let siesta = Siesta::new(config);
        let (synthesis, traced) =
            siesta.synthesize_run(machine(), NPROCS, program.body(ProblemSize::Tiny));
        Output {
            wire_bytes: wire::to_bytes(&synthesis.program),
            c_source: emit_c(&synthesis.program),
            report: format!(
                "{:?} ratio={:.6}",
                synthesis.stats,
                synthesis.stats.compression_ratio()
            ),
            stats: format!("{:?} hash={:016x}", traced, traced.schedule_hash()),
        }
    })
}

fn assert_same(program: Program, label: &str, got: &Output, baseline: &Output) {
    let name = program.name();
    assert_eq!(got.wire_bytes, baseline.wire_bytes, "{name}: wire bytes diverge ({label})");
    assert_eq!(got.c_source, baseline.c_source, "{name}: C source diverges ({label})");
    assert_eq!(got.report, baseline.report, "{name}: synthesis report diverges ({label})");
    assert_eq!(got.stats, baseline.stats, "{name}: traced run stats diverge ({label})");
}

#[test]
fn threaded_engine_matches_event_engine_on_every_workload() {
    let _g = MODE_LOCK.lock().unwrap();
    for program in Program::ALL {
        let baseline = synthesize(false, 1, program, SiestaConfig::default());
        for &width in &WIDTHS {
            let got = synthesize(true, width, program, SiestaConfig::default());
            assert_same(program, &format!("threaded, {width} threads"), &got, &baseline);
        }
    }
}

#[test]
fn memo_toggle_agrees_across_executors() {
    let _g = MODE_LOCK.lock().unwrap();
    let memo_off = SiestaConfig { grammar_memo: false, ..SiestaConfig::default() };
    for program in Program::ALL {
        let baseline = synthesize(false, 1, program, SiestaConfig::default());
        for (threaded, width, config, label) in [
            (false, 2, memo_off, "event, no-memo, 2 threads"),
            (true, 2, SiestaConfig::default(), "threaded, memo, 2 threads"),
            (true, 8, memo_off, "threaded, no-memo, 8 threads"),
        ] {
            let got = synthesize(threaded, width, program, config);
            assert_same(program, label, &got, &baseline);
        }
    }
}

#[test]
fn raw_run_stats_are_identical_across_executors() {
    let _g = MODE_LOCK.lock().unwrap();
    // Below the pipeline: the bare simulator output — per-rank virtual
    // finish times, counters, byte/call totals, schedule hashes — must
    // already agree before tracing enters the picture.
    for program in Program::ALL {
        let event = program.run(machine(), NPROCS, ProblemSize::Tiny);
        let threaded = {
            let _mode = ThreadedMode::engage();
            program.run(machine(), NPROCS, ProblemSize::Tiny)
        };
        assert_eq!(
            event.schedule_hash(),
            threaded.schedule_hash(),
            "{}: schedule hash diverges across executors",
            program.name()
        );
        assert_eq!(
            format!("{event:?}"),
            format!("{threaded:?}"),
            "{}: per-rank stats diverge across executors",
            program.name()
        );
    }
}
