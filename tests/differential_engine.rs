//! Differential oracle for the two trace-ingest modes: streaming (interned
//! event ids feed each rank's online Sequitur as calls complete; flat id
//! sequences never materialize) and materialized (record everything, then
//! batch Sequitur) must produce **byte-identical** artifacts.
//!
//! The modes share the simulator and the synthesis back half but nothing
//! in between: one relabels grammars built online through composed table
//! remaps (memoizing on a running content hash), the other rewrites whole
//! sequences and re-runs Sequitur per rank. If grammar construction,
//! table-merge remapping, memoization order, or store chunking depended on
//! ingest mode anywhere, these runs would diverge. Every comparison covers
//! the full pipeline — proxy wire bytes, emitted C, the columnar trace
//! store, the synthesis report, traced run stats with the event-schedule
//! hash — on all nine paper workloads, across pool widths 1/2/8, grammar
//! memoization on/off, and stream buffer sizes down to the flush-heavy
//! minimum.
//!
//! ```sh
//! cargo test -p siesta-bench --test differential_engine
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use siesta_codegen::{emit_c, wire};
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_trace::TraceConfig;
use siesta_workloads::{ProblemSize, Program};

/// Serializes tests: the pool width is process-global.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 8];
const NPROCS: usize = 16;

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Everything a synthesis run externalizes, as bytes/strings to compare.
struct Output {
    wire_bytes: Vec<u8>,
    c_source: String,
    store_bytes: Vec<u8>,
    report: String,
    stats: String,
}

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write the columnar store the way each mode's production path does —
/// rank-at-a-time grammar expansion when streaming, whole-trace otherwise
/// — and return the file's bytes.
fn store_file<F: FnOnce(&std::path::Path) -> std::io::Result<()>>(write: F) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "siesta-diff-{}-{}.siestatrace",
        std::process::id(),
        STORE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    write(&path).expect("store write");
    let bytes = std::fs::read(&path).expect("store read-back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn synthesize(stream: bool, width: usize, program: Program, mut config: SiestaConfig) -> Output {
    config.stream = stream;
    siesta_par::with_threads(width, || {
        let siesta = Siesta::new(config);
        let body = program.body(ProblemSize::Tiny);
        let (synthesis, traced, store_bytes) = if stream {
            let (st, traced) = siesta.trace_run_streamed(machine(), NPROCS, body);
            let sg = siesta.merge_streamed(st);
            let store_bytes = store_file(|p| sg.write_store(p));
            (siesta.synthesize_streamed_global(sg, &machine()), traced, store_bytes)
        } else {
            let (trace, traced) = siesta.trace_run(machine(), NPROCS, body);
            let global = siesta.merge_trace(trace);
            let store_bytes = store_file(|p| siesta_trace::save_trace(&global, p));
            (siesta.synthesize_global(global, &machine()), traced, store_bytes)
        };
        Output {
            wire_bytes: wire::to_bytes(&synthesis.program),
            c_source: emit_c(&synthesis.program),
            store_bytes,
            report: format!(
                "{:?} ratio={:.6}",
                synthesis.stats,
                synthesis.stats.compression_ratio()
            ),
            stats: format!("{:?} hash={:016x}", traced, traced.schedule_hash()),
        }
    })
}

fn assert_same(program: Program, label: &str, got: &Output, baseline: &Output) {
    let name = program.name();
    assert_eq!(got.wire_bytes, baseline.wire_bytes, "{name}: wire bytes diverge ({label})");
    assert_eq!(got.c_source, baseline.c_source, "{name}: C source diverges ({label})");
    assert_eq!(
        got.store_bytes, baseline.store_bytes,
        "{name}: columnar trace store diverges ({label})"
    );
    assert_eq!(got.report, baseline.report, "{name}: synthesis report diverges ({label})");
    assert_eq!(got.stats, baseline.stats, "{name}: traced run stats diverge ({label})");
}

#[test]
fn streaming_matches_materialized_on_every_workload() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for program in Program::ALL {
        let baseline = synthesize(false, 1, program, SiestaConfig::default());
        for &width in &WIDTHS {
            let got = synthesize(true, width, program, SiestaConfig::default());
            assert_same(program, &format!("streaming, {width} threads"), &got, &baseline);
        }
    }
}

#[test]
fn memo_and_buffer_toggles_agree_across_modes() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let memo_off = SiestaConfig { grammar_memo: false, ..SiestaConfig::default() };
    // The flush-heavy extreme: every 16 events the buffer drains into the
    // online Sequitur. Grammar output must not depend on flush cadence.
    let tiny_buf = SiestaConfig {
        trace: TraceConfig { stream_buf: 16, ..TraceConfig::default() },
        ..SiestaConfig::default()
    };
    for program in Program::ALL {
        let baseline = synthesize(false, 1, program, SiestaConfig::default());
        for (stream, width, config, label) in [
            (true, 2, memo_off, "streaming, no-memo, 2 threads"),
            (true, 8, tiny_buf, "streaming, 16-id buffer, 8 threads"),
            (false, 2, memo_off, "materialized, no-memo, 2 threads"),
            (true, 1, memo_off, "streaming, no-memo, 1 thread"),
        ] {
            let got = synthesize(stream, width, program, config);
            assert_same(program, label, &got, &baseline);
        }
    }
}

#[test]
fn streamed_store_feeds_offline_synthesis() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // The offline workflow across modes: a store written rank-at-a-time by
    // the streaming path, loaded back through the zero-copy reader, must
    // synthesize to the same proxy as the live streaming run.
    for program in [Program::Sweep3d, Program::Is] {
        let live = synthesize(true, 2, program, SiestaConfig::default());
        let path = std::env::temp_dir().join(format!(
            "siesta-diff-offline-{}-{}.siestatrace",
            std::process::id(),
            program.name()
        ));
        std::fs::write(&path, &live.store_bytes).expect("store write");
        let global = siesta_trace::load_trace(&path).expect("store load");
        std::fs::remove_file(&path).ok();
        let synthesis =
            Siesta::new(SiestaConfig::default()).synthesize_global(global, &machine());
        assert_eq!(
            wire::to_bytes(&synthesis.program),
            live.wire_bytes,
            "{}: offline synthesis from streamed store diverges",
            program.name()
        );
    }
}
