//! Allocation contract of the arena-backed Sequitur (DESIGN.md §13):
//! a builder pre-sized with [`Sequitur::with_rle_and_capacity`] performs
//! **zero heap allocations** on the steady-state `push` path. Nodes come
//! from the slab's intrusive free list, occurrence bookkeeping lives
//! inside the nodes, and the intern/digram tables are reserved up front —
//! so after a warm-up prefix has faulted in the tables, compressing the
//! rest of the trace touches the allocator not at all.
//!
//! Verified with a counting global allocator (same harness pattern as
//! `tests/obs_flight_recorder.rs`): the count is thread-local so the test
//! harness's other threads cannot pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use siesta_grammar::Sequitur;

/// Counts allocations made by the current thread while armed.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// Both cells are `Cell` (no destructor, const-init), so touching them from
// inside the allocator cannot recurse into it.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc(l)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.realloc(p, l, n)
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        let _ = ARMED.try_with(|a| {
            if a.get() {
                let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations the current thread makes while running `f`.
fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    LOCAL_ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let out = f();
    ARMED.with(|a| a.set(false));
    (out, LOCAL_ALLOCS.with(Cell::get))
}

/// A trace-like sequence: nested loops with occasional irregularities —
/// the shape the Sequitur hot loop sees from real SPMD traces (heavy rule
/// churn: runs merge, rules form and die by the utility constraint).
fn trace_like_sequence(n: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(n);
    let mut i = 0;
    while seq.len() < n {
        seq.extend([1, 2, 3, 2, 4]);
        seq.extend(std::iter::repeat_n(5, 8));
        if i % 10 == 9 {
            seq.extend([20, 21]);
        }
        i += 1;
    }
    seq.truncate(n);
    seq
}

#[test]
fn steady_state_push_performs_zero_heap_allocations() {
    let seq = trace_like_sequence(40_000);
    // Pre-size for the whole input, warm up on the first half — by then
    // every vocabulary symbol has been interned and the reserved tables
    // are live — and demand allocation-free compression of the rest.
    let mut s = Sequitur::with_rle_and_capacity(true, seq.len());
    let (half_a, half_b) = seq.split_at(seq.len() / 2);
    for &t in half_a {
        s.push(t);
    }
    let (_, n) = allocs_during(|| {
        for &t in half_b {
            s.push(t);
        }
    });
    assert_eq!(
        n, 0,
        "steady-state push allocated {n} times over {} symbols",
        half_b.len()
    );

    // The builder still produces the exact same grammar as a cold build.
    let warm = s.into_grammar();
    let cold = Sequitur::build(&seq);
    assert_eq!(warm.rules, cold.rules, "pre-sized build must not change the grammar");
}

#[test]
fn zero_alloc_push_holds_with_rle_off_too() {
    // Classic Sequitur (ablation path) shares the arena machinery.
    let seq = trace_like_sequence(20_000);
    let mut s = Sequitur::with_rle_and_capacity(false, seq.len());
    let (half_a, half_b) = seq.split_at(seq.len() / 2);
    for &t in half_a {
        s.push(t);
    }
    let (_, n) = allocs_during(|| {
        for &t in half_b {
            s.push(t);
        }
    });
    assert_eq!(n, 0, "classic-mode steady-state push allocated {n} times");
}
