//! Differential oracle for the parallel pipeline: the sequential path
//! (`--threads 1`) and the pooled path at any width must produce
//! **byte-identical** synthesized programs and reports.
//!
//! This is the determinism contract of `siesta-par` (see DESIGN.md):
//! index-ordered collection means thread count and OS scheduling can
//! change wall time but never a single output bit. Every workload runs
//! end to end (trace → table merge → Sequitur → grammar merge → QP batch
//! → codegen) at widths 1, 2, and 8, and we compare the wire bytes of the
//! proxy program, the emitted C source, and the synthesis report.

use std::sync::Mutex;

use siesta_codegen::{emit_c, wire};
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

/// Serializes tests: the pool width is process-global state.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 8];

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Everything a synthesis run externalizes, as bytes/strings to compare.
struct Output {
    wire_bytes: Vec<u8>,
    c_source: String,
    report: String,
}

fn synthesize_at(width: usize, program: Program, config: SiestaConfig) -> Output {
    siesta_par::with_threads(width, || {
        let siesta = Siesta::new(config);
        let (synthesis, _) =
            siesta.synthesize_run(machine(), 16, move |r| program.body(ProblemSize::Tiny)(r));
        Output {
            wire_bytes: wire::to_bytes(&synthesis.program),
            c_source: emit_c(&synthesis.program),
            report: format!(
                "{:?} ratio={:.6}",
                synthesis.stats,
                synthesis.stats.compression_ratio()
            ),
        }
    })
}

#[test]
fn every_workload_is_bit_identical_across_thread_counts() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for program in Program::ALL {
        let baseline = synthesize_at(WIDTHS[0], program, SiestaConfig::default());
        for &width in &WIDTHS[1..] {
            let got = synthesize_at(width, program, SiestaConfig::default());
            assert_eq!(
                got.wire_bytes,
                baseline.wire_bytes,
                "{}: wire bytes diverge at {width} threads",
                program.name()
            );
            assert_eq!(
                got.c_source,
                baseline.c_source,
                "{}: C source diverges at {width} threads",
                program.name()
            );
            assert_eq!(
                got.report,
                baseline.report,
                "{}: synthesis report diverges at {width} threads",
                program.name()
            );
        }
    }
}

#[test]
fn scaled_synthesis_is_bit_identical_across_thread_counts() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // The paper's shrunk configuration exercises comm shrinking and
    // counter scaling on top of the default path.
    let program = Program::Sweep3d;
    let baseline = synthesize_at(WIDTHS[0], program, SiestaConfig::scaled());
    for &width in &WIDTHS[1..] {
        let got = synthesize_at(width, program, SiestaConfig::scaled());
        assert_eq!(got.wire_bytes, baseline.wire_bytes, "scaled wire bytes, {width} threads");
        assert_eq!(got.report, baseline.report, "scaled report, {width} threads");
    }
}

#[test]
fn memoization_is_bit_identical_on_every_workload() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // Memoization oracle: rebuilding Sequitur per rank (memo off) and
    // cloning the first-seen build per unique sequence (memo on) must
    // agree byte for byte — on every workload, at every pool width, in
    // every combination. The width-1 memoized run is the baseline.
    let memo_off = SiestaConfig { grammar_memo: false, ..SiestaConfig::default() };
    for program in Program::ALL {
        let baseline = synthesize_at(1, program, SiestaConfig::default());
        for &width in &WIDTHS {
            for config in [SiestaConfig::default(), memo_off] {
                let got = synthesize_at(width, program, config);
                let label = if config.grammar_memo { "memo" } else { "no-memo" };
                assert_eq!(
                    got.wire_bytes,
                    baseline.wire_bytes,
                    "{}: wire bytes diverge ({label}, {width} threads)",
                    program.name()
                );
                assert_eq!(
                    got.c_source,
                    baseline.c_source,
                    "{}: C source diverges ({label}, {width} threads)",
                    program.name()
                );
                assert_eq!(
                    got.report,
                    baseline.report,
                    "{}: report diverges ({label}, {width} threads)",
                    program.name()
                );
            }
        }
    }
}

#[test]
fn merged_trace_is_bit_identical_across_thread_counts() {
    let _g = WIDTH_LOCK.lock().unwrap();
    // The table-merge tree in isolation: same global table, same ids,
    // same serialized bytes at every width (including a non-power-of-two
    // rank count, where the last pair of each round is a passthrough).
    for nranks in [13, 16] {
        let trace_at = |width: usize| {
            siesta_par::with_threads(width, || {
                let siesta = Siesta::new(SiestaConfig::default());
                let (trace, _) = siesta.trace_run(machine(), nranks, move |r| {
                    Program::Sweep3d.body(ProblemSize::Tiny)(r)
                });
                siesta_trace::trace_to_bytes(&siesta_trace::merge_tables(trace))
            })
        };
        let baseline = trace_at(WIDTHS[0]);
        for &width in &WIDTHS[1..] {
            assert_eq!(
                trace_at(width),
                baseline,
                "merged trace diverges at {width} threads (nranks={nranks})"
            );
        }
    }
}
