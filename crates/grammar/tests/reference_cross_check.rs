//! Tier-1 randomized cross-check of the arena/interning Sequitur against
//! the naive tuple-keyed reference in `common/reference.rs`. Runs in the
//! default `cargo test` (no proptest dependency); the feature-gated
//! proptests add shrinking on top of the same oracle.
//!
//! Inputs mirror the shapes `proptests.rs::structured_seq` draws: pure
//! random over a small alphabet, a repeated phrase with noise, nested
//! loops, and long runs — each exercised in both RLE and classic mode.
//! On failure the seed is printed; replay by pinning `SEED0`.

#[path = "common/reference.rs"]
mod reference;

use reference::NaiveSequitur;
use siesta_grammar::Sequitur;

const SEED0: u64 = 0x5345_5155_4954_5552; // "SEQUITUR"

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % m.max(1)
    }
}

/// One randomized sequence per call, cycling through the four structured
/// shapes so every run covers all of them.
fn structured_seq(rng: &mut Lcg, case: u64) -> Vec<u32> {
    match case % 4 {
        // Pure random over a small alphabet.
        0 => {
            let len = rng.next(200) as usize;
            (0..len).map(|_| rng.next(8) as u32).collect()
        }
        // A repeated phrase with interleaved noise.
        1 => {
            let phrase: Vec<u32> =
                (0..2 + rng.next(5) as usize).map(|_| rng.next(6) as u32).collect();
            let mut seq = Vec::new();
            for _ in 0..1 + rng.next(12) {
                seq.extend(&phrase);
                for _ in 0..rng.next(3) {
                    seq.push(6 + rng.next(4) as u32);
                }
            }
            seq
        }
        // Nested loops: (a b^k c)^m.
        2 => {
            let (a, b, c) = (rng.next(4) as u32, 4 + rng.next(4) as u32, 8 + rng.next(4) as u32);
            let k = 1 + rng.next(6);
            let mut seq = Vec::new();
            for _ in 0..1 + rng.next(10) {
                seq.push(a);
                seq.extend(std::iter::repeat_n(b, k as usize));
                seq.push(c);
            }
            seq
        }
        // Long runs of few symbols.
        _ => {
            let mut seq = Vec::new();
            for _ in 0..1 + rng.next(8) {
                let s = rng.next(3) as u32;
                seq.extend(std::iter::repeat_n(s, 1 + rng.next(40) as usize));
            }
            seq
        }
    }
}

#[test]
fn interned_sequitur_matches_naive_reference() {
    let mut rng = Lcg(SEED0);
    for case in 0..400u64 {
        let seed = rng.0;
        let seq = structured_seq(&mut rng, case);
        let g = Sequitur::build(&seq);
        let naive = NaiveSequitur::build(&seq, true);
        assert_eq!(
            g.rules, naive,
            "RLE grammar diverges from naive reference (case {case}, seed {seed:#x}, \
             input {seq:?})"
        );
    }
}

#[test]
fn classic_sequitur_matches_naive_reference() {
    let mut rng = Lcg(SEED0 ^ 0xC1A5_51C0);
    for case in 0..400u64 {
        let seed = rng.0;
        let seq = structured_seq(&mut rng, case);
        let g = Sequitur::build_classic(&seq);
        let naive = NaiveSequitur::build(&seq, false);
        assert_eq!(
            g.rules, naive,
            "classic grammar diverges from naive reference (case {case}, seed {seed:#x}, \
             input {seq:?})"
        );
    }
}
