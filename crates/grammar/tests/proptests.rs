//! Property-based tests for the grammar pipeline.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_grammar::{merge_grammars, MergeConfig, RankSet, Sequitur};

#[path = "common/reference.rs"]
mod reference;
use reference::NaiveSequitur;

/// Structured sequence generator: random inputs rarely compress, so also
/// generate loopy inputs that exercise the interesting paths.
fn structured_seq() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        // Pure random.
        prop::collection::vec(0u32..8, 0..200),
        // Repeated phrase with noise between repetitions.
        (
            prop::collection::vec(0u32..6, 1..8),
            1usize..40,
            prop::collection::vec(0u32..6, 0..3),
        )
            .prop_map(|(phrase, reps, tail)| {
                let mut out = Vec::new();
                for _ in 0..reps {
                    out.extend(&phrase);
                }
                out.extend(tail);
                out
            }),
        // Nested loops: (a (b)^k c)^m.
        (1u64..20, 1usize..20).prop_map(|(k, m)| {
            let mut out = Vec::new();
            for _ in 0..m {
                out.push(1);
                out.extend(std::iter::repeat_n(2, k as usize));
                out.push(3);
            }
            out
        }),
        // Long runs.
        prop::collection::vec((0u32..4, 1usize..30), 0..20).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(s, n)| std::iter::repeat_n(s, n))
                .collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fundamental guarantee: grammar expansion reproduces the input.
    #[test]
    fn sequitur_round_trips(seq in structured_seq()) {
        let g = Sequitur::build(&seq);
        prop_assert_eq!(g.expand_main(), seq);
    }

    /// The arena/interning builder produces the *identical* rule table to
    /// the naive tuple-keyed reference implementation (in both RLE and
    /// classic mode) — any divergence pinpoints an aliasing bug in the
    /// intern tables, the packed digram keys, or the intrusive occurrence
    /// lists. `tests/reference_cross_check.rs` runs the same oracle in
    /// tier-1 with a fixed-seed LCG; this adds shrinking.
    #[test]
    fn interned_sequitur_matches_naive_reference(seq in structured_seq()) {
        prop_assert_eq!(Sequitur::build(&seq).rules, NaiveSequitur::build(&seq, true));
        prop_assert_eq!(Sequitur::build_classic(&seq).rules, NaiveSequitur::build(&seq, false));
    }

    /// Digram uniqueness, run-length, and utility invariants hold.
    #[test]
    fn sequitur_invariants_hold(seq in structured_seq()) {
        let g = Sequitur::build(&seq);
        g.assert_invariants();
    }

    /// The grammar never has more symbols than the input (compression may
    /// fail to help, but must not hurt by more than the rule overhead).
    #[test]
    fn grammar_size_bounded(seq in structured_seq()) {
        let g = Sequitur::build(&seq);
        prop_assert!(g.size() <= seq.len().max(1));
    }

    /// Merged grammars replay every rank exactly (losslessness across the
    /// whole intra + inter process pipeline).
    #[test]
    fn merge_is_lossless_per_rank(
        base in structured_seq(),
        variants in prop::collection::vec(prop::collection::vec(0u32..8, 0..5), 1..6),
    ) {
        // Each rank = base sequence with a small private suffix — the SPMD
        // shape (mostly identical, small divergences).
        let seqs: Vec<Vec<u32>> = variants
            .iter()
            .map(|tail| {
                let mut s = base.clone();
                s.extend(tail);
                s
            })
            .collect();
        let grammars: Vec<_> = seqs.iter().map(|s| Sequitur::build(s)).collect();
        let merged = merge_grammars(&grammars, &MergeConfig::default());
        for (r, expected) in seqs.iter().enumerate() {
            prop_assert_eq!(&merged.expand_for_rank(r as u32), expected);
        }
    }

    /// Rank-set union is commutative, associative, and idempotent; length
    /// and membership agree with a model set.
    #[test]
    fn rankset_algebra(
        a in prop::collection::btree_set(0u32..200, 0..40),
        b in prop::collection::btree_set(0u32..200, 0..40),
        c in prop::collection::btree_set(0u32..200, 0..40),
    ) {
        let ra = RankSet::from_iter(a.iter().copied());
        let rb = RankSet::from_iter(b.iter().copied());
        let rc = RankSet::from_iter(c.iter().copied());
        prop_assert_eq!(ra.union(&rb), rb.union(&ra));
        prop_assert_eq!(ra.union(&rb).union(&rc), ra.union(&rb.union(&rc)));
        prop_assert_eq!(ra.union(&ra), ra.clone());
        let model: std::collections::BTreeSet<u32> = a.union(&b).copied().collect();
        let u = ra.union(&rb);
        prop_assert_eq!(u.len(), model.len());
        for x in 0u32..200 {
            prop_assert_eq!(u.contains(x), model.contains(&x));
        }
        let round: Vec<u32> = u.iter().collect();
        let expect: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(round, expect);
    }
}
