//! Naive reference implementation of run-length Sequitur, used to
//! cross-check the arena/interning production builder in
//! `src/sequitur.rs`.
//!
//! Same algorithm, deliberately naive storage — the representation the
//! production code had before the arena rework:
//!
//! * nodes carry `(Sym, exp)` directly (no intern table), and the digram
//!   index keys on the full 32-byte `((Sym, u64), (Sym, u64))` tuple
//!   instead of packed ids;
//! * node slots are never recycled (no free list);
//! * rule reference counts and occurrence sites are recomputed by
//!   scanning every live node (no intrusive occurrence lists).
//!
//! Every *decision* the algorithm takes (run merges, rule reuse vs
//! creation, substitution order, utility inlining) depends only on map
//! lookups, never on iteration order — so the two implementations must
//! produce **identical** rule tables, and any divergence pinpoints a bug
//! in the interning, the packed digram keys, or the intrusive lists.

use std::collections::HashMap;

use siesta_grammar::{RSym, Sym};

const NIL: usize = usize::MAX;

struct Node {
    sym: Sym,
    exp: u64,
    prev: usize,
    next: usize,
    /// `NIL` for body nodes; the owning rule for guard nodes.
    guard_of: usize,
    alive: bool,
}

type Key = ((Sym, u64), (Sym, u64));

pub struct NaiveSequitur {
    nodes: Vec<Node>,
    /// Guard node of each rule; `NIL` once the rule was inlined.
    guards: Vec<usize>,
    digrams: HashMap<Key, usize>,
    rle: bool,
}

impl NaiveSequitur {
    pub fn new(rle: bool) -> NaiveSequitur {
        let mut s =
            NaiveSequitur { nodes: Vec::new(), guards: Vec::new(), digrams: HashMap::new(), rle };
        s.new_rule();
        s
    }

    /// Build the rule table for `seq` (compare against `Grammar::rules`).
    pub fn build(seq: &[u32], rle: bool) -> Vec<Vec<RSym>> {
        let mut s = NaiveSequitur::new(rle);
        for &t in seq {
            s.push(t);
        }
        s.into_rules()
    }

    pub fn push(&mut self, terminal: u32) {
        let guard = self.guards[0];
        let n = self.alloc(Sym::T(terminal), 1, NIL);
        let last = self.nodes[guard].prev;
        self.connect(last, n);
        self.connect(n, guard);
        self.check(last);
    }

    fn alloc(&mut self, sym: Sym, exp: u64, guard_of: usize) -> usize {
        self.nodes.push(Node { sym, exp, prev: NIL, next: NIL, guard_of, alive: true });
        self.nodes.len() - 1
    }

    fn new_rule(&mut self) -> usize {
        let rule = self.guards.len();
        let g = self.alloc(Sym::N(rule as u32), 1, rule);
        self.nodes[g].prev = g;
        self.nodes[g].next = g;
        self.guards.push(g);
        rule
    }

    fn connect(&mut self, a: usize, b: usize) {
        self.nodes[a].next = b;
        self.nodes[b].prev = a;
    }

    fn is_guard(&self, n: usize) -> bool {
        self.nodes[n].guard_of != NIL
    }

    fn key_at(&self, left: usize) -> Option<Key> {
        if self.is_guard(left) {
            return None;
        }
        let right = self.nodes[left].next;
        if self.is_guard(right) {
            return None;
        }
        Some((
            (self.nodes[left].sym, self.nodes[left].exp),
            (self.nodes[right].sym, self.nodes[right].exp),
        ))
    }

    fn forget(&mut self, left: usize) {
        if let Some(key) = self.key_at(left) {
            if self.digrams.get(&key) == Some(&left) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Naive occurrence scan: every live body node referencing `rule`.
    fn occurrences(&self, rule: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| {
                self.nodes[n].alive
                    && !self.is_guard(n)
                    && self.nodes[n].sym == Sym::N(rule as u32)
            })
            .collect()
    }

    fn check(&mut self, left: usize) {
        if left == NIL || !self.nodes[left].alive || self.is_guard(left) {
            return;
        }
        let right = self.nodes[left].next;
        if self.is_guard(right) {
            return;
        }
        if self.rle && self.nodes[left].sym == self.nodes[right].sym {
            self.merge_run(left, right);
            return;
        }
        let key = self.key_at(left).expect("both non-guard");
        match self.digrams.get(&key) {
            None => {
                self.digrams.insert(key, left);
            }
            Some(&existing) if existing == left => {}
            Some(&existing) => {
                if !self.rle
                    && (self.nodes[existing].next == left || self.nodes[left].next == existing)
                {
                    return; // the `aaa` overlap of classic Sequitur
                }
                self.handle_match(existing, left);
            }
        }
    }

    fn merge_run(&mut self, left: usize, right: usize) {
        self.forget(self.nodes[left].prev);
        self.forget(left);
        self.forget(right);
        let sym = self.nodes[left].sym;
        let dropped = match sym {
            Sym::N(rule) => Some(rule as usize),
            Sym::T(_) => None,
        };
        self.nodes[left].exp += self.nodes[right].exp;
        let after = self.nodes[right].next;
        self.connect(left, after);
        self.nodes[right].alive = false;
        self.check(self.nodes[left].prev);
        if self.nodes[left].alive {
            self.check(left);
        }
        if let Some(r) = dropped {
            self.enforce_utility(r);
        }
    }

    fn handle_match(&mut self, existing: usize, fresh: usize) {
        let e_prev = self.nodes[existing].prev;
        let e_next_next = self.nodes[self.nodes[existing].next].next;
        if self.is_guard(e_prev)
            && self.is_guard(e_next_next)
            && self.nodes[e_prev].guard_of == self.nodes[e_next_next].guard_of
        {
            let rule = self.nodes[e_prev].guard_of;
            self.substitute(fresh, rule);
            self.enforce_utility(rule);
        } else {
            let key = self.key_at(existing).expect("valid digram");
            let ((s1, e1), (s2, e2)) = key;
            let rule = self.new_rule();
            let g = self.guards[rule];
            let a = self.alloc(s1, e1, NIL);
            let b = self.alloc(s2, e2, NIL);
            self.connect(g, a);
            self.connect(a, b);
            self.connect(b, g);
            self.digrams.insert(key, a);
            self.substitute(existing, rule);
            if self.nodes[fresh].alive && self.key_at(fresh) == Some(key) {
                self.substitute(fresh, rule);
            }
            if let Sym::N(r) = s1 {
                self.enforce_utility(r as usize);
            }
            if let Sym::N(r) = s2 {
                self.enforce_utility(r as usize);
            }
            self.enforce_utility(rule);
        }
    }

    fn substitute(&mut self, left: usize, rule: usize) {
        let right = self.nodes[left].next;
        let before = self.nodes[left].prev;
        let after = self.nodes[right].next;
        self.forget(before);
        self.forget(left);
        self.forget(right);
        let mut dropped = [NIL; 2];
        for (i, n) in [left, right].into_iter().enumerate() {
            if let Sym::N(r) = self.nodes[n].sym {
                dropped[i] = r as usize;
            }
        }
        let nn = self.alloc(Sym::N(rule as u32), 1, NIL);
        self.connect(before, nn);
        self.connect(nn, after);
        self.nodes[left].alive = false;
        self.nodes[right].alive = false;
        self.check(before);
        if self.nodes[nn].alive {
            self.check(nn);
        }
        for r in dropped {
            if r != NIL {
                self.enforce_utility(r);
            }
        }
    }

    fn enforce_utility(&mut self, rule: usize) {
        if rule == 0 || self.guards[rule] == NIL {
            return;
        }
        let occ = self.occurrences(rule);
        if occ.len() != 1 {
            return;
        }
        let site = occ[0];
        if self.nodes[site].exp != 1 {
            return;
        }
        let guard = self.guards[rule];
        let first = self.nodes[guard].next;
        let last = self.nodes[guard].prev;
        if first == guard {
            return; // empty rule body
        }
        let before = self.nodes[site].prev;
        let after = self.nodes[site].next;
        self.forget(before);
        self.forget(site);
        self.connect(before, first);
        self.connect(last, after);
        self.nodes[site].alive = false;
        self.nodes[guard].alive = false;
        self.guards[rule] = NIL;
        self.check(before);
        if self.nodes[last].alive {
            self.check(last);
        }
    }

    /// Surviving rules, renumbered densely in creation order (main first) —
    /// the same numbering `Sequitur::into_grammar` produces.
    pub fn into_rules(self) -> Vec<Vec<RSym>> {
        let mut remap: HashMap<usize, u32> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for (rule, &g) in self.guards.iter().enumerate() {
            if g != NIL {
                remap.insert(rule, order.len() as u32);
                order.push(rule);
            }
        }
        let mut rules = Vec::with_capacity(order.len());
        for &rule in &order {
            let g = self.guards[rule];
            let mut body = Vec::new();
            let mut n = self.nodes[g].next;
            while n != g {
                let sym = match self.nodes[n].sym {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(r) => Sym::N(remap[&(r as usize)]),
                };
                body.push(RSym::new(sym, self.nodes[n].exp));
                n = self.nodes[n].next;
            }
            rules.push(body);
        }
        rules
    }
}
