//! Longest common subsequence via Myers' O((N+M)·D) diff.
//!
//! The inter-process main-rule merge (Section 2.6.2) computes the LCS of two
//! ranks' main rules. Main rules across ranks of an SPMD program are nearly
//! identical — exactly the regime where Myers' algorithm is fast, because
//! its cost is proportional to the *difference* D, not the product of the
//! lengths.

/// Result of a diff: the matching index pairs (the LCS as positions into
/// both inputs, strictly increasing in both), plus the edit distance
/// (insertions + deletions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    pub matches: Vec<(usize, usize)>,
    pub distance: usize,
}

/// Myers diff of `a` and `b`. `max_d` bounds the explored edit distance;
/// `None` is returned when the inputs differ by more than that (callers use
/// this as a cheap "too dissimilar to merge" signal).
pub fn diff<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Option<Diff> {
    let n = a.len();
    let m = b.len();
    let max_d = max_d.min(n + m);
    let off = max_d as isize + 1;
    let width = 2 * max_d + 3;
    let mut v = vec![0usize; width];
    let mut trace: Vec<Vec<usize>> = Vec::new();

    let mut found_d: Option<usize> = None;
    let mut cells = 0u64;
    'outer: for d in 0..=max_d {
        trace.push(v.clone()); // state *before* exploring depth d
        let di = d as isize;
        let mut k = -di;
        while k <= di {
            cells += 1;
            let idx = (k + off) as usize;
            let mut x = if k == -di || (k != di && v[idx - 1] < v[idx + 1]) {
                v[idx + 1] // move down (consume from b)
            } else {
                v[idx - 1] + 1 // move right (consume from a)
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                found_d = Some(d);
                break 'outer;
            }
            k += 2;
        }
    }
    // One atomic add per diff() call; the handle lookup is cached.
    {
        use std::sync::OnceLock;
        static CELLS: OnceLock<&'static siesta_obs::Counter> = OnceLock::new();
        CELLS.get_or_init(|| siesta_obs::counter("grammar.lcs_cells")).add(cells);
    }
    let d_final = found_d?;

    // Backtrack through the per-depth snapshots.
    let mut matches = Vec::new();
    let mut x = n as isize;
    let mut y = m as isize;
    for d in (0..=d_final).rev() {
        let vprev = &trace[d];
        let di = d as isize;
        let k = x - y;
        let prev_k = if k == -di
            || (k != di && vprev[(k - 1 + off) as usize] < vprev[(k + 1 + off) as usize])
        {
            k + 1
        } else {
            k - 1
        };
        let prev_x = vprev[(prev_k + off) as usize] as isize;
        let prev_y = prev_x - prev_k;
        // Diagonal (matching) moves between the edit step and (x, y).
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            matches.push((x as usize, y as usize));
        }
        if d == 0 {
            break;
        }
        x = prev_x;
        y = prev_y;
    }
    matches.reverse();
    Some(Diff { matches, distance: d_final })
}

/// Length of the LCS (convenience).
pub fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    diff(a, b, a.len() + b.len()).map(|d| d.matches.len()).unwrap_or(0)
}

/// Insert/delete edit distance, or `None` if above `max_d`.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Option<usize> {
    diff(a, b, max_d).map(|d| d.distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LCS via classic DP, for cross-checking.
    fn lcs_dp<T: PartialEq>(a: &[T], b: &[T]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    fn check(a: &[u32], b: &[u32]) {
        let d = diff(a, b, a.len() + b.len()).expect("within bound");
        // LCS length matches the DP reference.
        assert_eq!(d.matches.len(), lcs_dp(a, b), "lcs length for {a:?} vs {b:?}");
        // Distance identity for Myers: D = N + M − 2·LCS.
        assert_eq!(d.distance, a.len() + b.len() - 2 * d.matches.len());
        // Matches are valid, strictly increasing pairs of equal elements.
        let mut last: Option<(usize, usize)> = None;
        for &(i, j) in &d.matches {
            assert_eq!(a[i], b[j]);
            if let Some((pi, pj)) = last {
                assert!(i > pi && j > pj);
            }
            last = Some((i, j));
        }
    }

    #[test]
    fn identical_sequences() {
        let a = [1, 2, 3, 4, 5];
        let d = diff(&a, &a, 10).unwrap();
        assert_eq!(d.distance, 0);
        assert_eq!(d.matches.len(), 5);
        assert_eq!(d.matches, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn empty_cases() {
        check(&[], &[]);
        check(&[1, 2], &[]);
        check(&[], &[3]);
    }

    #[test]
    fn classic_examples() {
        check(&[1, 2, 3, 2, 1], &[3, 2, 1, 2, 3]);
        check(&[1, 2, 3], &[4, 5, 6]);
        check(&[1, 2, 3, 4], &[2, 3]);
        check(&[2, 3], &[1, 2, 3, 4]);
        check(&[1, 3, 1, 3], &[3, 1, 3, 1]);
    }

    #[test]
    fn spmd_like_small_divergence() {
        // Two "main rules" that differ only in boundary behaviour.
        let a = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let b = [1, 2, 3, 99, 4, 5, 6, 8, 9, 10];
        let d = diff(&a, &b, 20).unwrap();
        assert_eq!(d.matches.len(), 9);
        assert_eq!(d.distance, 2); // one insertion + one deletion
    }

    #[test]
    fn bound_rejects_dissimilar_inputs() {
        let a = [1u32; 50];
        let b = [2u32; 50];
        assert!(diff(&a, &b, 10).is_none());
        assert!(edit_distance(&a, &b, 10).is_none());
        assert_eq!(edit_distance(&a, &b, 200), Some(100));
    }

    #[test]
    fn randomized_cross_check_against_dp() {
        let mut x = 42u64;
        let mut rnd = move |m: u64| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) % m
        };
        for _ in 0..300 {
            let n = rnd(14) as usize;
            let m = rnd(14) as usize;
            let a: Vec<u32> = (0..n).map(|_| rnd(4) as u32).collect();
            let b: Vec<u32> = (0..m).map(|_| rnd(4) as u32).collect();
            check(&a, &b);
        }
    }

    #[test]
    fn lcs_len_helper() {
        assert_eq!(lcs_len(&[1, 2, 3], &[1, 3]), 2);
        assert_eq!(lcs_len::<u32>(&[], &[]), 0);
    }
}
