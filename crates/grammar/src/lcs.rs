//! Longest common subsequence via Myers' O((N+M)·D) diff.
//!
//! The inter-process main-rule merge (Section 2.6.2) computes the LCS of two
//! ranks' main rules. Main rules across ranks of an SPMD program are nearly
//! identical — exactly the regime where Myers' algorithm is fast, because
//! its cost is proportional to the *difference* D, not the product of the
//! lengths.
//!
//! The backtracking trace is stored as a **flat triangular buffer**: depth
//! `d` only ever explores diagonals `k = -d, -d+2, …, d` (`d + 1` cells),
//! so the whole trace costs `(D+1)(D+2)/2` words instead of the
//! `O(D · max_d)` the old per-depth frontier clones paid — and the buffer
//! is thread-local scratch, reused across calls, so a warm thread diffs
//! without allocating the trace at all (DESIGN.md §13).

use std::cell::RefCell;

/// Result of a diff: the matching index pairs (the LCS as positions into
/// both inputs, strictly increasing in both), plus the edit distance
/// (insertions + deletions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    pub matches: Vec<(usize, usize)>,
    pub distance: usize,
}

thread_local! {
    /// Grow-only Myers trace scratch, one per thread (pool workers and the
    /// caller each keep their own; determinism is untouched because the
    /// buffer's contents are fully rewritten by every call that reads it).
    static MYERS_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Myers diff of `a` and `b`. `max_d` bounds the explored edit distance;
/// `None` is returned when the inputs differ by more than that (callers use
/// this as a cheap "too dissimilar to merge" signal).
pub fn diff<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Option<Diff> {
    MYERS_SCRATCH.with(|cell| {
        // `take` instead of `borrow_mut`: if a `PartialEq` impl ever
        // re-entered `diff`, the inner call would simply run on a fresh
        // (allocating) buffer rather than panic.
        let mut buf = cell.take();
        buf.clear();
        let out = diff_with_buf(a, b, max_d, &mut buf);
        cell.replace(buf);
        out
    })
}

/// Row `d` of the triangular trace lives at `buf[d(d+1)/2 ..][..d + 1]`;
/// entry `j` holds the furthest `x` on diagonal `k = 2j - d` after depth
/// `d` completed.
fn diff_with_buf<T: PartialEq>(
    a: &[T],
    b: &[T],
    max_d: usize,
    buf: &mut Vec<usize>,
) -> Option<Diff> {
    let n = a.len();
    let m = b.len();
    let max_d = max_d.min(n + m);

    let mut found_d: Option<usize> = None;
    let mut cells = 0u64;
    'outer: for d in 0..=max_d {
        let prev = if d > 0 { (d - 1) * d / 2 } else { 0 };
        let row = buf.len(); // == d * (d + 1) / 2
        buf.resize(row + d + 1, 0);
        for j in 0..=d {
            cells += 1;
            let k = 2 * j as isize - d as isize;
            // Step from the better depth-(d−1) neighbour: down (consume
            // from b) takes x from diagonal k+1 (row entry j), right
            // (consume from a) takes x+1 from diagonal k−1 (entry j−1).
            let mut x = if d == 0 {
                0
            } else if j == 0 {
                buf[prev]
            } else if j == d || buf[prev + j - 1] >= buf[prev + j] {
                buf[prev + j - 1] + 1
            } else {
                buf[prev + j]
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            buf[row + j] = x;
            if x >= n && y >= m {
                found_d = Some(d);
                break 'outer;
            }
        }
    }
    // One atomic add per diff() call; the handle lookup is cached.
    {
        use std::sync::OnceLock;
        static CELLS: OnceLock<&'static siesta_obs::Counter> = OnceLock::new();
        CELLS.get_or_init(|| siesta_obs::counter("grammar.lcs_cells")).add(cells);
    }
    let d_final = found_d?;

    // Backtrack through the triangular rows, mirroring the forward pass's
    // neighbour choice exactly.
    let mut matches = Vec::new();
    let mut x = n as isize;
    let mut y = m as isize;
    for d in (1..=d_final).rev() {
        let prev = (d - 1) * d / 2;
        let di = d as isize;
        let k = x - y;
        let j = ((k + di) / 2) as usize;
        let down = k == -di || (k != di && buf[prev + j - 1] < buf[prev + j]);
        let (prev_k, prev_x) = if down {
            (k + 1, buf[prev + j] as isize)
        } else {
            (k - 1, buf[prev + j - 1] as isize)
        };
        let prev_y = prev_x - prev_k;
        // Diagonal (matching) moves between the edit step and (x, y).
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            matches.push((x as usize, y as usize));
        }
        x = prev_x;
        y = prev_y;
    }
    // Depth 0: whatever remains of the prefix is pure diagonal.
    while x > 0 && y > 0 {
        x -= 1;
        y -= 1;
        matches.push((x as usize, y as usize));
    }
    matches.reverse();
    Some(Diff { matches, distance: d_final })
}

/// Length of the LCS (convenience).
pub fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    diff(a, b, a.len() + b.len()).map(|d| d.matches.len()).unwrap_or(0)
}

/// Insert/delete edit distance, or `None` if above `max_d`.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Option<usize> {
    diff(a, b, max_d).map(|d| d.distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LCS via classic DP, for cross-checking.
    fn lcs_dp<T: PartialEq>(a: &[T], b: &[T]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    fn check(a: &[u32], b: &[u32]) {
        let d = diff(a, b, a.len() + b.len()).expect("within bound");
        // LCS length matches the DP reference.
        assert_eq!(d.matches.len(), lcs_dp(a, b), "lcs length for {a:?} vs {b:?}");
        // Distance identity for Myers: D = N + M − 2·LCS.
        assert_eq!(d.distance, a.len() + b.len() - 2 * d.matches.len());
        // Matches are valid, strictly increasing pairs of equal elements.
        let mut last: Option<(usize, usize)> = None;
        for &(i, j) in &d.matches {
            assert_eq!(a[i], b[j]);
            if let Some((pi, pj)) = last {
                assert!(i > pi && j > pj);
            }
            last = Some((i, j));
        }
    }

    #[test]
    fn identical_sequences() {
        let a = [1, 2, 3, 4, 5];
        let d = diff(&a, &a, 10).unwrap();
        assert_eq!(d.distance, 0);
        assert_eq!(d.matches.len(), 5);
        assert_eq!(d.matches, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn empty_cases() {
        check(&[], &[]);
        check(&[1, 2], &[]);
        check(&[], &[3]);
    }

    #[test]
    fn classic_examples() {
        check(&[1, 2, 3, 2, 1], &[3, 2, 1, 2, 3]);
        check(&[1, 2, 3], &[4, 5, 6]);
        check(&[1, 2, 3, 4], &[2, 3]);
        check(&[2, 3], &[1, 2, 3, 4]);
        check(&[1, 3, 1, 3], &[3, 1, 3, 1]);
    }

    #[test]
    fn spmd_like_small_divergence() {
        // Two "main rules" that differ only in boundary behaviour.
        let a = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let b = [1, 2, 3, 99, 4, 5, 6, 8, 9, 10];
        let d = diff(&a, &b, 20).unwrap();
        assert_eq!(d.matches.len(), 9);
        assert_eq!(d.distance, 2); // one insertion + one deletion
    }

    #[test]
    fn bound_rejects_dissimilar_inputs() {
        let a = [1u32; 50];
        let b = [2u32; 50];
        assert!(diff(&a, &b, 10).is_none());
        assert!(edit_distance(&a, &b, 10).is_none());
        assert_eq!(edit_distance(&a, &b, 200), Some(100));
    }

    #[test]
    fn randomized_cross_check_against_dp() {
        let mut x = 42u64;
        let mut rnd = move |m: u64| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) % m
        };
        for _ in 0..300 {
            let n = rnd(14) as usize;
            let m = rnd(14) as usize;
            let a: Vec<u32> = (0..n).map(|_| rnd(4) as u32).collect();
            let b: Vec<u32> = (0..m).map(|_| rnd(4) as u32).collect();
            check(&a, &b);
        }
    }

    #[test]
    fn lcs_len_helper() {
        assert_eq!(lcs_len(&[1, 2, 3], &[1, 3]), 2);
        assert_eq!(lcs_len::<u32>(&[], &[]), 0);
    }
}
