//! Grammar symbols, run-length symbols, and rank sets.

use std::fmt;

/// A grammar symbol: either a terminal (a unique trace event id) or a
/// non-terminal (a rule id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// Terminal — an entry of the (eventually global) event table.
    T(u32),
    /// Non-terminal — a grammar rule.
    N(u32),
}

impl Sym {
    pub fn is_terminal(self) -> bool {
        matches!(self, Sym::T(_))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::T(t) => write!(f, "t{t}"),
            Sym::N(n) => write!(f, "R{n}"),
        }
    }
}

/// A run-length symbol `sym^exp` — the space optimization of Section 2.5.2
/// (constraint 3): adjacent equal symbols merge into powers, taking regular
/// loops from `O(log n)` rule chains to `O(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RSym {
    pub sym: Sym,
    pub exp: u64,
}

impl RSym {
    pub fn new(sym: Sym, exp: u64) -> RSym {
        debug_assert!(exp >= 1);
        RSym { sym, exp }
    }

    pub fn once(sym: Sym) -> RSym {
        RSym { sym, exp: 1 }
    }
}

impl fmt::Display for RSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exp == 1 {
            write!(f, "{}", self.sym)
        } else {
            write!(f, "{}^{}", self.sym, self.exp)
        }
    }
}

/// A compact set of process ranks, stored as sorted, disjoint, inclusive
/// ranges. Main-rule symbols carry one of these after the inter-process
/// merge; code generation turns it into a branch condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RankSet {
    /// Sorted, coalesced `[start, end]` ranges (inclusive).
    ranges: Vec<(u32, u32)>,
}

impl RankSet {
    pub fn empty() -> RankSet {
        RankSet { ranges: Vec::new() }
    }

    pub fn single(rank: u32) -> RankSet {
        RankSet { ranges: vec![(rank, rank)] }
    }

    /// The full set `0..nranks`.
    pub fn all(nranks: u32) -> RankSet {
        if nranks == 0 {
            RankSet::empty()
        } else {
            RankSet { ranges: vec![(0, nranks - 1)] }
        }
    }

    fn push_sorted(&mut self, rank: u32) {
        if let Some(last) = self.ranges.last_mut() {
            if rank <= last.1 {
                return;
            }
            if rank == last.1 + 1 {
                last.1 = rank;
                return;
            }
        }
        self.ranges.push((rank, rank));
    }

    pub fn contains(&self, rank: u32) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if rank < s {
                    std::cmp::Ordering::Greater
                } else if rank > e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| (e - s + 1) as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges.iter().flat_map(|&(s, e)| s..=e)
    }

    /// Set union.
    pub fn union(&self, other: &RankSet) -> RankSet {
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        merged.extend_from_slice(&self.ranges);
        merged.extend_from_slice(&other.ranges);
        merged.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(merged.len());
        for (s, e) in merged {
            match out.last_mut() {
                Some(last) if s <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(e);
                }
                _ => out.push((s, e)),
            }
        }
        RankSet { ranges: out }
    }

    /// The underlying ranges (for code generation of branch conditions).
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

impl FromIterator<u32> for RankSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> RankSet {
        let mut v: Vec<u32> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let mut out = RankSet::empty();
        for r in v {
            out.push_sorted(r);
        }
        out
    }
}

impl fmt::Display for RankSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if s == e {
                write!(f, "{s}")?;
            } else {
                write!(f, "{s}-{e}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RSym::new(Sym::T(3), 1).to_string(), "t3");
        assert_eq!(RSym::new(Sym::N(2), 5).to_string(), "R2^5");
    }

    #[test]
    fn rankset_from_iter_coalesces() {
        let s = RankSet::from_iter([3, 1, 2, 2, 7, 8, 10]);
        assert_eq!(s.ranges(), &[(1, 3), (7, 8), (10, 10)]);
        assert_eq!(s.len(), 6);
        assert!(s.contains(2));
        assert!(s.contains(10));
        assert!(!s.contains(4));
        assert!(!s.contains(0));
    }

    #[test]
    fn rankset_union() {
        let a = RankSet::from_iter([0, 1, 2, 8]);
        let b = RankSet::from_iter([3, 4, 9, 20]);
        let u = a.union(&b);
        assert_eq!(u.ranges(), &[(0, 4), (8, 9), (20, 20)]);
        // Union with self is identity.
        assert_eq!(a.union(&a), a);
        // Union is commutative.
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn rankset_all_and_empty() {
        assert!(RankSet::empty().is_empty());
        assert_eq!(RankSet::all(4).ranges(), &[(0, 3)]);
        assert_eq!(RankSet::all(0), RankSet::empty());
        assert_eq!(RankSet::all(4).len(), 4);
    }

    #[test]
    fn rankset_iter_round_trips() {
        let original: Vec<u32> = vec![0, 5, 6, 7, 9];
        let s = RankSet::from_iter(original.clone());
        let back: Vec<u32> = s.iter().collect();
        assert_eq!(back, original);
    }

    #[test]
    fn rankset_display() {
        assert_eq!(RankSet::from_iter([1, 2, 3, 9]).to_string(), "{1-3,9}");
        assert_eq!(RankSet::empty().to_string(), "{}");
    }
}
