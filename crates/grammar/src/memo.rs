//! Cross-rank grammar memoization.
//!
//! SPMD traces are near-identical across ranks — the exact redundancy the
//! inter-process merge (paper Section 2.6) exploits *after* every rank has
//! already paid full Sequitur construction cost. This module moves the
//! dedup in front of that cost: ranks whose global-id sequences are
//! byte-for-byte equal share one grammar build, so construction scales
//! with the number of *unique* sequences instead of the rank count.
//!
//! The mechanism mirrors `ProxySearcher::search_batch`'s counter-vector
//! dedup, and keeps the same determinism contract (DESIGN.md §10):
//!
//! * Unique sequences are discovered in **first-seen rank order** — the
//!   dedup index is a map, but the solve list is built by insertion
//!   order, so neither hashing nor thread scheduling can reorder it.
//! * Duplicates receive a **clone** of the first-seen build. `Sequitur`
//!   is a pure function of its input sequence, so the clone is
//!   bit-identical to rebuilding — memoization on vs. off cannot change
//!   a single output bit (`tests/differential_parallel.rs` enforces it).
//!
//! Hit rates are observable as `grammar.memo.hits` (ranks served by a
//! clone) against `grammar.memo.unique` (grammars actually built).

use siesta_hash::fx_map_with_capacity;

use crate::grammar::Grammar;
use crate::sequitur::Sequitur;

/// Small-work guard: fan out only when the sequences to build carry
/// enough symbols to amortize the pool region hand-off. Shared by the
/// pipeline's Sequitur phase via this module.
pub const MIN_SYMBOLS_TO_FAN_OUT: usize = 8192;

/// Build one grammar per rank sequence. With `memoize`, duplicate
/// sequences are content-deduped first and each unique sequence is built
/// once (fanning out across the worker pool), then aliased back to every
/// rank that shares it; without, every rank builds independently. Both
/// paths return bit-identical grammars in rank order.
pub fn build_rank_grammars(seqs: &[Vec<u32>], memoize: bool) -> Vec<Grammar> {
    if !memoize {
        let symbols: usize = seqs.iter().map(Vec::len).sum();
        return siesta_par::parallel_map_min_work(
            seqs,
            symbols,
            MIN_SYMBOLS_TO_FAN_OUT,
            |rank, seq| {
                let _span = siesta_obs::span!("sequitur", rank = rank, symbols = seq.len());
                Sequitur::build(seq)
            },
        );
    }
    // Content-hash dedup (deterministic FxHash over the whole sequence;
    // equality on collision, so a hash collision costs time, never
    // correctness), first-seen order.
    let mut index = fx_map_with_capacity::<&[u32], usize>(seqs.len());
    let mut unique: Vec<&[u32]> = Vec::new();
    let assign: Vec<usize> = seqs
        .iter()
        .map(|s| {
            *index.entry(s.as_slice()).or_insert_with(|| {
                unique.push(s.as_slice());
                unique.len() - 1
            })
        })
        .collect();
    siesta_obs::counter("grammar.memo.unique").add(unique.len() as u64);
    siesta_obs::counter("grammar.memo.hits").add((seqs.len() - unique.len()) as u64);
    let symbols: usize = unique.iter().map(|s| s.len()).sum();
    let built = siesta_par::parallel_map_min_work(
        &unique,
        symbols,
        MIN_SYMBOLS_TO_FAN_OUT,
        |u, seq| {
            let _span = siesta_obs::span!("sequitur", unique = u, symbols = seq.len());
            Sequitur::build(seq)
        },
    );
    if built.len() == seqs.len() {
        // No duplicates: first-seen order is input order, so the built
        // vector already is the answer — skip the per-rank clones.
        return built;
    }
    assign.into_iter().map(|u| built[u].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(tail: u32) -> Vec<u32> {
        let mut s: Vec<u32> = std::iter::repeat_n([1u32, 2, 3, 2, 4], 40).flatten().collect();
        s.push(tail);
        s
    }

    #[test]
    fn memoized_equals_unmemoized() {
        // 16 ranks, 3 unique sequences tiled SPMD-style.
        let seqs: Vec<Vec<u32>> = (0..16).map(|r| seq(100 + r % 3)).collect();
        let memo = build_rank_grammars(&seqs, true);
        let plain = build_rank_grammars(&seqs, false);
        assert_eq!(memo, plain);
        assert_eq!(memo.len(), 16);
        // Duplicate ranks share identical grammars.
        assert_eq!(memo[0], memo[3]);
        assert_ne!(memo[0], memo[1]);
    }

    #[test]
    fn all_unique_and_all_duplicate_extremes() {
        let all_dup: Vec<Vec<u32>> = vec![seq(7); 8];
        let g = build_rank_grammars(&all_dup, true);
        assert!(g.windows(2).all(|w| w[0] == w[1]));

        let all_unique: Vec<Vec<u32>> = (0..8).map(seq).collect();
        let g = build_rank_grammars(&all_unique, true);
        assert_eq!(g, build_rank_grammars(&all_unique, false));
    }

    #[test]
    fn empty_inputs() {
        assert!(build_rank_grammars(&[], true).is_empty());
        // Ranks with empty sequences are legal (and all identical).
        let g = build_rank_grammars(&[vec![], vec![]], true);
        assert_eq!(g[0], g[1]);
    }

    #[test]
    fn first_seen_order_governs_at_any_width() {
        let seqs: Vec<Vec<u32>> = (0..32).map(|r| seq(r % 5)).collect();
        let baseline = siesta_par::with_threads(1, || build_rank_grammars(&seqs, true));
        for w in [2, 8] {
            let got = siesta_par::with_threads(w, || build_rank_grammars(&seqs, true));
            assert_eq!(got, baseline, "width {w}");
        }
    }
}
