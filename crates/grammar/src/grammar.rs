//! Immutable grammar representation with expansion, depth computation, and
//! invariant checks.

use std::collections::HashMap;

use crate::symbol::{RSym, Sym};

/// A context-free grammar with run-length symbols. Rule 0 is the main rule
/// (the start symbol `S`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    pub rules: Vec<Vec<RSym>>,
}

impl Grammar {
    /// A grammar whose main rule is the given body.
    pub fn from_main(body: Vec<RSym>) -> Grammar {
        Grammar { rules: vec![body] }
    }

    /// Total number of run-length symbols across all rule bodies — the
    /// paper's grammar-size measure.
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| r.len()).sum()
    }

    /// Expand a rule to the flat terminal sequence it derives.
    pub fn expand(&self, rule: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.expand_into(rule, &mut out);
        out
    }

    /// Expand the main rule.
    pub fn expand_main(&self) -> Vec<u32> {
        self.expand(0)
    }

    fn expand_into(&self, rule: u32, out: &mut Vec<u32>) {
        for rs in &self.rules[rule as usize] {
            for _ in 0..rs.exp {
                match rs.sym {
                    Sym::T(t) => out.push(t),
                    Sym::N(n) => self.expand_into(n, out),
                }
            }
        }
    }

    /// Number of terminals the main rule derives, without materializing
    /// the expansion (safe for astronomically compressed grammars).
    pub fn expanded_len(&self, rule: u32) -> u128 {
        let mut memo: HashMap<u32, u128> = HashMap::new();
        self.expanded_len_memo(rule, &mut memo)
    }

    fn expanded_len_memo(&self, rule: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if let Some(&v) = memo.get(&rule) {
            return v;
        }
        let mut total: u128 = 0;
        for rs in &self.rules[rule as usize] {
            let unit = match rs.sym {
                Sym::T(_) => 1,
                Sym::N(n) => self.expanded_len_memo(n, memo),
            };
            total += unit * rs.exp as u128;
        }
        memo.insert(rule, total);
        total
    }

    /// Depth of every rule: terminals are depth 0; a rule's depth is
    /// 1 + max depth of its body symbols. Used to order the inter-process
    /// non-terminal merge (Section 2.6.2).
    pub fn depths(&self) -> Vec<u32> {
        let mut depths = vec![u32::MAX; self.rules.len()];
        for r in 0..self.rules.len() {
            self.depth_of(r as u32, &mut depths);
        }
        depths
    }

    fn depth_of(&self, rule: u32, depths: &mut Vec<u32>) -> u32 {
        if depths[rule as usize] != u32::MAX {
            return depths[rule as usize];
        }
        let mut d = 0;
        for rs in &self.rules[rule as usize] {
            if let Sym::N(n) = rs.sym {
                d = d.max(1 + self.depth_of(n, depths));
            } else {
                d = d.max(1);
            }
        }
        depths[rule as usize] = d;
        d
    }

    /// Count references to each rule from other rule bodies.
    pub fn ref_counts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.rules.len()];
        for body in &self.rules {
            for rs in body {
                if let Sym::N(n) = rs.sym {
                    refs[n as usize] += 1;
                }
            }
        }
        refs
    }

    /// Rewrite every terminal `t` to `remap[t]`, leaving rule structure,
    /// exponents, and numbering untouched.
    ///
    /// Sequitur's decisions depend only on the *equality pattern* of its
    /// input, never on terminal values, so for an **injective** remap this
    /// commutes with construction:
    /// `build(seq).relabel_terminals(r) == build(r ∘ seq)`. The streaming
    /// ingest path relies on that to lift grammars built over rank-local
    /// ids into the merged global id space without re-running Sequitur
    /// (`sequitur::tests::relabel_commutes_with_build` locks the property
    /// in). A non-injective remap collapses distinct terminals and the
    /// equality pattern changes — callers must fall back to expanding and
    /// rebuilding in that case.
    pub fn relabel_terminals(&self, remap: &[u32]) -> Grammar {
        let rules = self
            .rules
            .iter()
            .map(|body| {
                body.iter()
                    .map(|rs| match rs.sym {
                        Sym::T(t) => RSym::new(Sym::T(remap[t as usize]), rs.exp),
                        n => RSym::new(n, rs.exp),
                    })
                    .collect()
            })
            .collect();
        Grammar { rules }
    }

    /// Verify the Sequitur invariants; panics with a description otherwise.
    /// Test-support API, also used by the pipeline's debug assertions.
    pub fn assert_invariants(&self) {
        // 1. No adjacent equal symbols (run-length invariant).
        for (ri, body) in self.rules.iter().enumerate() {
            for w in body.windows(2) {
                assert!(
                    w[0].sym != w[1].sym,
                    "rule {ri}: adjacent equal symbols {} {}",
                    w[0],
                    w[1]
                );
            }
        }
        // 2. Digram uniqueness across all bodies.
        let mut seen: HashMap<(Sym, u64, Sym, u64), (usize, usize)> = HashMap::new();
        for (ri, body) in self.rules.iter().enumerate() {
            for (i, w) in body.windows(2).enumerate() {
                let key = (w[0].sym, w[0].exp, w[1].sym, w[1].exp);
                if let Some(&(pr, pi)) = seen.get(&key) {
                    panic!(
                        "digram {} {} occurs twice: rule {pr}@{pi} and rule {ri}@{i}",
                        w[0], w[1]
                    );
                }
                seen.insert(key, (ri, i));
            }
        }
        // 3. Utility: every non-main rule is referenced ≥ 2 times, or once
        //    with exponent ≥ 2.
        let mut ref_exp: Vec<Vec<u64>> = vec![Vec::new(); self.rules.len()];
        for body in &self.rules {
            for rs in body {
                if let Sym::N(n) = rs.sym {
                    ref_exp[n as usize].push(rs.exp);
                }
            }
        }
        for (ri, exps) in ref_exp.iter().enumerate().skip(1) {
            let useful = exps.len() >= 2 || exps.iter().any(|&e| e >= 2);
            assert!(useful, "rule {ri} fails utility: referenced {exps:?}");
        }
        // 4. All referenced rules exist and are acyclic (depths terminates).
        let _ = self.depths();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, exp: u64) -> RSym {
        RSym::new(Sym::T(id), exp)
    }

    fn n(id: u32, exp: u64) -> RSym {
        RSym::new(Sym::N(id), exp)
    }

    #[test]
    fn expansion_with_powers_and_nesting() {
        // S → R1^2 t9 ; R1 → t1 t2^3
        let g = Grammar { rules: vec![vec![n(1, 2), t(9, 1)], vec![t(1, 1), t(2, 3)]] };
        assert_eq!(g.expand_main(), vec![1, 2, 2, 2, 1, 2, 2, 2, 9]);
        assert_eq!(g.expanded_len(0), 9);
        assert_eq!(g.size(), 4);
    }

    #[test]
    fn expanded_len_handles_huge_powers() {
        // S → R1^1000000 ; R1 → t0^1000000 — would be 10^12 terminals.
        let g = Grammar { rules: vec![vec![n(1, 1_000_000)], vec![t(0, 1_000_000)]] };
        assert_eq!(g.expanded_len(0), 1_000_000_000_000u128);
    }

    #[test]
    fn depths() {
        // S → R1 ; R1 → R2 t1 ; R2 → t0
        let g = Grammar {
            rules: vec![vec![n(1, 2)], vec![n(2, 1), t(1, 1)], vec![t(0, 5)]],
        };
        assert_eq!(g.depths(), vec![3, 2, 1]);
    }

    #[test]
    fn ref_counts() {
        let g = Grammar {
            rules: vec![vec![n(1, 2), n(2, 1)], vec![n(2, 1), t(1, 1)], vec![t(0, 5)]],
        };
        assert_eq!(g.ref_counts(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "adjacent equal symbols")]
    fn invariant_catches_unmerged_runs() {
        let g = Grammar { rules: vec![vec![t(1, 1), t(1, 1)]] };
        g.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "occurs twice")]
    fn invariant_catches_duplicate_digrams() {
        let g = Grammar {
            rules: vec![vec![t(1, 1), t(2, 1), t(3, 1), t(1, 1), t(2, 1)]],
        };
        g.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "fails utility")]
    fn invariant_catches_single_use_rules() {
        let g = Grammar { rules: vec![vec![n(1, 1), t(5, 1)], vec![t(1, 1), t(2, 1)]] };
        g.assert_invariants();
    }
}
