//! Grammar-based trace compression for Siesta (paper Sections 2.5–2.6).
//!
//! Traces of MPI programs are long, repetitive symbol sequences. This crate
//! turns each rank's sequence into a compact context-free grammar with the
//! run-length Sequitur algorithm, then merges the per-rank grammars into a
//! single job-wide grammar:
//!
//! * [`Sequitur`] — one-pass grammar construction maintaining digram
//!   uniqueness, rule utility, and the run-length constraint (`aⁱaʲ → aⁱ⁺ʲ`).
//! * [`Grammar`] — immutable rules with expansion, depth, and invariant
//!   checks.
//! * [`merge_grammars`] — depth-ordered non-terminal merging plus LCS-based
//!   main-rule merging with per-symbol rank lists (the paper's Figure 3).
//! * [`lcs`] — Myers diff, fast for the nearly-identical main rules SPMD
//!   programs produce.
//!
//! The central guarantee, exercised heavily by the tests: for every rank,
//! [`MergedGrammar::expand_for_rank`] reproduces that rank's input sequence
//! exactly. Communication events survive compression losslessly — the
//! property that separates Siesta from histogram-based tools like
//! ScalaBench.
//!
//! ```
//! use siesta_grammar::{Sequitur, merge_grammars, MergeConfig};
//!
//! // Two ranks with a shared loop and a rank-private epilogue.
//! let common: Vec<u32> = std::iter::repeat([1, 2, 3]).take(50).flatten().collect();
//! let mut rank0 = common.clone();
//! rank0.push(7);
//! let mut rank1 = common.clone();
//! rank1.push(8);
//!
//! let grammars = vec![Sequitur::build(&rank0), Sequitur::build(&rank1)];
//! let merged = merge_grammars(&grammars, &MergeConfig::default());
//!
//! // Orders of magnitude smaller than the inputs...
//! assert!(merged.size() < 20);
//! // ...yet lossless per rank.
//! assert_eq!(merged.expand_for_rank(0), rank0);
//! assert_eq!(merged.expand_for_rank(1), rank1);
//! ```

pub mod cluster;
pub mod grammar;
pub mod lcs;
pub mod memo;
pub mod merge;
pub mod sequitur;
pub mod stats;
pub mod symbol;

pub use cluster::cluster_by_edit_distance;
pub use grammar::Grammar;
pub use memo::build_rank_grammars;
pub use merge::{merge_grammars, MainSym, MergeConfig, MergedGrammar, MergedMain};
pub use sequitur::Sequitur;
pub use stats::{analyze, rule_coverage, to_dot, GrammarStats};
pub use symbol::{RSym, RankSet, Sym};
