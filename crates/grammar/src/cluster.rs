//! Clustering of main-rule variants by edit distance (Section 2.6.2).
//!
//! Merging dissimilar main rules produces merged rules longer than the sum
//! of their inputs and floods the generated code with branch statements, so
//! the paper clusters mains by minimum edit distance first and only merges
//! within clusters.
//!
//! The candidate distances of one variant against the existing cluster
//! representatives are evaluated **in parallel** (fixed-size batches of
//! representatives, in first-seen cluster order), and the variant joins the
//! *lowest-indexed* matching cluster — exactly the cluster the sequential
//! first-fit scan would pick, so the result is byte-identical at any
//! `--threads` width. Batches are a fixed size (not a function of the
//! width), so even the set of evaluated pairs — and with it every obs
//! counter — is width-independent.

use crate::lcs;
use crate::symbol::RSym;

/// Representatives probed per parallel batch. Fixed (never derived from
/// the pool width) so the evaluated work-set is identical at every width;
/// covers the pool's 8-thread sweet spot with slack.
const REP_BATCH: usize = 16;

/// Would `v` join the cluster represented by `rep` under `threshold`?
/// Pure function of the two bodies — safe to evaluate in any order.
fn within_threshold(rep: &[RSym], v: &[RSym], threshold: f64) -> bool {
    let total = rep.len() + v.len();
    if total == 0 {
        // Two empty mains are identical.
        return true;
    }
    let max_d = (threshold * total as f64).floor() as usize;
    // Length gate: the edit distance is at least the length gap, so the
    // Myers run cannot come in under the bound when the gap alone
    // exceeds it.
    if rep.len().abs_diff(v.len()) > max_d {
        return false;
    }
    lcs::edit_distance(rep, v, max_d).is_some()
}

/// Greedy threshold clustering: each variant joins the first cluster whose
/// representative is within `threshold` normalized edit distance
/// (`D / (len_a + len_b)`), else starts a new cluster. Returns clusters as
/// index lists into `variants`, in first-seen order.
pub fn cluster_by_edit_distance(variants: &[Vec<RSym>], threshold: f64) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        // Probe representatives in fixed-size batches: each batch's
        // distances are independent Myers runs (fanned out across the
        // pool), and the join target is the batch's first match — the
        // same cluster the sequential short-circuiting scan picks.
        let mut joined = false;
        'batches: for batch_start in (0..clusters.len()).step_by(REP_BATCH) {
            let batch: Vec<&[RSym]> = clusters[batch_start..]
                .iter()
                .take(REP_BATCH)
                .map(|c| variants[c[0]].as_slice())
                .collect();
            let est_work: usize = batch.iter().map(|r| r.len() + v.len()).sum();
            let hits = siesta_par::parallel_map_min_work(
                &batch,
                est_work,
                crate::memo::MIN_SYMBOLS_TO_FAN_OUT,
                |_, rep| within_threshold(rep, v, threshold),
            );
            if let Some(first) = hits.iter().position(|&h| h) {
                clusters[batch_start + first].push(i);
                joined = true;
                break 'batches;
            }
        }
        if !joined {
            clusters.push(vec![i]);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{RSym, Sym};

    fn seq(ids: &[u32]) -> Vec<RSym> {
        ids.iter().map(|&t| RSym::once(Sym::T(t))).collect()
    }

    #[test]
    fn identical_variants_share_a_cluster() {
        let v = vec![seq(&[1, 2, 3]), seq(&[1, 2, 3]), seq(&[1, 2, 3])];
        let c = cluster_by_edit_distance(&v, 0.3);
        assert_eq!(c, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dissimilar_variants_split() {
        let v = vec![seq(&[1; 20]), seq(&[2; 20]), seq(&[1; 20])];
        let c = cluster_by_edit_distance(&v, 0.3);
        assert_eq!(c, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn threshold_controls_granularity() {
        // 4 mismatches out of 20+20 symbols: normalized distance 0.2.
        let a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        b[5] = 90;
        b[15] = 91;
        let v = vec![seq(&a), seq(&b)];
        assert_eq!(cluster_by_edit_distance(&v, 0.05).len(), 2);
        assert_eq!(cluster_by_edit_distance(&v, 0.3).len(), 1);
    }

    #[test]
    fn empty_variants_cluster_together() {
        let v = vec![seq(&[]), seq(&[]), seq(&[1])];
        let c = cluster_by_edit_distance(&v, 0.3);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], vec![0, 1]);
    }

    #[test]
    fn length_gate_agrees_with_full_edit_distance() {
        // Gap (15) far over the bound (max_d 7): the gate skips Myers and
        // must reach the same "separate clusters" verdict Myers would.
        let v = vec![seq(&(0..20).collect::<Vec<u32>>()), seq(&(0..5).collect::<Vec<u32>>())];
        assert_eq!(cluster_by_edit_distance(&v, 0.3).len(), 2);
        // Gap exactly equal to the bound must still run Myers: a pure
        // 10-deletion suffix is distance 10 = max_d, so they join.
        let a: Vec<u32> = (0..20).collect();
        let b: Vec<u32> = (0..10).collect();
        let v = vec![seq(&a), seq(&b)];
        assert_eq!(cluster_by_edit_distance(&v, 0.34).len(), 1);
    }

    #[test]
    fn exponents_matter_for_similarity() {
        let a = vec![RSym::new(Sym::T(1), 100)];
        let b = vec![RSym::new(Sym::T(1), 101)];
        // Different exponents are different symbols: distance 2 of total 2.
        let c = cluster_by_edit_distance(&[a, b], 0.4);
        assert_eq!(c.len(), 2);
    }
}
