//! Inter-process grammar merging (Section 2.6 of the paper).
//!
//! After every rank has compressed its own trace, three merges shrink the
//! per-process grammars into one job-wide grammar:
//!
//! 1. **Terminal tables** are merged by the tracing layer (events are
//!    hash-consed into global ids before the grammars reach this module).
//! 2. **Non-terminal tables**: identical rules from different ranks merge.
//!    Rules are processed in increasing *depth* order so that a rule's
//!    children are already globally numbered when the rule itself is
//!    hashed — the paper's observation that deeper symbols need the
//!    shallower merge results.
//! 3. **Main rules**: the per-rank start rules are nearly identical for
//!    SPMD programs. They are first deduplicated, then clustered by edit
//!    distance, and within each cluster merged pairwise by longest common
//!    subsequence; every merged symbol carries a [`RankSet`] saying which
//!    ranks execute it (Figure 3 of the paper).

use siesta_hash::{fx_map, fx_map_with_capacity, FxHashMap};

use crate::cluster::cluster_by_edit_distance;
use crate::grammar::Grammar;
use crate::lcs;
use crate::symbol::{RSym, RankSet, Sym};

/// A symbol of a merged main rule: which ranks execute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MainSym {
    pub sym: Sym,
    pub exp: u64,
    pub ranks: RankSet,
}

/// One merged main rule, covering a cluster of similar ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedMain {
    /// All ranks covered by this merged main.
    pub ranks: RankSet,
    pub body: Vec<MainSym>,
}

/// The job-wide merged grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedGrammar {
    /// Global non-terminal table; `Sym::N(i)` in any body indexes here.
    pub rules: Vec<Vec<RSym>>,
    /// Merged main rules (one per cluster of similar ranks).
    pub mains: Vec<MergedMain>,
    pub nranks: usize,
}

impl MergedGrammar {
    /// Total run-length symbols across the rule table and all merged mains
    /// — the size that `size_C` in Table 3 is proportional to.
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| r.len()).sum::<usize>()
            + self.mains.iter().map(|m| m.body.len()).sum::<usize>()
    }

    /// The merged main covering `rank`.
    pub fn main_for_rank(&self, rank: u32) -> Option<&MergedMain> {
        self.mains.iter().find(|m| m.ranks.contains(rank))
    }

    /// Re-derive the flat terminal sequence rank `rank` executes: filter its
    /// merged main by rank set, then expand each symbol. This is the
    /// losslessness witness — it must equal the rank's original trace.
    pub fn expand_for_rank(&self, rank: u32) -> Vec<u32> {
        let main = match self.main_for_rank(rank) {
            Some(m) => m,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for ms in &main.body {
            if !ms.ranks.contains(rank) {
                continue;
            }
            for _ in 0..ms.exp {
                match ms.sym {
                    Sym::T(t) => out.push(t),
                    Sym::N(n) => self.expand_rule_into(n, &mut out),
                }
            }
        }
        out
    }

    fn expand_rule_into(&self, rule: u32, out: &mut Vec<u32>) {
        for rs in &self.rules[rule as usize] {
            for _ in 0..rs.exp {
                match rs.sym {
                    Sym::T(t) => out.push(t),
                    Sym::N(n) => self.expand_rule_into(n, out),
                }
            }
        }
    }

    /// Number of distinct main-rule variants before clustering collapsed
    /// them (diagnostic).
    pub fn num_mains(&self) -> usize {
        self.mains.len()
    }
}

/// Configuration of the merge.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Normalized edit-distance threshold for clustering main rules: two
    /// mains merge only if `D / (len_a + len_b)` is at most this. The paper
    /// merges "only ... processes with high similarity".
    pub cluster_threshold: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig { cluster_threshold: 0.5 }
    }
}

/// Merge per-rank grammars (terminals already globally numbered) into one
/// job-wide grammar.
pub fn merge_grammars(grammars: &[Grammar], config: &MergeConfig) -> MergedGrammar {
    let nranks = grammars.len();
    let mut global_rules: Vec<Vec<RSym>> = Vec::new();
    let mut rule_index: FxHashMap<Vec<RSym>, u32> = fx_map();

    // ---- Non-terminal merge, depth order.
    // For each rank: local rule id → global rule id.
    let mut maps: Vec<FxHashMap<u32, u32>> = Vec::with_capacity(nranks);
    for g in grammars {
        let depths = g.depths();
        // Local rules except main (rule 0), ascending depth; ties by id for
        // determinism.
        let mut order: Vec<u32> = (1..g.rules.len() as u32).collect();
        order.sort_by_key(|&r| (depths[r as usize], r));
        let mut map: FxHashMap<u32, u32> = fx_map_with_capacity(g.rules.len());
        for r in order {
            let body: Vec<RSym> = g.rules[r as usize]
                .iter()
                .map(|rs| RSym {
                    sym: match rs.sym {
                        Sym::T(t) => Sym::T(t),
                        Sym::N(n) => Sym::N(map[&n]), // children are shallower
                    },
                    exp: rs.exp,
                })
                .collect();
            let gid = *rule_index.entry(body.clone()).or_insert_with(|| {
                global_rules.push(body);
                (global_rules.len() - 1) as u32
            });
            map.insert(r, gid);
        }
        maps.push(map);
    }

    // ---- Main rules to global symbol space.
    let mains_global: Vec<Vec<RSym>> = grammars
        .iter()
        .zip(&maps)
        .map(|(g, map)| {
            g.rules[0]
                .iter()
                .map(|rs| RSym {
                    sym: match rs.sym {
                        Sym::T(t) => Sym::T(t),
                        Sym::N(n) => Sym::N(map[&n]),
                    },
                    exp: rs.exp,
                })
                .collect()
        })
        .collect();

    // ---- Deduplicate identical mains.
    let mut variants: Vec<Vec<RSym>> = Vec::new();
    let mut variant_ranks: Vec<RankSet> = Vec::new();
    let mut variant_index: FxHashMap<Vec<RSym>, usize> = fx_map_with_capacity(nranks);
    for (rank, main) in mains_global.iter().enumerate() {
        match variant_index.get(main) {
            Some(&i) => {
                variant_ranks[i] = variant_ranks[i].union(&RankSet::single(rank as u32));
            }
            None => {
                variant_index.insert(main.clone(), variants.len());
                variants.push(main.clone());
                variant_ranks.push(RankSet::single(rank as u32));
            }
        }
    }

    // ---- Cluster variants by edit distance, merge within clusters by LCS.
    // Clusters are independent, so they fan out across the pool; inside a
    // cluster the variants reduce through a balanced pairwise merge tree
    // whose shape depends only on the cluster's first-seen order — never
    // on the pool width — so the merged bodies are byte-identical at any
    // `--threads` (and identical to the old sequential fold for clusters
    // of up to three variants).
    let clusters = cluster_by_edit_distance(&variants, config.cluster_threshold);
    let cluster_work: usize = clusters
        .iter()
        .map(|c| c.iter().map(|&vi| variants[vi].len()).sum::<usize>())
        .sum();
    let mut mains = siesta_par::parallel_map_min_work(
        &clusters,
        cluster_work,
        crate::memo::MIN_SYMBOLS_TO_FAN_OUT,
        |_, cluster| merge_cluster(&variants, &variant_ranks, cluster),
    );
    // Deterministic order: by smallest covered rank.
    mains.sort_by_key(|m| m.ranks.iter().next().unwrap_or(u32::MAX));

    siesta_obs::gauge("grammar.main_variants").set(variants.len() as i64);
    siesta_obs::gauge("grammar.main_clusters").set(mains.len() as i64);
    siesta_obs::gauge("grammar.merged_rules").set(global_rules.len() as i64);
    siesta_obs::debug!(
        "grammar-merge: {nranks} ranks -> {} main variants -> {} clusters, {} shared rules",
        variants.len(),
        mains.len(),
        global_rules.len()
    );

    MergedGrammar { rules: global_rules, mains, nranks }
}

/// Reduce one cluster of variants to its merged main through a balanced
/// pairwise LCS merge tree: round one merges variants (0,1), (2,3), …,
/// round two merges those results pairwise, and so on — log₂(cluster)
/// rounds whose pair merges are independent and fan out across the pool.
/// The tree shape is a pure function of the cluster's first-seen variant
/// order, so the result is identical at every pool width.
fn merge_cluster(
    variants: &[Vec<RSym>],
    variant_ranks: &[RankSet],
    cluster: &[usize],
) -> MergedMain {
    let mut acc_ranks = variant_ranks[cluster[0]].clone();
    for &vi in &cluster[1..] {
        acc_ranks = acc_ranks.union(&variant_ranks[vi]);
    }
    let mut level: Vec<Vec<MainSym>> = cluster
        .iter()
        .map(|&vi| {
            variants[vi]
                .iter()
                .map(|rs| MainSym { sym: rs.sym, exp: rs.exp, ranks: variant_ranks[vi].clone() })
                .collect()
        })
        .collect();
    while level.len() > 1 {
        let work: usize = level.iter().map(Vec::len).sum();
        let mut pairs: Vec<(Vec<MainSym>, Option<Vec<MainSym>>)> = Vec::with_capacity(
            level.len().div_ceil(2),
        );
        let mut it = level.into_iter();
        while let Some(left) = it.next() {
            pairs.push((left, it.next()));
        }
        // Nested regions run inline on pool workers, so the per-cluster
        // fan-out composes with the cluster-level fan-out above.
        level = siesta_par::parallel_map_owned_min_work(
            pairs,
            work,
            crate::memo::MIN_SYMBOLS_TO_FAN_OUT,
            |_, (left, right)| match right {
                Some(right) => lcs_merge_mains(&left, &right),
                None => left, // odd tail passes through to the next round
            },
        );
    }
    let body = level.pop().unwrap_or_default();
    MergedMain { ranks: acc_ranks, body }
}

/// Merge two partially merged mains via LCS (Figure 3): symbols on the
/// LCS — matched on `(sym, exp)` — take the union of the two rank sets;
/// off-LCS symbols keep their own, interleaved left-side-first so both
/// sources keep their relative order.
fn lcs_merge_mains(acc: &[MainSym], new: &[MainSym]) -> Vec<MainSym> {
    let acc_key: Vec<RSym> = acc.iter().map(|m| RSym { sym: m.sym, exp: m.exp }).collect();
    let new_key: Vec<RSym> = new.iter().map(|m| RSym { sym: m.sym, exp: m.exp }).collect();
    let d = lcs::diff(&acc_key, &new_key, acc_key.len() + new_key.len())
        .expect("unbounded diff succeeds");
    let mut out = Vec::with_capacity(acc.len() + new.len());
    let mut ai = 0usize;
    let mut ni = 0usize;
    for &(ma, mn) in &d.matches {
        // Unmatched prefix from the left side, then from the right.
        while ai < ma {
            out.push(acc[ai].clone());
            ai += 1;
        }
        while ni < mn {
            out.push(new[ni].clone());
            ni += 1;
        }
        // The matched symbol: union of rank sets.
        out.push(MainSym {
            sym: acc[ai].sym,
            exp: acc[ai].exp,
            ranks: acc[ai].ranks.union(&new[ni].ranks),
        });
        ai += 1;
        ni += 1;
    }
    while ai < acc.len() {
        out.push(acc[ai].clone());
        ai += 1;
    }
    while ni < new.len() {
        out.push(new[ni].clone());
        ni += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequitur::Sequitur;

    fn merge(seqs: &[Vec<u32>]) -> MergedGrammar {
        let grammars: Vec<Grammar> = seqs.iter().map(|s| Sequitur::build(s)).collect();
        merge_grammars(&grammars, &MergeConfig::default())
    }

    #[test]
    fn identical_ranks_collapse_to_one_main() {
        let seq: Vec<u32> = (0..100).map(|i| i % 4).collect();
        let m = merge(&[seq.clone(), seq.clone(), seq.clone(), seq.clone()]);
        assert_eq!(m.mains.len(), 1);
        assert_eq!(m.mains[0].ranks.len(), 4);
        for r in 0..4 {
            assert_eq!(m.expand_for_rank(r), seq, "rank {r}");
        }
    }

    #[test]
    fn shared_rules_are_stored_once() {
        // Two ranks with the same repetitive core produce one rule table
        // entry for the shared structure.
        let a: Vec<u32> = std::iter::repeat_n([1u32, 2, 3], 30).flatten().collect();
        let mut b = a.clone();
        b.push(99); // small divergence at the end
        let m = merge(&[a.clone(), b.clone()]);
        let separate: usize = [&a, &b]
            .iter()
            .map(|s| Sequitur::build(s).size())
            .sum();
        assert!(
            m.size() < separate,
            "merged {} not smaller than separate {}",
            m.size(),
            separate
        );
        assert_eq!(m.expand_for_rank(0), a);
        assert_eq!(m.expand_for_rank(1), b);
    }

    #[test]
    fn figure3_style_merge_unions_rank_lists() {
        // Figure 3: two mains sharing a common subsequence; the merged main
        // marks shared symbols with both ranks and keeps private symbols.
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![1, 2, 9, 4, 5];
        let m = merge(&[a.clone(), b.clone()]);
        assert_eq!(m.mains.len(), 1);
        let main = &m.mains[0];
        // Both ranks replay exactly.
        assert_eq!(m.expand_for_rank(0), a);
        assert_eq!(m.expand_for_rank(1), b);
        // The shared symbols carry both ranks.
        let shared: Vec<&MainSym> =
            main.body.iter().filter(|s| s.ranks.len() == 2).collect();
        assert_eq!(shared.len(), 4, "main: {:?}", main.body);
        // The private symbols carry exactly one rank each.
        let private: Vec<&MainSym> =
            main.body.iter().filter(|s| s.ranks.len() == 1).collect();
        assert_eq!(private.len(), 2);
    }

    #[test]
    fn dissimilar_mains_stay_separate() {
        let a: Vec<u32> = (0..60).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..60).map(|i| 50 + i % 7).collect();
        let m = merge(&[a.clone(), b.clone()]);
        assert_eq!(m.mains.len(), 2, "dissimilar ranks must not merge");
        assert_eq!(m.expand_for_rank(0), a);
        assert_eq!(m.expand_for_rank(1), b);
    }

    #[test]
    fn spmd_with_boundary_ranks_replays_losslessly() {
        // Rank 0 and rank 3 are "boundary" (skip one phase); 1, 2 interior.
        let interior: Vec<u32> =
            std::iter::repeat_n([10u32, 11, 12, 13], 25).flatten().collect();
        let boundary: Vec<u32> =
            std::iter::repeat_n([10u32, 12, 13], 25).flatten().collect();
        let seqs = vec![boundary.clone(), interior.clone(), interior.clone(), boundary.clone()];
        let m = merge(&seqs);
        for (r, expected) in seqs.iter().enumerate() {
            assert_eq!(&m.expand_for_rank(r as u32), expected, "rank {r}");
        }
        // Boundary pair and interior pair share main structure, so at most
        // two mains (possibly one if the cluster threshold lets them merge).
        assert!(m.mains.len() <= 2, "got {} mains", m.mains.len());
    }

    #[test]
    fn merged_size_scales_sublinearly_with_ranks() {
        // 16 ranks, identical behaviour: merged size must be much closer to
        // one rank's grammar than to 16×.
        let seq: Vec<u32> = std::iter::repeat_n([1u32, 2, 3, 4, 2, 3], 40).flatten().collect();
        let one = Sequitur::build(&seq).size();
        let m = merge(&vec![seq; 16]);
        assert!(m.size() <= one + 4, "merged {} vs single {}", m.size(), one);
    }

    #[test]
    fn main_for_rank_covers_all_ranks() {
        let seqs: Vec<Vec<u32>> = (0..5u32).map(|r| vec![r, r, r, 1, 2, 3]).collect();
        let m = merge(&seqs);
        for r in 0..5 {
            assert!(m.main_for_rank(r).is_some(), "rank {r} uncovered");
            assert_eq!(m.expand_for_rank(r), seqs[r as usize]);
        }
        assert!(m.main_for_rank(5).is_none());
    }
}
