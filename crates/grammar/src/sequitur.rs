//! Run-length Sequitur (Section 2.5.2 of the paper).
//!
//! Classic Sequitur (Nevill-Manning & Witten 1997) scans the input once,
//! maintaining two invariants: **digram uniqueness** (no pair of adjacent
//! symbols occurs twice in the grammar) and **rule utility** (every rule is
//! referenced at least twice). The paper adds the Omnis'IO run-length
//! extension (its constraint 3): adjacent equal symbols collapse into powers
//! `a^i`, so perfectly regular loops cost *O(1)* grammar space instead of
//! *O(log n)*.
//!
//! The run-length invariant has a pleasant side effect: adjacent nodes never
//! hold the same symbol, so digram occurrences can never overlap (the `aaa`
//! corner case of classic Sequitur disappears).
//!
//! A third invariant refines utility for powers: a rule referenced once but
//! with exponent ≥ 2 still pays for itself, so only references with
//! exponent 1 trigger inlining.

use siesta_hash::{fx_map_with_capacity, FxHashMap};

use crate::grammar::Grammar;
use crate::symbol::{RSym, Sym};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    sym: Sym,
    exp: u64,
    prev: u32,
    next: u32,
    /// Guard nodes delimit rule bodies; `rule_of_guard` is only meaningful
    /// for them.
    is_guard: bool,
    rule_of_guard: u32,
    alive: bool,
}

type DigramKey = (Sym, u64, Sym, u64);

/// Incremental grammar builder. Feed terminals with [`Sequitur::push`],
/// finish with [`Sequitur::into_grammar`].
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// guard node of each rule; rule 0 is the main rule.
    guards: Vec<u32>,
    /// reference count of each rule (occurrences in other bodies).
    refs: Vec<u32>,
    /// node ids currently referencing each rule.
    occurrences: Vec<Vec<u32>>,
    /// Digram index — the hottest map of the whole pipeline (consulted on
    /// every splice), so it runs on the deterministic FxHash, not SipHash.
    digrams: FxHashMap<DigramKey, u32>,
    /// Run-length constraint enabled (the paper's configuration). Disabled
    /// only by the ablation harness, which contrasts the O(1) powers
    /// against classic Sequitur's O(log n) rule chains for regular loops.
    rle: bool,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    pub fn new() -> Sequitur {
        Sequitur::with_rle(true)
    }

    /// Construct with the run-length extension switchable (ablation).
    pub fn with_rle(rle: bool) -> Sequitur {
        Sequitur::with_rle_and_capacity(rle, 0)
    }

    /// [`Sequitur::with_rle`] pre-sized for an input of `len` terminals:
    /// the node arena and digram index reserve up front instead of
    /// climbing the rehash-on-grow ladder during the one-pass scan.
    pub fn with_rle_and_capacity(rle: bool, len: usize) -> Sequitur {
        let mut s = Sequitur {
            // Terminals enter one node each; rule bodies add less than
            // one node per substitution (freed nodes are recycled).
            nodes: Vec::with_capacity(1 + len + len / 2),
            free: Vec::new(),
            guards: Vec::new(),
            refs: Vec::new(),
            occurrences: Vec::new(),
            // The digram table is bounded by live adjacencies; repetitive
            // (trace-like) inputs stay far below the input length, so cap
            // the upfront reservation rather than mirroring `len`.
            digrams: fx_map_with_capacity(len.min(1 << 16)),
            rle,
        };
        s.new_rule(); // rule 0: main
        s
    }

    /// Build a grammar from a whole sequence.
    pub fn build(seq: &[u32]) -> Grammar {
        let mut s = Sequitur::with_rle_and_capacity(true, seq.len());
        for &t in seq {
            s.push(t);
        }
        s.into_grammar()
    }

    /// Build without the run-length extension (classic Sequitur).
    pub fn build_classic(seq: &[u32]) -> Grammar {
        let mut s = Sequitur::with_rle_and_capacity(false, seq.len());
        for &t in seq {
            s.push(t);
        }
        s.into_grammar()
    }

    /// Append one terminal to the main rule.
    pub fn push(&mut self, terminal: u32) {
        let guard = self.guards[0];
        let n = self.alloc(Node {
            sym: Sym::T(terminal),
            exp: 1,
            prev: NIL,
            next: NIL,
            is_guard: false,
            rule_of_guard: NIL,
            alive: true,
        });
        let last = self.nodes[guard as usize].prev;
        self.connect(last, n);
        self.connect(n, guard);
        self.check(last);
    }

    // ------------------------------------------------------------------
    // Arena plumbing
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn new_rule(&mut self) -> u32 {
        let rule = self.guards.len() as u32;
        let g = self.alloc(Node {
            sym: Sym::N(rule),
            exp: 1,
            prev: NIL,
            next: NIL,
            is_guard: true,
            rule_of_guard: rule,
            alive: true,
        });
        self.nodes[g as usize].prev = g;
        self.nodes[g as usize].next = g;
        self.guards.push(g);
        self.refs.push(0);
        self.occurrences.push(Vec::new());
        rule
    }

    fn connect(&mut self, a: u32, b: u32) {
        self.nodes[a as usize].next = b;
        self.nodes[b as usize].prev = a;
    }

    fn next(&self, n: u32) -> u32 {
        self.nodes[n as usize].next
    }

    fn prev(&self, n: u32) -> u32 {
        self.nodes[n as usize].prev
    }

    fn is_guard(&self, n: u32) -> bool {
        self.nodes[n as usize].is_guard
    }

    fn key_at(&self, left: u32) -> Option<DigramKey> {
        if self.is_guard(left) {
            return None;
        }
        let right = self.next(left);
        if self.is_guard(right) {
            return None;
        }
        let l = &self.nodes[left as usize];
        let r = &self.nodes[right as usize];
        Some((l.sym, l.exp, r.sym, r.exp))
    }

    /// Unregister the digram starting at `left`, if the index points here.
    fn forget(&mut self, left: u32) {
        if let Some(key) = self.key_at(left) {
            if self.digrams.get(&key) == Some(&left) {
                self.digrams.remove(&key);
            }
        }
    }

    fn add_ref(&mut self, rule: u32, node: u32) {
        self.refs[rule as usize] += 1;
        self.occurrences[rule as usize].push(node);
    }

    fn drop_ref(&mut self, rule: u32, node: u32) {
        self.refs[rule as usize] -= 1;
        let occ = &mut self.occurrences[rule as usize];
        if let Some(pos) = occ.iter().position(|&n| n == node) {
            occ.swap_remove(pos);
        }
    }

    fn release(&mut self, n: u32) {
        self.nodes[n as usize].alive = false;
        self.free.push(n);
    }

    // ------------------------------------------------------------------
    // Invariant enforcement
    // ------------------------------------------------------------------

    /// Re-establish the invariants for the adjacency `(left, left.next)`.
    fn check(&mut self, left: u32) {
        if left == NIL || !self.nodes[left as usize].alive || self.is_guard(left) {
            return;
        }
        let right = self.next(left);
        if self.is_guard(right) {
            return;
        }
        // Constraint 3: run-length merge of equal symbols.
        if self.rle && self.nodes[left as usize].sym == self.nodes[right as usize].sym {
            self.merge_run(left, right);
            return;
        }
        let key = self.key_at(left).expect("both non-guard");
        match self.digrams.get(&key) {
            None => {
                self.digrams.insert(key, left);
            }
            Some(&existing) if existing == left => {}
            Some(&existing) => {
                // Without RLE, equal adjacent symbols survive, so the `aaa`
                // overlap case of classic Sequitur can occur; overlapping
                // occurrences must not fold.
                if !self.rle
                    && (self.next(existing) == left || self.next(left) == existing)
                {
                    return;
                }
                // Stale index entries cannot exist: `forget` runs before
                // every splice. With RLE, occurrences cannot overlap
                // (adjacent symbols are always distinct).
                self.handle_match(existing, left);
            }
        }
    }

    /// Merge `right` into `left` (equal symbols), then repair both seams.
    fn merge_run(&mut self, left: u32, right: u32) {
        // Digrams involving the three affected adjacencies change identity.
        self.forget(self.prev(left));
        self.forget(left);
        self.forget(right);
        let mut dropped: Option<u32> = None;
        if let Sym::N(rule) = self.nodes[right as usize].sym {
            // One node's worth of reference disappears (exponents fold).
            self.drop_ref(rule, right);
            dropped = Some(rule);
        }
        self.nodes[left as usize].exp += self.nodes[right as usize].exp;
        let after = self.next(right);
        self.connect(left, after);
        self.release(right);
        // Left's digram identity changed: re-check both sides.
        self.check(self.prev(left));
        if self.nodes[left as usize].alive {
            self.check(left);
        }
        if let Some(r) = dropped {
            // Note: the surviving run node still references r, so a drop to
            // one reference with exponent ≥ 2 stays useful; enforce_utility
            // applies the exponent-aware rule.
            self.enforce_utility(r);
        }
    }

    /// Two equal digrams exist: at `existing` and at `fresh`.
    fn handle_match(&mut self, existing: u32, fresh: u32) {
        let e_prev = self.prev(existing);
        let e_next_next = self.next(self.next(existing));
        if self.is_guard(e_prev)
            && self.is_guard(e_next_next)
            && self.nodes[e_prev as usize].rule_of_guard == self.nodes[e_next_next as usize].rule_of_guard
        {
            // The existing occurrence is exactly a rule body: reuse it.
            let rule = self.nodes[e_prev as usize].rule_of_guard;
            self.substitute(fresh, rule);
            self.enforce_utility(rule);
        } else {
            // Create a new rule from the digram, substitute both sites.
            let (s1, e1, s2, e2) = self.key_at(existing).expect("valid digram");
            let rule = self.new_rule();
            let g = self.guards[rule as usize];
            let a = self.alloc(Node {
                sym: s1,
                exp: e1,
                prev: NIL,
                next: NIL,
                is_guard: false,
                rule_of_guard: NIL,
                alive: true,
            });
            let b = self.alloc(Node {
                sym: s2,
                exp: e2,
                prev: NIL,
                next: NIL,
                is_guard: false,
                rule_of_guard: NIL,
                alive: true,
            });
            self.connect(g, a);
            self.connect(a, b);
            self.connect(b, g);
            if let Sym::N(r) = s1 {
                self.add_ref(r, a);
            }
            if let Sym::N(r) = s2 {
                self.add_ref(r, b);
            }
            // The rule body now owns this digram.
            self.digrams.insert((s1, e1, s2, e2), a);
            // Substitute the existing occurrence first, then the fresh one.
            self.substitute(existing, rule);
            // Cascades from the first substitution can in principle consume
            // the fresh occurrence; only substitute it if it still stands.
            if self.nodes[fresh as usize].alive && self.key_at(fresh) == Some((s1, e1, s2, e2)) {
                self.substitute(fresh, rule);
            }
            // Newly referenced child rules may have dropped to one use.
            if let Sym::N(r) = s1 {
                self.enforce_utility(r);
            }
            if let Sym::N(r) = s2 {
                self.enforce_utility(r);
            }
            self.enforce_utility(rule);
        }
    }

    /// Replace the digram starting at `left` with a reference to `rule`.
    fn substitute(&mut self, left: u32, rule: u32) {
        let right = self.next(left);
        let before = self.prev(left);
        let after = self.next(right);
        self.forget(before);
        self.forget(left);
        self.forget(right);
        let mut dropped: Vec<u32> = Vec::new();
        for n in [left, right] {
            if let Sym::N(r) = self.nodes[n as usize].sym {
                self.drop_ref(r, n);
                dropped.push(r);
            }
        }
        let nn = self.alloc(Node {
            sym: Sym::N(rule),
            exp: 1,
            prev: NIL,
            next: NIL,
            is_guard: false,
            rule_of_guard: NIL,
            alive: true,
        });
        self.add_ref(rule, nn);
        self.connect(before, nn);
        self.connect(nn, after);
        self.release(left);
        self.release(right);
        // Repair seams: first the left one (may run-merge nn away).
        self.check(before);
        if self.nodes[nn as usize].alive {
            self.check(nn);
        }
        // Rules that lost a reference here may have fallen to one use.
        for r in dropped {
            self.enforce_utility(r);
        }
    }

    /// Inline `rule` if it has a single remaining reference with exponent 1
    /// (a reference with exponent ≥ 2 still pays for itself under RLE).
    fn enforce_utility(&mut self, rule: u32) {
        if rule == 0
            || self.guards[rule as usize] == NIL
            || self.refs[rule as usize] != 1
        {
            return;
        }
        let site = self.occurrences[rule as usize][0];
        if !self.nodes[site as usize].alive || self.nodes[site as usize].exp != 1 {
            return;
        }
        let guard = self.guards[rule as usize];
        let first = self.next(guard);
        let last = self.prev(guard);
        if first == guard {
            return; // empty rule body; nothing to inline
        }
        let before = self.prev(site);
        let after = self.next(site);
        self.forget(before);
        self.forget(site);
        self.drop_ref(rule, site);
        // Move the body nodes wholesale (their internal digram index
        // entries stay valid because the node ids do not change).
        self.connect(before, first);
        self.connect(last, after);
        self.release(site);
        self.release(guard);
        self.guards[rule as usize] = NIL;
        // Repair the seams.
        self.check(before);
        // `last` may have died if the whole body merged leftward; guard it.
        if self.nodes[last as usize].alive {
            self.check(last);
        }
    }

    // ------------------------------------------------------------------
    // Extraction
    // ------------------------------------------------------------------

    /// Convert into an immutable [`Grammar`], renumbering surviving rules
    /// densely (main rule stays rule 0).
    pub fn into_grammar(self) -> Grammar {
        // Rule churn and digram-table metrics, flushed once per build.
        let created = self.guards.len() as u64;
        let inlined = self.guards.iter().filter(|&&g| g == NIL).count() as u64;
        siesta_obs::counter("grammar.rules_created").add(created);
        siesta_obs::counter("grammar.rules_inlined").add(inlined);
        siesta_obs::histogram("grammar.digram_table_size").record(self.digrams.len() as u64);

        // Map surviving rule ids to dense ids.
        let mut remap: FxHashMap<u32, u32> = fx_map_with_capacity(self.guards.len());
        let mut order: Vec<u32> = Vec::new();
        for (rule, &g) in self.guards.iter().enumerate() {
            if g != NIL {
                remap.insert(rule as u32, order.len() as u32);
                order.push(rule as u32);
            }
        }
        let mut rules = Vec::with_capacity(order.len());
        for &rule in &order {
            let g = self.guards[rule as usize];
            let mut body = Vec::new();
            let mut n = self.nodes[g as usize].next;
            while n != g {
                let node = &self.nodes[n as usize];
                let sym = match node.sym {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(r) => Sym::N(*remap.get(&r).expect("live rule referenced")),
                };
                body.push(RSym::new(sym, node.exp));
                n = node.next;
            }
            rules.push(body);
        }
        Grammar { rules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seq: &[u32]) -> Grammar {
        Sequitur::build(seq)
    }

    #[test]
    fn empty_and_singleton() {
        let g = build(&[]);
        assert_eq!(g.rules.len(), 1);
        assert!(g.rules[0].is_empty());
        let g = build(&[7]);
        assert_eq!(g.expand_main(), vec![7]);
    }

    #[test]
    fn pure_repetition_is_constant_size() {
        // The paper's aaaa... example: with RLE the whole thing is one
        // run-length symbol, not a log-depth rule chain.
        let seq = vec![5u32; 1000];
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.rules[0].len(), 1);
        assert_eq!(g.rules[0][0].exp, 1000);
    }

    #[test]
    fn repeated_pair_becomes_rule_with_power() {
        // abababab → main: R1^4, R1 → a b
        let seq: Vec<u32> = (0..8).map(|i| i % 2).collect();
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0].len(), 1);
        assert_eq!(g.rules[0][0].exp, 4);
        assert_eq!(g.rules[1].len(), 2);
    }

    #[test]
    fn nested_loop_structure_compresses_hierarchically() {
        // (a b b b c){20} — an iteration with an inner loop.
        let mut seq = Vec::new();
        for _ in 0..20 {
            seq.push(1);
            seq.extend([2, 2, 2]);
            seq.push(3);
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        // Grammar should be tiny: a rule for (a b^3 c) raised to the 20th.
        assert!(g.size() <= 6, "grammar too large: {g:?}");
    }

    #[test]
    fn sequitur_classic_example() {
        // "abcdbc" → S → a A d A, A → b c  (classic Sequitur result)
        let g = build(&[1, 2, 3, 4, 2, 3]);
        assert_eq!(g.expand_main(), vec![1, 2, 3, 4, 2, 3]);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[1].len(), 2);
    }

    #[test]
    fn invariants_hold_on_structured_input() {
        // A trace-like input: iterations with a rare special phase.
        let mut seq = Vec::new();
        for i in 0..50 {
            seq.extend([10, 11, 12, 11, 13]);
            if i % 10 == 9 {
                seq.extend([20, 21]);
            }
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        g.assert_invariants();
        // Far smaller than the input.
        assert!(g.size() < seq.len() / 4, "size {} vs input {}", g.size(), seq.len());
    }

    #[test]
    fn random_input_round_trips() {
        // Pseudo-random (incompressible) input: correctness matters more
        // than compression here.
        let mut x = 12345u64;
        let seq: Vec<u32> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) % 17) as u32
            })
            .collect();
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        g.assert_invariants();
    }

    #[test]
    fn long_runs_inside_repeats() {
        // a^5 b a^5 b a^5 b → rule (a^5 b)^3.
        let mut seq = Vec::new();
        for _ in 0..3 {
            seq.extend([1; 5]);
            seq.push(2);
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert!(g.size() <= 4, "expected compact powers: {g:?}");
    }

    #[test]
    fn classic_mode_round_trips_and_uses_log_rules_for_runs() {
        // The Omnis'IO observation the paper cites: a run of n identical
        // symbols is one power under RLE, but a log-depth rule chain in
        // classic Sequitur.
        let seq = vec![5u32; 1024];
        let classic = Sequitur::build_classic(&seq);
        assert_eq!(classic.expand_main(), seq);
        let rle = Sequitur::build(&seq);
        assert_eq!(rle.size(), 1);
        assert!(
            classic.rules.len() >= 9,
            "classic should need ~log2(1024) rules, got {}",
            classic.rules.len()
        );
        assert!(classic.size() > 4 * rle.size());
    }

    #[test]
    fn classic_mode_handles_overlap_case() {
        // aaa...: overlapping digrams must not fold into broken rules.
        for n in [2usize, 3, 4, 5, 7, 9] {
            let seq = vec![1u32; n];
            let g = Sequitur::build_classic(&seq);
            assert_eq!(g.expand_main(), seq, "n={n}");
        }
        // Mixed runs.
        let seq = vec![1, 1, 1, 2, 1, 1, 1, 2, 1, 1];
        let g = Sequitur::build_classic(&seq);
        assert_eq!(g.expand_main(), seq);
    }

    #[test]
    fn utility_rule_keeps_powered_single_references() {
        // (ab)^2 appears once as a run: rule referenced once with exp 2
        // must survive (it saves space), not be inlined.
        let g = build(&[1, 2, 1, 2]);
        assert_eq!(g.expand_main(), vec![1, 2, 1, 2]);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0][0].exp, 2);
        g.assert_invariants();
    }
}
