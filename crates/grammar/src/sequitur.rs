//! Run-length Sequitur (Section 2.5.2 of the paper).
//!
//! Classic Sequitur (Nevill-Manning & Witten 1997) scans the input once,
//! maintaining two invariants: **digram uniqueness** (no pair of adjacent
//! symbols occurs twice in the grammar) and **rule utility** (every rule is
//! referenced at least twice). The paper adds the Omnis'IO run-length
//! extension (its constraint 3): adjacent equal symbols collapse into powers
//! `a^i`, so perfectly regular loops cost *O(1)* grammar space instead of
//! *O(log n)*.
//!
//! The run-length invariant has a pleasant side effect: adjacent nodes never
//! hold the same symbol, so digram occurrences can never overlap (the `aaa`
//! corner case of classic Sequitur disappears).
//!
//! A third invariant refines utility for powers: a rule referenced once but
//! with exponent ≥ 2 still pays for itself, so only references with
//! exponent 1 trigger inlining.
//!
//! # Storage layout (DESIGN.md §13)
//!
//! The hot loop is allocation-free after warm-up:
//!
//! * Every `(Sym, exp)` pair is **interned** to a dense `u32` id on first
//!   sight; nodes store only the id, and the digram index keys on the two
//!   ids packed into one `u64` — one 8-byte hash per probe instead of a
//!   32-byte tuple hash.
//! * Rule **occurrence lists are intrusive**: each node referencing a rule
//!   links into that rule's doubly-linked list through `occ_prev`/`occ_next`
//!   fields inside the node arena. `add_ref` is a head insert, `drop_ref` an
//!   O(1) unlink — no per-rule `Vec` ever grows on the push path.
//! * The **free list is intrusive** too: a released node's `next` field
//!   chains it onto `free_head`, so recycling never touches the heap.
//!
//! With the arena, the digram index, the intern table, and the rule tables
//! pre-sized by [`Sequitur::with_rle_and_capacity`], a steady-state
//! [`Sequitur::push`] performs **zero heap allocations** — proven by the
//! counting-global-allocator test in `tests/grammar_alloc.rs`.

use siesta_hash::{fx_map_with_capacity, FxHashMap};

use crate::grammar::Grammar;
use crate::symbol::{RSym, Sym};

const NIL: u32 = u32::MAX;

/// Arena node. `id` indexes the intern table (`pairs`) holding the node's
/// `(Sym, exp)` identity; the digram index is keyed on packed id pairs, so
/// a node's grammar identity is exactly its id.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Interned `(Sym, exp)` id.
    id: u32,
    prev: u32,
    next: u32,
    /// Intrusive occurrence-list links (meaningful while this node
    /// references a rule; see `add_ref`/`drop_ref`).
    occ_prev: u32,
    occ_next: u32,
    /// `NIL` for body nodes; the owning rule for guard nodes.
    rule_of_guard: u32,
    alive: bool,
}

/// Observed live-adjacency ratios (final digram-table size over input
/// length) stay under 1/64 for trace-like inputs — the nine paper
/// workloads measure between 1/2000 and 1/200 — and under 1/4 even for
/// incompressible random inputs over small alphabets. Reserving `len / 8`
/// covers every observed workload with ≥ 2× headroom while keeping the
/// table a small fraction of the node arena; `grammar.digram.rehashes`
/// counts the growths whenever an input beats the model, so the reserve
/// can be re-derived instead of guessed (the old code capped at `1 << 16`
/// unconditionally, which forced rehash ladders on multi-million-symbol
/// unique sequences).
fn digram_reserve(len: usize) -> usize {
    (len / 8 + 16).min(1 << 21)
}

/// Incremental grammar builder. Feed terminals with [`Sequitur::push`],
/// finish with [`Sequitur::into_grammar`].
pub struct Sequitur {
    nodes: Vec<Node>,
    /// Head of the intrusive free list (chained through `Node::next`).
    free_head: u32,
    /// guard node of each rule; rule 0 is the main rule.
    guards: Vec<u32>,
    /// reference count of each rule (occurrences in other bodies).
    refs: Vec<u32>,
    /// Head of each rule's intrusive occurrence list.
    occ_head: Vec<u32>,
    /// Creation stamp of the rule currently occupying each slot. Rule
    /// slots are recycled (a long-lived builder on trace-like input mints
    /// one short-lived rule every ~2 symbols — without recycling the rule
    /// tables and intern index grow linearly with the *stream*, which is
    /// exactly what the streaming recorder exists to avoid), so survivors
    /// are renumbered in creation order at extraction; the output is
    /// byte-identical to a builder with unbounded fresh ids.
    birth: Vec<u64>,
    /// Free rule slots (rules that were inlined), reused LIFO.
    rule_free: Vec<u32>,
    /// Next creation stamp.
    births: u64,
    /// Intern table: id → `(Sym, exp)`.
    pairs: Vec<(Sym, u64)>,
    /// Live-node reference count per intern id. A pair that no node holds
    /// is unreachable (the digram index only ever keys on live
    /// adjacencies), so its id returns to `pair_free` — run-length growth
    /// would otherwise strand one dead `(sym, exp)` pair per extension.
    pair_refs: Vec<u32>,
    /// Free intern ids, reused LIFO.
    pair_free: Vec<u32>,
    /// Reverse intern index: `(sym bits, exp)` → id.
    pair_ids: FxHashMap<(u64, u64), u32>,
    /// Digram index — the hottest map of the whole pipeline (consulted on
    /// every splice). Keys are two interned ids packed into a `u64`, hashed
    /// with the deterministic FxHash.
    digrams: FxHashMap<u64, u32>,
    /// Times the digram table outgrew its reservation (flushed to the
    /// `grammar.digram.rehashes` counter by `into_grammar`).
    rehashes: u64,
    /// Run-length constraint enabled (the paper's configuration). Disabled
    /// only by the ablation harness, which contrasts the O(1) powers
    /// against classic Sequitur's O(log n) rule chains for regular loops.
    rle: bool,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

/// Bit-pack a symbol for the intern index: terminals in the low half,
/// non-terminals tagged at bit 32.
fn sym_bits(sym: Sym) -> u64 {
    match sym {
        Sym::T(t) => t as u64,
        Sym::N(n) => (1u64 << 32) | n as u64,
    }
}

impl Sequitur {
    pub fn new() -> Sequitur {
        Sequitur::with_rle(true)
    }

    /// Construct with the run-length extension switchable (ablation).
    pub fn with_rle(rle: bool) -> Sequitur {
        Sequitur::with_rle_and_capacity(rle, 0)
    }

    /// [`Sequitur::with_rle`] pre-sized for an input of `len` terminals:
    /// the node arena, digram index, intern table, and rule tables reserve
    /// up front instead of climbing the rehash-on-grow ladder during the
    /// one-pass scan. A correctly pre-sized builder pushes without any
    /// heap allocation (see module docs).
    pub fn with_rle_and_capacity(rle: bool, len: usize) -> Sequitur {
        // Rule slots and intern ids are recycled, so the tables scale with
        // *live* grammar state, not rules created. Worst case for the
        // intern table is an incompressible input (nothing is ever freed,
        // one `(T, 1)` pair per distinct terminal plus a digram-rate of
        // rules): `len/8` covers it with the same `1 << 21` cap as the
        // digram table (beyond it, growth is amortized doubling, not a
        // ladder). Compressible trace-like input stays far below either.
        // The additive constants keep an *empty* builder cheap: a
        // streaming recorder holds one live builder per rank, so at 10⁵–10⁶
        // ranks every kilobyte of idle reservation is a gigabyte of RSS.
        let pair_reserve = (len / 8 + 16).min(1 << 21);
        let rule_reserve = (len / 16 + 8).min(1 << 21);
        let mut s = Sequitur {
            // Terminals enter one node each; rule bodies add less than
            // one node per substitution (freed nodes are recycled).
            nodes: Vec::with_capacity(1 + len + len / 2),
            free_head: NIL,
            guards: Vec::with_capacity(rule_reserve),
            refs: Vec::with_capacity(rule_reserve),
            occ_head: Vec::with_capacity(rule_reserve),
            birth: Vec::with_capacity(rule_reserve),
            rule_free: Vec::new(),
            births: 0,
            pairs: Vec::with_capacity(pair_reserve),
            pair_refs: Vec::with_capacity(pair_reserve),
            pair_free: Vec::new(),
            pair_ids: fx_map_with_capacity(pair_reserve),
            digrams: fx_map_with_capacity(digram_reserve(len)),
            rehashes: 0,
            rle,
        };
        s.new_rule(); // rule 0: main
        s
    }

    /// Live footprint of the builder's tables, for memory diagnostics:
    /// `(node arena, intern table, digram index, rule slots)` lengths.
    /// With slot recycling every component tracks the grammar being
    /// built, not the length of the stream that built it.
    pub fn footprint(&self) -> (usize, usize, usize, usize) {
        (self.nodes.len(), self.pairs.len(), self.digrams.len(), self.guards.len())
    }

    /// Build a grammar from a whole sequence.
    pub fn build(seq: &[u32]) -> Grammar {
        let mut s = Sequitur::with_rle_and_capacity(true, seq.len());
        for &t in seq {
            s.push(t);
        }
        s.into_grammar()
    }

    /// Build without the run-length extension (classic Sequitur).
    pub fn build_classic(seq: &[u32]) -> Grammar {
        let mut s = Sequitur::with_rle_and_capacity(false, seq.len());
        for &t in seq {
            s.push(t);
        }
        s.into_grammar()
    }

    /// Append one terminal to the main rule.
    pub fn push(&mut self, terminal: u32) {
        let guard = self.guards[0];
        let id = self.intern(Sym::T(terminal), 1);
        let n = self.alloc(id);
        let last = self.nodes[guard as usize].prev;
        self.connect(last, n);
        self.connect(n, guard);
        self.check(last);
    }

    // ------------------------------------------------------------------
    // Interning and arena plumbing
    // ------------------------------------------------------------------

    /// Dense id of the `(sym, exp)` pair, minting (or recycling) one on
    /// first sight. The returned id has no reference accounted yet — every
    /// caller immediately stores it in a node (`alloc` or an id overwrite),
    /// which is where `pair_refs` picks it up.
    fn intern(&mut self, sym: Sym, exp: u64) -> u32 {
        let key = (sym_bits(sym), exp);
        if let Some(&id) = self.pair_ids.get(&key) {
            return id;
        }
        let id = match self.pair_free.pop() {
            Some(id) => {
                self.pairs[id as usize] = (sym, exp);
                id
            }
            None => {
                self.pairs.push((sym, exp));
                self.pair_refs.push(0);
                (self.pairs.len() - 1) as u32
            }
        };
        self.pair_ids.insert(key, id);
        id
    }

    /// One live node stopped holding intern id `id`; free the id once no
    /// node holds it (no digram entry can outlive its nodes, so an
    /// unreferenced pair is unreachable).
    fn pair_unref(&mut self, id: u32) {
        let r = &mut self.pair_refs[id as usize];
        *r -= 1;
        if *r == 0 {
            let (sym, exp) = self.pairs[id as usize];
            self.pair_ids.remove(&(sym_bits(sym), exp));
            self.pair_free.push(id);
        }
    }

    fn sym_of(&self, n: u32) -> Sym {
        self.pairs[self.nodes[n as usize].id as usize].0
    }

    fn exp_of(&self, n: u32) -> u64 {
        self.pairs[self.nodes[n as usize].id as usize].1
    }

    /// Allocate a live body node holding the interned pair `id`, reusing
    /// the free list (no heap traffic once the arena is warm).
    fn alloc(&mut self, id: u32) -> u32 {
        let node = Node {
            id,
            prev: NIL,
            next: NIL,
            occ_prev: NIL,
            occ_next: NIL,
            rule_of_guard: NIL,
            alive: true,
        };
        self.pair_refs[id as usize] += 1;
        if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.nodes[i as usize].next;
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn new_rule(&mut self) -> u32 {
        let rule = match self.rule_free.pop() {
            Some(r) => r,
            None => {
                self.guards.push(NIL);
                self.refs.push(0);
                self.occ_head.push(NIL);
                self.birth.push(0);
                (self.guards.len() - 1) as u32
            }
        };
        let id = self.intern(Sym::N(rule), 1);
        let g = self.alloc(id);
        self.nodes[g as usize].rule_of_guard = rule;
        self.nodes[g as usize].prev = g;
        self.nodes[g as usize].next = g;
        self.guards[rule as usize] = g;
        self.refs[rule as usize] = 0;
        self.occ_head[rule as usize] = NIL;
        self.birth[rule as usize] = self.births;
        self.births += 1;
        rule
    }

    fn connect(&mut self, a: u32, b: u32) {
        self.nodes[a as usize].next = b;
        self.nodes[b as usize].prev = a;
    }

    fn next(&self, n: u32) -> u32 {
        self.nodes[n as usize].next
    }

    fn prev(&self, n: u32) -> u32 {
        self.nodes[n as usize].prev
    }

    fn is_guard(&self, n: u32) -> bool {
        self.nodes[n as usize].rule_of_guard != NIL
    }

    /// Digram key at `left`: both interned ids packed into one `u64`.
    fn key_at(&self, left: u32) -> Option<u64> {
        if self.is_guard(left) {
            return None;
        }
        let right = self.next(left);
        if self.is_guard(right) {
            return None;
        }
        Some(
            ((self.nodes[left as usize].id as u64) << 32)
                | self.nodes[right as usize].id as u64,
        )
    }

    /// Unregister the digram starting at `left`, if the index points here.
    fn forget(&mut self, left: u32) {
        if let Some(key) = self.key_at(left) {
            if self.digrams.get(&key) == Some(&left) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Insert into the digram index, counting reservation overflows.
    fn digram_insert(&mut self, key: u64, left: u32) {
        let before = self.digrams.capacity();
        self.digrams.insert(key, left);
        if self.digrams.capacity() != before {
            self.rehashes += 1;
        }
    }

    /// Link `node` (which references `rule`) into the rule's intrusive
    /// occurrence list. O(1), allocation-free.
    fn add_ref(&mut self, rule: u32, node: u32) {
        self.refs[rule as usize] += 1;
        let head = self.occ_head[rule as usize];
        self.nodes[node as usize].occ_prev = NIL;
        self.nodes[node as usize].occ_next = head;
        if head != NIL {
            self.nodes[head as usize].occ_prev = node;
        }
        self.occ_head[rule as usize] = node;
    }

    /// Unlink `node` from `rule`'s occurrence list. O(1), allocation-free
    /// (the old `Vec<Vec<u32>>` representation paid an O(occurrences) scan
    /// here and a heap allocation per growth in `add_ref`).
    fn drop_ref(&mut self, rule: u32, node: u32) {
        self.refs[rule as usize] -= 1;
        let Node { occ_prev, occ_next, .. } = self.nodes[node as usize];
        if occ_prev != NIL {
            self.nodes[occ_prev as usize].occ_next = occ_next;
        } else {
            self.occ_head[rule as usize] = occ_next;
        }
        if occ_next != NIL {
            self.nodes[occ_next as usize].occ_prev = occ_prev;
        }
        self.nodes[node as usize].occ_prev = NIL;
        self.nodes[node as usize].occ_next = NIL;
    }

    /// Return a node to the intrusive free list.
    fn release(&mut self, n: u32) {
        let id = self.nodes[n as usize].id;
        self.nodes[n as usize].alive = false;
        self.nodes[n as usize].next = self.free_head;
        self.free_head = n;
        self.pair_unref(id);
    }

    // ------------------------------------------------------------------
    // Invariant enforcement
    // ------------------------------------------------------------------

    /// Re-establish the invariants for the adjacency `(left, left.next)`.
    fn check(&mut self, left: u32) {
        if left == NIL || !self.nodes[left as usize].alive || self.is_guard(left) {
            return;
        }
        let right = self.next(left);
        if self.is_guard(right) {
            return;
        }
        // Constraint 3: run-length merge of equal symbols.
        if self.rle && self.sym_of(left) == self.sym_of(right) {
            self.merge_run(left, right);
            return;
        }
        let key = self.key_at(left).expect("both non-guard");
        match self.digrams.get(&key) {
            None => {
                self.digram_insert(key, left);
            }
            Some(&existing) if existing == left => {}
            Some(&existing) => {
                // Without RLE, equal adjacent symbols survive, so the `aaa`
                // overlap case of classic Sequitur can occur; overlapping
                // occurrences must not fold.
                if !self.rle
                    && (self.next(existing) == left || self.next(left) == existing)
                {
                    return;
                }
                // Stale index entries cannot exist: `forget` runs before
                // every splice. With RLE, occurrences cannot overlap
                // (adjacent symbols are always distinct).
                self.handle_match(existing, left);
            }
        }
    }

    /// Merge `right` into `left` (equal symbols), then repair both seams.
    fn merge_run(&mut self, left: u32, right: u32) {
        // Digrams involving the three affected adjacencies change identity.
        self.forget(self.prev(left));
        self.forget(left);
        self.forget(right);
        let mut dropped: Option<u32> = None;
        let sym = self.sym_of(left);
        if let Sym::N(rule) = sym {
            // One node's worth of reference disappears (exponents fold).
            self.drop_ref(rule, right);
            dropped = Some(rule);
        }
        let exp = self.exp_of(left) + self.exp_of(right);
        let old = self.nodes[left as usize].id;
        let new = self.intern(sym, exp);
        self.nodes[left as usize].id = new;
        self.pair_refs[new as usize] += 1;
        self.pair_unref(old);
        let after = self.next(right);
        self.connect(left, after);
        self.release(right);
        // Left's digram identity changed: re-check both sides.
        self.check(self.prev(left));
        if self.nodes[left as usize].alive {
            self.check(left);
        }
        if let Some(r) = dropped {
            // Note: the surviving run node still references r, so a drop to
            // one reference with exponent ≥ 2 stays useful; enforce_utility
            // applies the exponent-aware rule.
            self.enforce_utility(r);
        }
    }

    /// Two equal digrams exist: at `existing` and at `fresh`.
    fn handle_match(&mut self, existing: u32, fresh: u32) {
        let e_prev = self.prev(existing);
        let e_next_next = self.next(self.next(existing));
        if self.is_guard(e_prev)
            && self.is_guard(e_next_next)
            && self.nodes[e_prev as usize].rule_of_guard == self.nodes[e_next_next as usize].rule_of_guard
        {
            // The existing occurrence is exactly a rule body: reuse it.
            let rule = self.nodes[e_prev as usize].rule_of_guard;
            self.substitute(fresh, rule);
            self.enforce_utility(rule);
        } else {
            // Create a new rule from the digram, substitute both sites.
            let key = self.key_at(existing).expect("valid digram");
            let id1 = self.nodes[existing as usize].id;
            let id2 = self.nodes[self.next(existing) as usize].id;
            let (s1, _) = self.pairs[id1 as usize];
            let (s2, _) = self.pairs[id2 as usize];
            let rule = self.new_rule();
            let g = self.guards[rule as usize];
            let a = self.alloc(id1);
            let b = self.alloc(id2);
            self.connect(g, a);
            self.connect(a, b);
            self.connect(b, g);
            if let Sym::N(r) = s1 {
                self.add_ref(r, a);
            }
            if let Sym::N(r) = s2 {
                self.add_ref(r, b);
            }
            // The rule body now owns this digram.
            self.digram_insert(key, a);
            // Substitute the existing occurrence first, then the fresh one.
            self.substitute(existing, rule);
            // Cascades from the first substitution can in principle consume
            // the fresh occurrence; only substitute it if it still stands.
            if self.nodes[fresh as usize].alive && self.key_at(fresh) == Some(key) {
                self.substitute(fresh, rule);
            }
            // Newly referenced child rules may have dropped to one use.
            if let Sym::N(r) = s1 {
                self.enforce_utility(r);
            }
            if let Sym::N(r) = s2 {
                self.enforce_utility(r);
            }
            self.enforce_utility(rule);
        }
    }

    /// Replace the digram starting at `left` with a reference to `rule`.
    fn substitute(&mut self, left: u32, rule: u32) {
        let right = self.next(left);
        let before = self.prev(left);
        let after = self.next(right);
        self.forget(before);
        self.forget(left);
        self.forget(right);
        let mut dropped = [NIL; 2];
        for (i, n) in [left, right].into_iter().enumerate() {
            if let Sym::N(r) = self.sym_of(n) {
                self.drop_ref(r, n);
                dropped[i] = r;
            }
        }
        let id = self.intern(Sym::N(rule), 1);
        let nn = self.alloc(id);
        self.add_ref(rule, nn);
        self.connect(before, nn);
        self.connect(nn, after);
        self.release(left);
        self.release(right);
        // Repair seams: first the left one (may run-merge nn away).
        self.check(before);
        if self.nodes[nn as usize].alive {
            self.check(nn);
        }
        // Rules that lost a reference here may have fallen to one use.
        for r in dropped {
            if r != NIL {
                self.enforce_utility(r);
            }
        }
    }

    /// Inline `rule` if it has a single remaining reference with exponent 1
    /// (a reference with exponent ≥ 2 still pays for itself under RLE).
    fn enforce_utility(&mut self, rule: u32) {
        if rule == 0
            || self.guards[rule as usize] == NIL
            || self.refs[rule as usize] != 1
        {
            return;
        }
        let site = self.occ_head[rule as usize];
        if !self.nodes[site as usize].alive || self.exp_of(site) != 1 {
            return;
        }
        let guard = self.guards[rule as usize];
        let first = self.next(guard);
        let last = self.prev(guard);
        if first == guard {
            return; // empty rule body; nothing to inline
        }
        let before = self.prev(site);
        let after = self.next(site);
        self.forget(before);
        self.forget(site);
        self.drop_ref(rule, site);
        // Move the body nodes wholesale (their internal digram index
        // entries stay valid because the node ids do not change).
        self.connect(before, first);
        self.connect(last, after);
        self.release(site);
        self.release(guard);
        self.guards[rule as usize] = NIL;
        // The slot is free for reuse. Stale `enforce_utility` calls on a
        // recycled id are harmless: they run only between cascades, when
        // the utility invariant already holds for every live rule.
        self.rule_free.push(rule);
        // Repair the seams.
        self.check(before);
        // `last` may have died if the whole body merged leftward; guard it.
        if self.nodes[last as usize].alive {
            self.check(last);
        }
    }

    // ------------------------------------------------------------------
    // Extraction
    // ------------------------------------------------------------------

    /// Convert into an immutable [`Grammar`], renumbering surviving rules
    /// densely (main rule stays rule 0).
    pub fn into_grammar(self) -> Grammar {
        // Map surviving rule slots to dense ids in *creation order* (the
        // birth stamp, not the slot number): slot recycling hands old
        // numbers to young rules, and this renumbering keeps the output
        // byte-identical to a builder that never recycled anything.
        let mut by_birth: Vec<(u64, u32)> = self
            .guards
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g != NIL)
            .map(|(rule, _)| (self.birth[rule], rule as u32))
            .collect();
        by_birth.sort_unstable();
        let mut remap: FxHashMap<u32, u32> = fx_map_with_capacity(by_birth.len());
        let mut order: Vec<u32> = Vec::with_capacity(by_birth.len());
        for &(_, rule) in &by_birth {
            remap.insert(rule, order.len() as u32);
            order.push(rule);
        }

        // Rule churn and digram-table metrics, flushed once per build.
        siesta_obs::counter("grammar.rules_created").add(self.births);
        siesta_obs::counter("grammar.rules_inlined").add(self.births - order.len() as u64);
        siesta_obs::counter("grammar.digram.rehashes").add(self.rehashes);
        siesta_obs::histogram("grammar.digram_table_size").record(self.digrams.len() as u64);
        let mut rules = Vec::with_capacity(order.len());
        for &rule in &order {
            let g = self.guards[rule as usize];
            let mut body = Vec::new();
            let mut n = self.nodes[g as usize].next;
            while n != g {
                let node = &self.nodes[n as usize];
                let (sym, exp) = self.pairs[node.id as usize];
                let sym = match sym {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(r) => Sym::N(*remap.get(&r).expect("live rule referenced")),
                };
                body.push(RSym::new(sym, exp));
                n = node.next;
            }
            rules.push(body);
        }
        Grammar { rules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seq: &[u32]) -> Grammar {
        Sequitur::build(seq)
    }

    #[test]
    fn empty_and_singleton() {
        let g = build(&[]);
        assert_eq!(g.rules.len(), 1);
        assert!(g.rules[0].is_empty());
        let g = build(&[7]);
        assert_eq!(g.expand_main(), vec![7]);
    }

    #[test]
    fn pure_repetition_is_constant_size() {
        // The paper's aaaa... example: with RLE the whole thing is one
        // run-length symbol, not a log-depth rule chain.
        let seq = vec![5u32; 1000];
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.rules[0].len(), 1);
        assert_eq!(g.rules[0][0].exp, 1000);
    }

    #[test]
    fn repeated_pair_becomes_rule_with_power() {
        // abababab → main: R1^4, R1 → a b
        let seq: Vec<u32> = (0..8).map(|i| i % 2).collect();
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0].len(), 1);
        assert_eq!(g.rules[0][0].exp, 4);
        assert_eq!(g.rules[1].len(), 2);
    }

    #[test]
    fn nested_loop_structure_compresses_hierarchically() {
        // (a b b b c){20} — an iteration with an inner loop.
        let mut seq = Vec::new();
        for _ in 0..20 {
            seq.push(1);
            seq.extend([2, 2, 2]);
            seq.push(3);
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        // Grammar should be tiny: a rule for (a b^3 c) raised to the 20th.
        assert!(g.size() <= 6, "grammar too large: {g:?}");
    }

    #[test]
    fn sequitur_classic_example() {
        // "abcdbc" → S → a A d A, A → b c  (classic Sequitur result)
        let g = build(&[1, 2, 3, 4, 2, 3]);
        assert_eq!(g.expand_main(), vec![1, 2, 3, 4, 2, 3]);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[1].len(), 2);
    }

    #[test]
    fn invariants_hold_on_structured_input() {
        // A trace-like input: iterations with a rare special phase.
        let mut seq = Vec::new();
        for i in 0..50 {
            seq.extend([10, 11, 12, 11, 13]);
            if i % 10 == 9 {
                seq.extend([20, 21]);
            }
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        g.assert_invariants();
        // Far smaller than the input.
        assert!(g.size() < seq.len() / 4, "size {} vs input {}", g.size(), seq.len());
    }

    #[test]
    fn random_input_round_trips() {
        // Pseudo-random (incompressible) input: correctness matters more
        // than compression here.
        let mut x = 12345u64;
        let seq: Vec<u32> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) % 17) as u32
            })
            .collect();
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        g.assert_invariants();
    }

    #[test]
    fn long_runs_inside_repeats() {
        // a^5 b a^5 b a^5 b → rule (a^5 b)^3.
        let mut seq = Vec::new();
        for _ in 0..3 {
            seq.extend([1; 5]);
            seq.push(2);
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        assert!(g.size() <= 4, "expected compact powers: {g:?}");
    }

    #[test]
    fn classic_mode_round_trips_and_uses_log_rules_for_runs() {
        // The Omnis'IO observation the paper cites: a run of n identical
        // symbols is one power under RLE, but a log-depth rule chain in
        // classic Sequitur.
        let seq = vec![5u32; 1024];
        let classic = Sequitur::build_classic(&seq);
        assert_eq!(classic.expand_main(), seq);
        let rle = Sequitur::build(&seq);
        assert_eq!(rle.size(), 1);
        assert!(
            classic.rules.len() >= 9,
            "classic should need ~log2(1024) rules, got {}",
            classic.rules.len()
        );
        assert!(classic.size() > 4 * rle.size());
    }

    #[test]
    fn classic_mode_handles_overlap_case() {
        // aaa...: overlapping digrams must not fold into broken rules.
        for n in [2usize, 3, 4, 5, 7, 9] {
            let seq = vec![1u32; n];
            let g = Sequitur::build_classic(&seq);
            assert_eq!(g.expand_main(), seq, "n={n}");
        }
        // Mixed runs.
        let seq = vec![1, 1, 1, 2, 1, 1, 1, 2, 1, 1];
        let g = Sequitur::build_classic(&seq);
        assert_eq!(g.expand_main(), seq);
    }

    #[test]
    fn utility_rule_keeps_powered_single_references() {
        // (ab)^2 appears once as a run: rule referenced once with exp 2
        // must survive (it saves space), not be inlined.
        let g = build(&[1, 2, 1, 2]);
        assert_eq!(g.expand_main(), vec![1, 2, 1, 2]);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0][0].exp, 2);
        g.assert_invariants();
    }

    #[test]
    fn occurrence_lists_survive_heavy_churn() {
        // Interleaved phrases force rules to gain and lose references many
        // times (add_ref/drop_ref/unlink churn on the intrusive lists);
        // the grammar must still round-trip and satisfy every invariant.
        let mut seq = Vec::new();
        for i in 0u32..200 {
            match i % 5 {
                0 => seq.extend([1, 2, 3]),
                1 => seq.extend([2, 3, 4]),
                2 => seq.extend([1, 2, 3, 4]),
                3 => seq.extend([4, 1, 2]),
                _ => seq.extend([3, 4, 1]),
            }
        }
        let g = build(&seq);
        assert_eq!(g.expand_main(), seq);
        g.assert_invariants();
    }

    /// Deterministic pseudo-random sequence over a small alphabet with
    /// SPMD-trace-like repetition (phrases repeated with variations).
    fn lcg_seq(seed: u64, len: usize, alphabet: u32) -> Vec<u32> {
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut seq = Vec::with_capacity(len);
        while seq.len() < len {
            let phrase: Vec<u32> =
                (0..(step() % 6 + 2)).map(|_| (step() % alphabet as u64) as u32).collect();
            for _ in 0..(step() % 4 + 1) {
                seq.extend_from_slice(&phrase);
            }
        }
        seq.truncate(len);
        seq
    }

    #[test]
    fn unsized_incremental_push_matches_presized_build() {
        // Streaming ingest cannot pre-size the builder (the stream length
        // is unknown); capacity must only affect allocation, never one
        // grammar decision.
        for seed in 1..6u64 {
            let seq = lcg_seq(seed, 4000, 12);
            let mut s = Sequitur::with_rle(true);
            for &t in &seq {
                s.push(t);
            }
            assert_eq!(s.into_grammar(), Sequitur::build(&seq), "seed {seed}");
        }
    }

    #[test]
    fn relabel_commutes_with_build() {
        // The streaming-path contract: for injective remaps, relabeling a
        // built grammar's terminals equals building over the remapped
        // sequence. (Sequitur sees only equality patterns, and an
        // injective map preserves them exactly.)
        for seed in 1..6u64 {
            let seq = lcg_seq(seed, 4000, 12);
            // An injective, order-scrambling remap of the 12-symbol table.
            let remap: Vec<u32> = (0..12u32).map(|t| (t * 7 + 3) % 12 + 100 * (t % 3)).collect();
            {
                let mut seen: Vec<u32> = remap.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), remap.len(), "remap must be injective");
            }
            let relabeled = Sequitur::build(&seq).relabel_terminals(&remap);
            let mapped: Vec<u32> = seq.iter().map(|&t| remap[t as usize]).collect();
            assert_eq!(relabeled, Sequitur::build(&mapped), "seed {seed}");
            relabeled.assert_invariants();
        }
    }
}

