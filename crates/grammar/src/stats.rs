//! Grammar structure analysis: how well did compression work, and where
//! does the space go? Used by the CLI's `inspect` command and the
//! experiment harnesses.

use std::collections::HashMap;

use crate::grammar::Grammar;
use crate::merge::MergedGrammar;
use crate::symbol::Sym;

/// Summary statistics of one grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct GrammarStats {
    /// Total run-length symbols across rule bodies.
    pub size: usize,
    pub num_rules: usize,
    /// Terminals the main rule ultimately derives.
    pub expanded_len: u128,
    /// `expanded_len / size` — how many trace events each stored symbol
    /// stands for.
    pub compression: f64,
    /// Maximum rule depth (terminals are depth 0).
    pub max_depth: u32,
    /// Histogram of rule depths (index = depth).
    pub depth_histogram: Vec<usize>,
    /// The largest exponent anywhere in the grammar (the longest folded
    /// run).
    pub max_exponent: u64,
    /// Mean references per non-main rule.
    pub mean_rule_refs: f64,
}

/// Analyze a single-rank grammar.
pub fn analyze(g: &Grammar) -> GrammarStats {
    let size = g.size();
    let depths = g.depths();
    let max_depth = depths.iter().copied().max().unwrap_or(0);
    let mut depth_histogram = vec![0usize; max_depth as usize + 1];
    for &d in &depths {
        depth_histogram[d as usize] += 1;
    }
    let refs = g.ref_counts();
    let non_main = refs.len().saturating_sub(1);
    let mean_rule_refs = if non_main > 0 {
        refs[1..].iter().map(|&r| r as f64).sum::<f64>() / non_main as f64
    } else {
        0.0
    };
    let expanded_len = g.expanded_len(0);
    let max_exponent = g
        .rules
        .iter()
        .flat_map(|b| b.iter())
        .map(|rs| rs.exp)
        .max()
        .unwrap_or(0);
    GrammarStats {
        size,
        num_rules: g.rules.len(),
        expanded_len,
        compression: expanded_len as f64 / size.max(1) as f64,
        max_depth,
        depth_histogram,
        max_exponent,
        mean_rule_refs,
    }
}

/// Per-rule coverage of a merged grammar: how many derived terminals each
/// rule accounts for across all rank expansions. The heaviest rules are
/// the program's hot loops.
pub fn rule_coverage(m: &MergedGrammar) -> Vec<(u32, u128)> {
    // expansion length per rule (memoized).
    let mut expanded: HashMap<u32, u128> = HashMap::new();
    fn len_of(m: &MergedGrammar, rule: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if let Some(&v) = memo.get(&rule) {
            return v;
        }
        let mut total = 0u128;
        for rs in &m.rules[rule as usize] {
            let unit = match rs.sym {
                Sym::T(_) => 1,
                Sym::N(n) => len_of(m, n, memo),
            };
            total += unit * rs.exp as u128;
        }
        memo.insert(rule, total);
        total
    }
    // Count times each rule is *entered* across all rank main expansions.
    let mut entries: HashMap<u32, u128> = HashMap::new();
    for main in &m.mains {
        for ms in &main.body {
            if let Sym::N(n) = ms.sym {
                let multiplicity = ms.ranks.len() as u128 * ms.exp as u128;
                accumulate(m, n, multiplicity, &mut entries);
            }
        }
    }
    fn accumulate(m: &MergedGrammar, rule: u32, mult: u128, entries: &mut HashMap<u32, u128>) {
        *entries.entry(rule).or_default() += mult;
        for rs in &m.rules[rule as usize] {
            if let Sym::N(n) = rs.sym {
                accumulate(m, n, mult * rs.exp as u128, entries);
            }
        }
    }
    let mut out: Vec<(u32, u128)> = entries
        .into_iter()
        .map(|(rule, times)| (rule, times * len_of(m, rule, &mut expanded)))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Render a grammar as a Graphviz DOT digraph: rules are boxes, terminals
/// are ellipses, edges are labeled with exponents. Handy for inspecting
/// what Sequitur found (`dot -Tsvg grammar.dot`).
pub fn to_dot(g: &Grammar) -> String {
    use std::fmt::Write;
    let mut out = String::from("digraph grammar {\n  rankdir=TB;\n");
    let mut terminals = std::collections::BTreeSet::new();
    for (ri, body) in g.rules.iter().enumerate() {
        let label = if ri == 0 { "S".to_string() } else { format!("R{ri}") };
        let _ = writeln!(out, "  r{ri} [shape=box, label=\"{label}\"];");
        for (pos, rs) in body.iter().enumerate() {
            let (target, edge_style) = match rs.sym {
                Sym::N(n) => (format!("r{n}"), ""),
                Sym::T(t) => {
                    terminals.insert(t);
                    (format!("t{t}"), ", style=dashed")
                }
            };
            let exp_label = if rs.exp == 1 {
                format!("{pos}")
            } else {
                format!("{pos}: ^{}", rs.exp)
            };
            let _ = writeln!(out, "  r{ri} -> {target} [label=\"{exp_label}\"{edge_style}];");
        }
    }
    for t in terminals {
        let _ = writeln!(out, "  t{t} [shape=ellipse, label=\"t{t}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_grammars, MergeConfig};
    use crate::sequitur::Sequitur;

    #[test]
    fn analyze_reports_compression_for_loops() {
        let seq: Vec<u32> = std::iter::repeat_n([1u32, 2, 3], 100).flatten().collect();
        let g = Sequitur::build(&seq);
        let s = analyze(&g);
        assert_eq!(s.expanded_len, 300);
        assert!(s.compression > 30.0, "compression {}", s.compression);
        assert!(s.max_exponent >= 50);
        assert_eq!(s.depth_histogram.iter().sum::<usize>(), s.num_rules);
    }

    #[test]
    fn analyze_handles_incompressible_input() {
        let seq: Vec<u32> = (0..100).collect();
        let g = Sequitur::build(&seq);
        let s = analyze(&g);
        assert_eq!(s.expanded_len, 100);
        assert_eq!(s.num_rules, 1);
        assert!(s.compression <= 1.01);
    }

    #[test]
    fn rule_coverage_finds_the_hot_loop() {
        // Two ranks running the same 3-symbol loop 100 times.
        let seq: Vec<u32> = std::iter::repeat_n([1u32, 2, 3], 100).flatten().collect();
        let grammars = vec![Sequitur::build(&seq), Sequitur::build(&seq)];
        let merged = merge_grammars(&grammars, &MergeConfig::default());
        let coverage = rule_coverage(&merged);
        assert!(!coverage.is_empty());
        // The top rule covers (nearly) all 600 derived terminals.
        let (_, top) = coverage[0];
        assert!(top >= 500, "top coverage {top}");
    }

    #[test]
    fn dot_export_is_wellformed() {
        let seq: Vec<u32> = std::iter::repeat_n([1u32, 2, 2, 3], 20).flatten().collect();
        let g = Sequitur::build(&seq);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph grammar {"));
        assert!(dot.ends_with("}\n"));
        // Every rule appears as a node; the start rule is labeled S.
        assert!(dot.contains("r0 [shape=box, label=\"S\"]"));
        for ri in 1..g.rules.len() {
            assert!(dot.contains(&format!("r{ri} [shape=box")), "missing rule {ri}");
        }
        // Terminals appear with dashed edges.
        assert!(dot.contains("style=dashed"));
        // Exponents are labeled.
        assert!(dot.contains('^'));
    }

    #[test]
    fn coverage_is_empty_without_nonterminals() {
        let grammars = vec![Sequitur::build(&[1, 2, 3])];
        let merged = merge_grammars(&grammars, &MergeConfig::default());
        assert!(rule_coverage(&merged).is_empty());
    }
}
