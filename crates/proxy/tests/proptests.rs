//! Property-based tests for the computation-proxy search.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_perfmodel::{platform_a, platform_b, CounterVec, Machine, MpiFlavor};
use siesta_proxy::{nnls, solve_block_fit, CommShrink, ProxySearcher};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// NNLS always returns a feasible point satisfying the KKT conditions.
    #[test]
    fn nnls_kkt_holds(
        entries in prop::collection::vec(0.05f64..5.0, 24),
        b in prop::collection::vec(-3.0f64..6.0, 6),
    ) {
        let a: Vec<Vec<f64>> = (0..6).map(|i| entries[i * 4..(i + 1) * 4].to_vec()).collect();
        let x = nnls(&a, &b);
        prop_assert!(x.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // Residual and gradient.
        let r: Vec<f64> = (0..6)
            .map(|i| b[i] - (0..4).map(|j| a[i][j] * x[j]).sum::<f64>())
            .collect();
        let scale = entries.iter().fold(1.0f64, |m, v| m.max(*v))
            * b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for j in 0..4 {
            let g: f64 = (0..6).map(|i| a[i][j] * r[i]).sum();
            if x[j] > 1e-7 {
                prop_assert!(g.abs() < 1e-5 * scale, "active grad {g} (x={})", x[j]);
            } else {
                prop_assert!(g < 1e-5 * scale, "inactive ascent {g}");
            }
        }
    }

    /// The block fit always produces a feasible solution: non-negative and
    /// respecting the wrapper-loop cover constraint, pre- and post-rounding.
    #[test]
    fn block_fit_is_always_feasible(
        ins in 1e3f64..1e8,
        cyc_per_ins in 0.2f64..8.0,
        lst_frac in 0.05f64..0.6,
        dcm_frac in 0.0f64..0.4,
        br_frac in 0.005f64..0.2,
        msp_rate in 0.0f64..0.5,
    ) {
        let lst = ins * lst_frac;
        let br = ins * br_frac;
        let t = [ins, ins * cyc_per_ins, lst, lst * dcm_frac, br, br * msp_rate];
        let m = machine();
        let searcher = ProxySearcher::new(&m);
        let fit = solve_block_fit(searcher.b_matrix(), &t);
        prop_assert!(fit.x.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let inner: f64 = fit.x[..9].iter().sum();
        prop_assert!(fit.x[10] >= inner - 1e-6 * inner.max(1.0));
        let proxy = searcher.search(&CounterVec::from_array(t));
        let inner_r: u64 = proxy.reps[..9].iter().sum();
        prop_assert!(proxy.reps[10] >= inner_r);
    }

    /// The searched proxy never predicts wildly more work than asked: its
    /// instruction count stays within a small multiple of the target.
    #[test]
    fn search_does_not_explode(ins in 1e4f64..1e8, cyc_mult in 0.3f64..4.0) {
        let m = machine();
        let searcher = ProxySearcher::new(&m);
        let t = CounterVec::new(ins, ins * cyc_mult, ins * 0.3, ins * 0.01, ins * 0.02, ins * 0.001);
        let proxy = searcher.search(&t);
        let pred = searcher.predict(&proxy, &m);
        prop_assert!(pred.ins < 6.0 * ins, "predicted {} for target {}", pred.ins, ins);
    }

    /// Proxy cost is platform-covariant: a proxy always takes longer on the
    /// slow platform B than on A (B is slower for every block).
    #[test]
    fn proxies_slow_down_on_knl(points in 1e3f64..1e6, flops in 1.0f64..16.0) {
        let ma = machine();
        let mb = Machine::new(platform_b(), MpiFlavor::OpenMpi);
        let searcher = ProxySearcher::new(&ma);
        let kernel = siesta_perfmodel::KernelDesc::stencil(points, flops, points * 8.0);
        let proxy = searcher.search(&ma.cpu().counters(&kernel));
        if proxy.total_reps() > 0 {
            let ta = proxy.time_ns_on(ma.cpu(), searcher.blocks());
            let tb = proxy.time_ns_on(mb.cpu(), searcher.blocks());
            prop_assert!(tb > ta, "B ({tb}) not slower than A ({ta})");
        }
    }

    /// Communication shrinking is monotone in the factor and never
    /// increases the volume.
    #[test]
    fn shrink_is_monotone_in_factor(bytes in 1u64..100_000_000, k1 in 1.0f64..50.0, k2 in 1.0f64..50.0) {
        let s = CommShrink::fit(&machine().net);
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let v_lo = s.shrink_bytes(bytes, lo);
        let v_hi = s.shrink_bytes(bytes, hi);
        prop_assert!(v_lo <= bytes);
        prop_assert!(v_hi <= v_lo, "shrink not monotone: k={lo}→{v_lo}, k={hi}→{v_hi}");
    }
}

#[test]
fn search_is_deterministic() {
    let m = machine();
    let s1 = ProxySearcher::new(&m);
    let s2 = ProxySearcher::new(&m);
    let t = CounterVec::new(1e6, 2e6, 3e5, 2e4, 1.5e4, 300.0);
    assert_eq!(s1.search(&t), s2.search(&t));
    assert_eq!(s1.b_matrix(), s2.b_matrix());
}
