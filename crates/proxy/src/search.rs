//! Computation-proxy search (Section 2.4): micro-benchmark the blocks on
//! the target machine, fit repetition counts with the constrained QP, round
//! to integers.

use siesta_perfmodel::{noise, CounterVec, CpuModel, KernelDesc, Machine};

use crate::blocks::{blocks_for, NUM_BLOCKS, WRAPPER};
use crate::qp::solve_block_fit;

/// A synthesized computation proxy: how many times each of the 11 blocks
/// repeats to mimic one computation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeProxy {
    pub reps: [u64; NUM_BLOCKS],
}

impl ComputeProxy {
    pub const IDLE: ComputeProxy = ComputeProxy { reps: [0; NUM_BLOCKS] };

    /// Total block repetitions (a rough "work" measure).
    pub fn total_reps(&self) -> u64 {
        self.reps.iter().sum()
    }

    /// Counters the proxy produces on a CPU. The blocks execute as
    /// *separate sequential loops* (each with its own locality and
    /// bottleneck), so the total is the per-block sum — the same linearity
    /// the QP fit assumes.
    pub fn counters_on(&self, cpu: &CpuModel, blocks: &[KernelDesc; NUM_BLOCKS]) -> CounterVec {
        let mut acc = CounterVec::ZERO;
        for (block, &r) in blocks.iter().zip(&self.reps) {
            if r > 0 {
                acc += cpu.counters(block) * r as f64;
            }
        }
        acc
    }

    /// Execution time of the proxy on a CPU, nanoseconds.
    pub fn time_ns_on(&self, cpu: &CpuModel, blocks: &[KernelDesc; NUM_BLOCKS]) -> f64 {
        cpu.time_ns(&self.counters_on(cpu, blocks))
    }
}

/// Block signatures measured on a specific machine, plus the fit entry
/// point. Create once per (generation) machine and reuse for every event.
#[derive(Debug, Clone)]
pub struct ProxySearcher {
    blocks: [KernelDesc; NUM_BLOCKS],
    /// `b[i][j]`: metric `i` of one repetition of block `j`, as measured by
    /// the micro-benchmarks (noisy, like real measurements).
    b_matrix: [[f64; 11]; 6],
}

impl ProxySearcher {
    /// Micro-benchmark the 11 blocks on `machine` (paper: "we can use
    /// micro-benchmarks to get the i-th metric of block_j"). Each block is
    /// timed over many repetitions, so measurement noise is averaged down.
    pub fn new(machine: &Machine) -> ProxySearcher {
        let cpu = machine.cpu();
        let blocks = blocks_for(cpu);
        let mut b_matrix = [[0.0f64; 11]; 6];
        for (j, block) in blocks.iter().enumerate() {
            const BENCH_REPS: f64 = 4096.0;
            let seed = noise::combine(&[0xB10C, j as u64]);
            let measured = cpu.counters_noisy(&block.repeat(BENCH_REPS), seed) / BENCH_REPS;
            let arr = measured.as_array();
            for i in 0..6 {
                b_matrix[i][j] = arr[i];
            }
        }
        ProxySearcher { blocks, b_matrix }
    }

    pub fn blocks(&self) -> &[KernelDesc; NUM_BLOCKS] {
        &self.blocks
    }

    pub fn b_matrix(&self) -> &[[f64; 11]; 6] {
        &self.b_matrix
    }

    /// Find the block combination mimicking `target` (the mean counters of
    /// one clustered computation event).
    pub fn search(&self, target: &CounterVec) -> ComputeProxy {
        let fit = solve_block_fit(&self.b_matrix, &target.as_array());
        // Called once per compute event; cache the registry handle.
        static ITERS: std::sync::OnceLock<&'static siesta_obs::Histogram> =
            std::sync::OnceLock::new();
        ITERS
            .get_or_init(|| siesta_obs::histogram("proxy.solver_iterations"))
            .record(fit.iterations as u64);
        let mut reps = [0u64; NUM_BLOCKS];
        for (j, rep) in reps.iter_mut().enumerate() {
            *rep = fit.x[j].round().max(0.0) as u64;
        }
        // Rounding must not break the loop-cover constraint.
        let inner: u64 = reps[..9].iter().sum();
        if reps[WRAPPER] < inner {
            reps[WRAPPER] = inner;
        }
        ComputeProxy { reps }
    }

    /// Solve a whole table's worth of targets at once: identical counter
    /// vectors (bit-for-bit) solve a single QP, and the unique solves fan
    /// out across the [`siesta_par`] worker pool. Results come back in
    /// input order, so the output is bit-identical at any thread count —
    /// and identical to calling [`ProxySearcher::search`] per target,
    /// since the solver is deterministic.
    pub fn search_batch(&self, targets: &[CounterVec]) -> Vec<ComputeProxy> {
        let mut index: siesta_hash::FxHashMap<[u64; 6], usize> =
            siesta_hash::fx_map_with_capacity(targets.len());
        let mut unique: Vec<CounterVec> = Vec::new();
        // First-seen order keeps the unique list (and hence the parallel
        // task numbering) independent of hash-map iteration.
        let assign: Vec<usize> = targets
            .iter()
            .map(|t| {
                let key = t.as_array().map(f64::to_bits);
                *index.entry(key).or_insert_with(|| {
                    unique.push(*t);
                    unique.len() - 1
                })
            })
            .collect();
        siesta_obs::counter("proxy.batch.targets").add(targets.len() as u64);
        siesta_obs::counter("proxy.batch.unique_solves").add(unique.len() as u64);
        // Small-work guard: each QP solve is ~tens of µs, so a batch only
        // pays for worker spawns past a few dozen unique solves.
        const MIN_SOLVES_TO_FAN_OUT: usize = 64;
        let solved = siesta_par::parallel_map_min_work(
            &unique,
            unique.len(),
            MIN_SOLVES_TO_FAN_OUT,
            |_, t| self.search(t),
        );
        assign.into_iter().map(|u| solved[u].clone()).collect()
    }

    /// Noise-free counters the proxy produces on `machine` (for error
    /// evaluation; replay adds measurement noise on top).
    pub fn predict(&self, proxy: &ComputeProxy, machine: &Machine) -> CounterVec {
        proxy.counters_on(machine.cpu(), &self.blocks)
    }

    /// Mean relative error of the proxy against its target on `machine`,
    /// skipping metrics under the hardware measurement floor.
    pub fn error(&self, proxy: &ComputeProxy, target: &CounterVec, machine: &Machine) -> f64 {
        self.predict(proxy, machine)
            .mean_relative_error_floored(target, siesta_perfmodel::MEASUREMENT_FLOOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::{platform_a, platform_b, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    fn searcher() -> ProxySearcher {
        ProxySearcher::new(&machine())
    }

    #[test]
    fn search_matches_stencil_kernels_well() {
        let m = machine();
        let s = searcher();
        let target = m.cpu().counters(&KernelDesc::stencil(50_000.0, 6.0, 2e6));
        let proxy = s.search(&target);
        let err = s.error(&proxy, &target, &m);
        assert!(err < 0.15, "stencil fit error {err}");
    }

    #[test]
    fn search_matches_divide_heavy_kernels() {
        let m = machine();
        let s = searcher();
        let target = m.cpu().counters(&KernelDesc::divide_heavy(20_000.0, 2.0, 1e6));
        let proxy = s.search(&target);
        let err = s.error(&proxy, &target, &m);
        assert!(err < 0.15, "divide fit error {err}");
        // The fit should lean on the divide blocks (3, 4, 6 or 9).
        let div_reps = proxy.reps[2] + proxy.reps[3] + proxy.reps[5] + proxy.reps[8];
        assert!(div_reps > 0, "no divide blocks used: {:?}", proxy.reps);
    }

    #[test]
    fn search_matches_branchy_kernels() {
        let m = machine();
        let s = searcher();
        let target = m.cpu().counters(&KernelDesc::integer_scatter(100_000.0, 8e6));
        let proxy = s.search(&target);
        let err = s.error(&proxy, &target, &m);
        // Scatter kernels are the hardest corner of the block cone: their
        // miss-per-instruction density exceeds any block's, so some error
        // is structural (the paper's "non-orthogonality" caveat). It must
        // still be far better than ignoring computation altogether.
        assert!(err < 0.3, "scatter fit error {err}");
        // Needs misprediction blocks.
        assert!(proxy.reps[4] + proxy.reps[5] > 0, "{:?}", proxy.reps);
    }

    #[test]
    fn proxies_respect_cover_constraint_after_rounding() {
        let m = machine();
        let s = searcher();
        for scale in [100.0, 10_000.0, 1_000_000.0] {
            let target = m.cpu().counters(&KernelDesc::stencil(scale, 4.0, 65536.0));
            let proxy = s.search(&target);
            let inner: u64 = proxy.reps[..9].iter().sum();
            assert!(proxy.reps[WRAPPER] >= inner);
        }
    }

    #[test]
    fn proxy_time_tracks_target_magnitude() {
        let m = machine();
        let s = searcher();
        let small = m.cpu().counters(&KernelDesc::stencil(10_000.0, 4.0, 1e5));
        let large = small * 50.0;
        let p_small = s.search(&small);
        let p_large = s.search(&large);
        let t_small = p_small.time_ns_on(m.cpu(), s.blocks());
        let t_large = p_large.time_ns_on(m.cpu(), s.blocks());
        assert!(t_large > 20.0 * t_small, "{t_small} vs {t_large}");
    }

    #[test]
    fn proxy_ports_across_platforms() {
        // The proxy is *fit* on platform A; executing the same block counts
        // on platform B must slow down roughly like the original kernel
        // does — the mechanism behind the paper's Figure 9.
        let ma = machine();
        let mb = Machine::new(platform_b(), MpiFlavor::OpenMpi);
        let s = ProxySearcher::new(&ma);
        let kernel = KernelDesc::stencil(100_000.0, 6.0, 4e6);
        let target_a = ma.cpu().counters(&kernel);
        let proxy = s.search(&target_a);
        let orig_ratio = mb.cpu().kernel_time_ns(&kernel) / ma.cpu().kernel_time_ns(&kernel);
        let proxy_ratio =
            proxy.time_ns_on(mb.cpu(), s.blocks()) / proxy.time_ns_on(ma.cpu(), s.blocks());
        assert!(orig_ratio > 1.4, "platform B should be slower");
        assert!(
            (proxy_ratio - orig_ratio).abs() / orig_ratio < 0.5,
            "proxy slowdown {proxy_ratio} vs original {orig_ratio}"
        );
    }

    #[test]
    fn batch_matches_per_target_search_at_any_width() {
        let m = machine();
        let s = searcher();
        // Duplicates on purpose: the dedup cache must hand every
        // occurrence the same solve.
        let mut targets = Vec::new();
        for scale in [1e4, 2e4, 1e4, 5e4, 2e4, 1e4, 3e4] {
            targets.push(m.cpu().counters(&KernelDesc::stencil(scale, 4.0, 1e6)));
        }
        let sequential: Vec<_> = targets.iter().map(|t| s.search(t)).collect();
        for width in [1, 2, 8] {
            let batch = siesta_par::with_threads(width, || s.search_batch(&targets));
            assert_eq!(batch, sequential, "width {width}");
        }
    }

    #[test]
    fn zero_target_produces_idle_proxy() {
        let s = searcher();
        let proxy = s.search(&CounterVec::ZERO);
        assert_eq!(proxy.total_reps(), 0);
    }
}
