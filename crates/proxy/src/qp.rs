//! The constrained quadratic program of Section 2.4.
//!
//! The paper fits a non-negative combination `x` of block signatures `B` to
//! a counter target `t`, minimizing the row-normalized residual
//! `Σᵢ (bᵢ·x − tᵢ)² / tᵢ²` subject to `x ≥ 0` and the loop-cover constraint
//! `x₁₁ ≥ Σᵢ₌₁⁹ xᵢ`.
//!
//! The cover constraint is eliminated by the substitution
//! `x₁₁ = s + Σᵢ₌₁⁹ xᵢ` with `s ≥ 0`: folding column 11 into columns 1–9
//! leaves a *plain* non-negative least squares problem, solved exactly with
//! the Lawson–Hanson active-set algorithm. The problem is tiny (6 rows, 11
//! columns), so the dense solver below is more than enough.

/// Solve `min ‖A y − b‖²` s.t. `y ≥ 0` by Lawson–Hanson active sets.
///
/// `a` is row-major, `rows × cols`. Returns the optimal `y` (length `cols`).
pub fn nnls(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    nnls_counted(a, b).0
}

/// [`nnls`] plus the number of outer active-set iterations performed —
/// the solver-effort figure the observability layer histograms.
pub fn nnls_counted(a: &[Vec<f64>], b: &[f64]) -> (Vec<f64>, u32) {
    let rows = a.len();
    let cols = if rows > 0 { a[0].len() } else { 0 };
    let mut x = vec![0.0f64; cols];
    let mut passive = vec![false; cols];
    let tol = 1e-10 * frobenius(a) * linf(b).max(1.0);
    let mut iterations = 0u32;

    for _outer in 0..(3 * cols + 10) {
        iterations += 1;
        // Gradient of ½‖Ax−b‖²: w = Aᵀ(b − Ax).
        let r = residual(a, &x, b);
        let w: Vec<f64> = (0..cols)
            .map(|j| (0..rows).map(|i| a[i][j] * r[i]).sum())
            .collect();
        // Most-violating inactive variable.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..cols {
            if !passive[j] && w[j] > tol
                && best.map(|(_, v)| w[j] > v).unwrap_or(true) {
                    best = Some((j, w[j]));
                }
        }
        let Some((jstar, _)) = best else { break };
        passive[jstar] = true;

        // Inner loop: least squares on the passive set, stepping back when
        // a passive variable would go negative. Feasibility tolerances are
        // relative to the candidate solution's own scale (the gradient
        // tolerance above is *not* appropriate here: with unnormalized,
        // large-magnitude systems it would reject perfectly valid small
        // coefficients).
        loop {
            let idx: Vec<usize> = (0..cols).filter(|&j| passive[j]).collect();
            let z = lsq_subset(a, b, &idx);
            let z_tol = 1e-12 * linf(&z).max(1e-300);
            if z.iter().all(|&v| v > z_tol) {
                for (k, &j) in idx.iter().enumerate() {
                    x[j] = z[k];
                }
                for (j, xv) in x.iter_mut().enumerate() {
                    if !passive[j] {
                        *xv = 0.0;
                    }
                }
                break;
            }
            // Step toward z until the first passive variable hits zero.
            let mut alpha = f64::INFINITY;
            for (k, &j) in idx.iter().enumerate() {
                if z[k] <= z_tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                // Degenerate: drop the entering variable and give up on it.
                passive[jstar] = false;
                x[jstar] = 0.0;
                break;
            }
            for (k, &j) in idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= z_tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
    (x, iterations)
}

fn residual(a: &[Vec<f64>], x: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter()
        .zip(b)
        .map(|(row, &bi)| bi - row.iter().zip(x).map(|(aij, xj)| aij * xj).sum::<f64>())
        .collect()
}

fn frobenius(a: &[Vec<f64>]) -> f64 {
    a.iter()
        .flat_map(|r| r.iter())
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
}

fn linf(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Unconstrained least squares restricted to the columns in `idx`, via
/// normal equations with a tiny ridge for rank-deficient subsets.
fn lsq_subset(a: &[Vec<f64>], b: &[f64], idx: &[usize]) -> Vec<f64> {
    let k = idx.len();
    let rows = a.len();
    // G = AᵀA (k×k), c = Aᵀb (k).
    let mut g = vec![vec![0.0f64; k]; k];
    let mut c = vec![0.0f64; k];
    for i in 0..rows {
        for (p, &jp) in idx.iter().enumerate() {
            c[p] += a[i][jp] * b[i];
            for (q, &jq) in idx.iter().enumerate() {
                g[p][q] += a[i][jp] * a[i][jq];
            }
        }
    }
    let ridge = 1e-12 * (0..k).map(|p| g[p][p]).fold(0.0f64, f64::max).max(1e-300);
    for (p, row) in g.iter_mut().enumerate() {
        row[p] += ridge;
    }
    solve_dense(&mut g, &mut c);
    c
}

/// In-place Gaussian elimination with partial pivoting; solution left in `b`.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        if d.abs() < 1e-300 {
            continue; // singular direction: leave zero
        }
        for r in (col + 1)..n {
            let f = a[r][col] / d;
            if f == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // textbook elimination form
            for cc in col..n {
                a[r][cc] -= f * a[col][cc];
            }
            b[r] -= f * b[col];
        }
    }
    for col in (0..n).rev() {
        let d = a[col][col];
        if d.abs() < 1e-300 {
            b[col] = 0.0;
            continue;
        }
        let mut s = b[col];
        for cc in (col + 1)..n {
            s -= a[col][cc] * b[cc];
        }
        b[col] = s / d;
    }
}

/// Result of the full Siesta block fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Continuous (pre-rounding) repetition counts, length 11; satisfies
    /// `x ≥ 0` and `x[10] ≥ Σ x[0..9]` exactly.
    pub x: Vec<f64>,
    /// Weighted residual value of the objective (4) at `x`.
    pub objective: f64,
    /// Outer active-set iterations the NNLS solver took.
    pub iterations: u32,
}

/// Solve the paper's full problem:
/// `min Σᵢ (bᵢ·x − tᵢ)²/tᵢ²  s.t.  x ≥ 0, x₁₁ ≥ Σᵢ₌₁⁹ xᵢ`.
///
/// `b_matrix[i][j]` = metric `i` of one repetition of block `j` (6×11);
/// `t` = the six metric targets.
pub fn solve_block_fit(b_matrix: &[[f64; 11]; 6], t: &[f64; 6]) -> FitResult {
    solve_block_fit_opts(b_matrix, t, true)
}

/// [`solve_block_fit`] with the row normalization switchable — the ablation
/// for the paper's equation (3)→(4) step. Without normalization the
/// objective is plain `‖Bx − t‖²`, which the large-magnitude metrics (INS,
/// CYC) dominate.
pub fn solve_block_fit_opts(
    b_matrix: &[[f64; 11]; 6],
    t: &[f64; 6],
    row_normalize: bool,
) -> FitResult {
    // Row weights 1/tᵢ (the paper's relative-error normalization), clamped
    // at the hardware measurement floor: a target of a few dozen counts is
    // inside counter noise and must not dominate the objective. Zero
    // targets keep weight 1 so they still penalize spurious contributions.
    const NOISE_FLOOR: f64 = 256.0;
    let weights: [f64; 6] = std::array::from_fn(|i| {
        if row_normalize && t[i] > 1.0 {
            1.0 / t[i].max(NOISE_FLOOR)
        } else {
            1.0
        }
    });

    // Substituted system: y = (x₁..x₉, x₁₀, s); column j<9 ⇒ B_j + B₁₁,
    // column 9 ⇒ B₁₀, column 10 ⇒ B₁₁.
    let mut a = vec![vec![0.0f64; 11]; 6];
    let mut bb = vec![0.0f64; 6];
    for i in 0..6 {
        for j in 0..9 {
            a[i][j] = weights[i] * (b_matrix[i][j] + b_matrix[i][10]);
        }
        a[i][9] = weights[i] * b_matrix[i][9];
        a[i][10] = weights[i] * b_matrix[i][10];
        bb[i] = weights[i] * t[i];
    }
    let (y, iterations) = nnls_counted(&a, &bb);

    // Back-substitute.
    let mut x = vec![0.0f64; 11];
    x[..9].copy_from_slice(&y[..9]);
    x[9] = y[9];
    x[10] = y[10] + y[..9].iter().sum::<f64>();

    // Objective at x (original formulation).
    let mut objective = 0.0;
    for i in 0..6 {
        let pred: f64 = (0..11).map(|j| b_matrix[i][j] * x[j]).sum();
        let w = weights[i];
        objective += (w * (pred - t[i])).powi(2);
    }
    FitResult { x, objective, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|r| r.iter().zip(x).map(|(aij, xj)| aij * xj).sum())
            .collect()
    }

    #[test]
    fn nnls_recovers_nonnegative_solutions_exactly() {
        let a = vec![
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let x_true = [2.0, 3.0, 1.0];
        let b = matvec(&a, &x_true);
        let x = nnls(&a, &b);
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-8, "{x:?}");
        }
    }

    #[test]
    fn nnls_clamps_negative_directions() {
        // b = -a for a single column: best non-negative answer is 0.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![-1.0, -1.0];
        let x = nnls(&a, &b);
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn nnls_satisfies_kkt() {
        // Random overdetermined instance; verify KKT conditions.
        let mut seed = 7u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _case in 0..50 {
            let rows = 6;
            let cols = 4;
            let a: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| rnd() + 0.6).collect()).collect();
            let b: Vec<f64> = (0..rows).map(|_| rnd() * 3.0).collect();
            let x = nnls(&a, &b);
            assert!(x.iter().all(|&v| v >= 0.0));
            let r = residual(&a, &x, &b);
            for j in 0..cols {
                let grad_j: f64 = (0..rows).map(|i| a[i][j] * r[i]).sum();
                if x[j] > 1e-8 {
                    assert!(grad_j.abs() < 1e-6, "active gradient {grad_j}");
                } else {
                    assert!(grad_j < 1e-6, "inactive ascent direction {grad_j}");
                }
            }
        }
    }

    #[test]
    fn nnls_beats_random_feasible_points() {
        let a = vec![
            vec![3.0, 1.0, 0.5, 2.0],
            vec![1.0, 4.0, 1.5, 0.5],
            vec![0.2, 0.7, 5.0, 1.0],
        ];
        let b = vec![10.0, 12.0, 7.0];
        let x = nnls(&a, &b);
        let obj = |x: &[f64]| -> f64 {
            residual(&a, x, &b).iter().map(|r| r * r).sum()
        };
        let best = obj(&x);
        let mut seed = 99u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cand: Vec<f64> = (0..4)
                .map(|k| ((seed >> (8 * k)) & 0xff) as f64 / 40.0)
                .collect();
            assert!(obj(&cand) >= best - 1e-9);
        }
    }

    fn toy_b() -> [[f64; 11]; 6] {
        // Identity-ish synthetic block matrix: block j mostly drives
        // metric j%6 plus a bit of everything.
        let mut b = [[0.1f64; 11]; 6];
        for (j, col) in (0..11).enumerate() {
            b[j % 6][col] += 5.0 + j as f64;
        }
        b
    }

    #[test]
    fn block_fit_respects_cover_constraint() {
        let b = toy_b();
        let t = [1000.0, 800.0, 400.0, 50.0, 300.0, 20.0];
        let fit = solve_block_fit(&b, &t);
        assert!(fit.x.iter().all(|&v| v >= 0.0));
        let inner: f64 = fit.x[..9].iter().sum();
        assert!(
            fit.x[10] >= inner - 1e-9,
            "cover violated: x11={} < {}",
            fit.x[10],
            inner
        );
    }

    #[test]
    fn block_fit_reaches_achievable_targets() {
        // Build a target that is exactly a feasible combination, then check
        // the fit finds (something as good as) it.
        let b = toy_b();
        let x_true: [f64; 11] = [5.0, 0.0, 2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 0.0, 10.0, 20.0];
        let mut t = [0.0f64; 6];
        for i in 0..6 {
            t[i] = (0..11).map(|j| b[i][j] * x_true[j]).sum();
        }
        let fit = solve_block_fit(&b, &t);
        assert!(fit.objective < 1e-10, "objective {}", fit.objective);
    }

    #[test]
    fn zero_target_yields_zero_solution() {
        let b = toy_b();
        let fit = solve_block_fit(&b, &[0.0; 6]);
        assert!(fit.x.iter().all(|&v| v.abs() < 1e-9));
    }
}
