//! Computation-proxy synthesis (paper Section 2.4 and the scaling part of
//! Section 2.7).
//!
//! Replaying a computation event means executing code with the same six
//! hardware-counter characteristics as the original interval. This crate
//! provides:
//!
//! * [`blocks`] — the 11 pre-designed code blocks of Figure 2, both as
//!   cost-model kernels and as the C source emitted into proxy-apps;
//! * [`qp`] — the constrained quadratic program (row-normalized least
//!   squares, `x ≥ 0`, `x₁₁ ≥ Σᵢ₌₁⁹ xᵢ`), reduced to plain NNLS by variable
//!   substitution and solved with Lawson–Hanson active sets;
//! * [`ProxySearcher`] — micro-benchmarks the blocks on a machine and fits
//!   a [`ComputeProxy`] (integer repetition counts) per computation event;
//! * [`Minime`] — the MINIME baseline (iterative IPC/CMR/BMR ratio
//!   matching) used in the paper's Figures 4–5;
//! * [`shrink`] — the scaling-factor transformations for computation
//!   (divide counters) and communication (regression-fitted volumes).

//! ```
//! use siesta_perfmodel::{Machine, KernelDesc};
//! use siesta_proxy::ProxySearcher;
//!
//! let machine = Machine::default_eval();
//! let searcher = ProxySearcher::new(&machine); // micro-benchmark the blocks
//!
//! // A computation event measured at trace time (here: a dense stencil).
//! let target = machine.cpu().counters(&KernelDesc::stencil(50_000.0, 6.0, 1e6));
//! let proxy = searcher.search(&target);
//!
//! // The block combination reproduces the six counters closely.
//! assert!(searcher.error(&proxy, &target, &machine) < 0.1);
//! // And it satisfies the paper's wrapper-loop constraint.
//! let inner: u64 = proxy.reps[..9].iter().sum();
//! assert!(proxy.reps[10] >= inner);
//! ```

pub mod blocks;
pub mod minime;
pub mod qp;
pub mod search;
pub mod shrink;

pub use blocks::{blocks_for, BLOCKS_C_SOURCE, BLOCK_NAMES, NUM_BLOCKS};
pub use minime::Minime;
pub use qp::{nnls, solve_block_fit, solve_block_fit_opts, FitResult};
pub use search::{ComputeProxy, ProxySearcher};
pub use shrink::{shrink_counters, CommShrink};
