//! Scaling-factor shrinking (Section 2.7).
//!
//! Siesta can emit a proxy whose execution time is roughly `1/k` of the
//! original (the paper defaults to k=10):
//!
//! * **Computation**: divide the six counter targets by `k` before the
//!   block search — the proxy then does `1/k` of the work.
//! * **Communication**: fit a regression `t(v) = a + b·v` of blocking
//!   transfer time against volume (micro-benchmarked on the generation
//!   machine), then replace each volume `v` with the `v'` whose predicted
//!   time is `t(v)/k`. Latency does not shrink, so tiny messages stay put —
//!   exactly why Siesta-scaled errs more than plain Siesta in Figure 6.

use siesta_perfmodel::{CounterVec, NetParams};

/// Linear time-vs-volume model for blocking transfers.
#[derive(Debug, Clone, Copy)]
pub struct CommShrink {
    /// Fixed per-message cost (ns) — intercept.
    pub a: f64,
    /// Per-byte cost (ns/B) — slope.
    pub b: f64,
}

impl CommShrink {
    /// Least-squares fit over a size sweep of blocking deliveries on the
    /// cross-node path (the dominant one for multi-node runs).
    pub fn fit(net: &NetParams) -> CommShrink {
        let sizes: [usize; 10] =
            [0, 64, 512, 2048, 8192, 32768, 131072, 524288, 1 << 20, 4 << 20];
        let n = sizes.len() as f64;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &v in &sizes {
            let x = v as f64;
            let y = net.blocking_delivery_ns(v, false);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let a = (sy - b * sx) / n;
        CommShrink { a: a.max(0.0), b: b.max(1e-9) }
    }

    /// Predicted blocking time for a volume.
    pub fn predict_ns(&self, bytes: u64) -> f64 {
        self.a + self.b * bytes as f64
    }

    /// Volume whose predicted time is `1/factor` of the original volume's.
    /// Clamped at zero: once latency dominates, messages cannot shrink.
    pub fn shrink_bytes(&self, bytes: u64, factor: f64) -> u64 {
        if factor <= 1.0 || bytes == 0 {
            return bytes;
        }
        let target_t = self.predict_ns(bytes) / factor;
        let v = (target_t - self.a) / self.b;
        v.max(0.0).round() as u64
    }
}

/// Shrink a computation target by the scaling factor.
pub fn shrink_counters(target: &CounterVec, factor: f64) -> CounterVec {
    if factor <= 1.0 {
        *target
    } else {
        *target / factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn net() -> NetParams {
        Machine::new(platform_a(), MpiFlavor::OpenMpi).net
    }

    #[test]
    fn fit_tracks_the_underlying_model() {
        let net = net();
        let s = CommShrink::fit(&net);
        // Slope close to the inverse bandwidth.
        let inv_bw = 1.0 / net.bandwidth(false);
        assert!((s.b - inv_bw).abs() / inv_bw < 0.1, "slope {} vs {}", s.b, inv_bw);
        // Large-message prediction within 10%.
        let v = 2 << 20;
        let predicted = s.predict_ns(v);
        let actual = net.blocking_delivery_ns(v as usize, false);
        assert!((predicted - actual).abs() / actual < 0.1);
    }

    #[test]
    fn shrinking_large_messages_divides_time() {
        let s = CommShrink::fit(&net());
        let big = 8u64 << 20;
        let shrunk = s.shrink_bytes(big, 10.0);
        assert!(shrunk < big / 8, "{shrunk}");
        let ratio = s.predict_ns(shrunk) / s.predict_ns(big);
        assert!((ratio - 0.1).abs() < 0.03, "time ratio {ratio}");
    }

    #[test]
    fn latency_bound_messages_stop_shrinking() {
        let s = CommShrink::fit(&net());
        // A tiny message's time is all latency: shrinking clamps at ~zero
        // volume but its replay time cannot go below the intercept.
        let shrunk = s.shrink_bytes(64, 10.0);
        assert!(shrunk <= 64);
        assert!(s.predict_ns(shrunk) >= s.a * 0.99);
    }

    #[test]
    fn factor_one_is_identity() {
        let s = CommShrink::fit(&net());
        assert_eq!(s.shrink_bytes(12345, 1.0), 12345);
        let c = CounterVec::new(10.0, 20.0, 30.0, 1.0, 2.0, 3.0);
        assert_eq!(shrink_counters(&c, 1.0), c);
        assert_eq!(shrink_counters(&c, 10.0).ins, 1.0);
    }

    #[test]
    fn shrink_is_monotone_in_volume() {
        let s = CommShrink::fit(&net());
        let mut last = 0;
        for v in [0u64, 100, 10_000, 1 << 20, 16 << 20] {
            let sh = s.shrink_bytes(v, 10.0);
            assert!(sh >= last || sh == 0);
            last = sh.max(last);
        }
    }
}
