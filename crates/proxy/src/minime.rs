//! MINIME-style baseline synthesizer (Deniz et al., IEEE TC 2015).
//!
//! MINIME builds synthetic benchmarks by *iteratively adjusting* block
//! counts until three aggregate ratios match the original program:
//! instructions per cycle (IPC), cache miss rate (CMR), and branch
//! misprediction rate (BMR). Unlike Siesta's joint QP over six absolute
//! metrics, it tunes one knob per ratio greedily — which is exactly why the
//! paper's Figures 4–5 show Siesta fitting closer, especially on sequences
//! of heterogeneous events.

use siesta_perfmodel::{CounterVec, KernelDesc, Machine};

use crate::blocks::{blocks_for, NUM_BLOCKS};
use crate::search::ComputeProxy;

/// Iterative pattern-based synthesizer.
#[derive(Debug, Clone)]
pub struct Minime {
    blocks: [KernelDesc; NUM_BLOCKS],
}

/// Block roles used by the iterative tuner.
const ADD_BLOCK: usize = 1; // high-IPC filler (register adds, widest IPC headroom)
const DIV_BLOCK: usize = 3; // low-IPC filler
const MISS_BLOCK: usize = 6; // cache misses
const BRANCH_BLOCK: usize = 4; // mispredicting branches
const LOOP_BLOCK: usize = 10; // wrapper loop

impl Minime {
    pub fn new(machine: &Machine) -> Minime {
        Minime { blocks: blocks_for(machine.cpu()) }
    }

    /// Synthesize a proxy matching the *ratios* of `target`, scaled to its
    /// instruction count.
    pub fn synthesize(&self, target: &CounterVec, machine: &Machine) -> ComputeProxy {
        if target.total() <= 0.0 {
            return ComputeProxy::IDLE;
        }
        let cpu = machine.cpu();
        // Initial guess: all instructions from the add block.
        let mut reps = [0f64; NUM_BLOCKS];
        reps[ADD_BLOCK] = (target.ins / self.blocks[ADD_BLOCK].instructions()).max(1.0);
        reps[LOOP_BLOCK] = reps[ADD_BLOCK];

        // Additive evaluation: blocks run as separate sequential loops.
        let eval = |reps: &[f64; NUM_BLOCKS]| -> CounterVec {
            let mut acc = CounterVec::ZERO;
            for (b, &r) in self.blocks.iter().zip(reps.iter()) {
                if r >= 1.0 {
                    acc += cpu.counters(b) * r;
                }
            }
            acc
        };

        // Greedy ratio-matching iterations.
        for _ in 0..60 {
            let cur = eval(&reps);
            if cur.total() <= 0.0 {
                break;
            }
            // 1. Cache-miss rate: scale the miss block.
            let cmr_ratio = safe_ratio(target.cmr(), cur.cmr());
            reps[MISS_BLOCK] = (reps[MISS_BLOCK].max(0.5) * cmr_ratio).min(1e7);
            // 2. Branch-misprediction rate: scale the branchy block.
            let bmr_ratio = safe_ratio(target.bmr(), cur.bmr());
            reps[BRANCH_BLOCK] = (reps[BRANCH_BLOCK].max(0.5) * bmr_ratio).min(1e7);
            // 3. IPC: trade add block against divide block.
            let cur2 = eval(&reps);
            if cur2.ipc() > target.ipc() * 1.02 {
                // Too fast: move work into divides.
                let shift = reps[ADD_BLOCK] * 0.15;
                reps[ADD_BLOCK] -= shift;
                reps[DIV_BLOCK] += shift * self.blocks[ADD_BLOCK].instructions()
                    / self.blocks[DIV_BLOCK].instructions();
            } else if cur2.ipc() < target.ipc() * 0.98 && reps[DIV_BLOCK] > 0.5 {
                let shift = reps[DIV_BLOCK] * 0.15;
                reps[DIV_BLOCK] -= shift;
                reps[ADD_BLOCK] += shift * self.blocks[DIV_BLOCK].instructions()
                    / self.blocks[ADD_BLOCK].instructions();
            }
            // 4. Re-normalize total instructions to the target.
            let cur3 = eval(&reps);
            if cur3.ins > 0.0 {
                let scale = target.ins / cur3.ins;
                for r in reps.iter_mut() {
                    *r *= scale;
                }
            }
            reps[LOOP_BLOCK] = reps[..9].iter().sum::<f64>().max(1.0);
        }

        let mut out = [0u64; NUM_BLOCKS];
        for (o, r) in out.iter_mut().zip(reps.iter()) {
            *o = r.round().max(0.0) as u64;
        }
        ComputeProxy { reps: out }
    }

    pub fn blocks(&self) -> &[KernelDesc; NUM_BLOCKS] {
        &self.blocks
    }

    /// MINIME's own similarity measure: mean relative error over the three
    /// ratios (IPC, CMR, BMR).
    pub fn ratio_error(proxy_counters: &CounterVec, target: &CounterVec) -> f64 {
        let pairs = [
            (proxy_counters.ipc(), target.ipc()),
            (proxy_counters.cmr(), target.cmr()),
            (proxy_counters.bmr(), target.bmr()),
        ];
        let mut total = 0.0;
        let mut n = 0;
        for (p, t) in pairs {
            if t > 1e-12 {
                total += (p - t).abs() / t;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

fn safe_ratio(want: f64, have: f64) -> f64 {
    if have <= 1e-12 {
        if want <= 1e-12 {
            0.0 // neither wants the feature
        } else {
            4.0 // grow aggressively from nothing
        }
    } else {
        (want / have).clamp(0.25, 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ProxySearcher;
    use siesta_perfmodel::{platform_a, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn minime_matches_aggregate_ratios() {
        let m = machine();
        let mm = Minime::new(&m);
        let target = m.cpu().counters(&KernelDesc::stencil(100_000.0, 6.0, 4e6));
        let proxy = mm.synthesize(&target, &m);
        let got = proxy.counters_on(m.cpu(), mm.blocks());
        let err = Minime::ratio_error(&got, &target);
        assert!(err < 0.35, "ratio error {err}");
    }

    #[test]
    fn siesta_fits_six_metrics_better_than_minime() {
        // The Figure 4/5 headline: on full six-metric relative error, the
        // QP fit beats iterative ratio matching.
        let m = machine();
        let mm = Minime::new(&m);
        let searcher = ProxySearcher::new(&m);
        let kernels = [
            KernelDesc::stencil(80_000.0, 6.0, 2e6),
            KernelDesc::divide_heavy(30_000.0, 2.0, 1e6),
            KernelDesc::integer_scatter(60_000.0, 6e6),
        ];
        let mut siesta_total = 0.0;
        let mut minime_total = 0.0;
        for k in &kernels {
            let target = m.cpu().counters(k);
            let sp = searcher.search(&target);
            let mp = mm.synthesize(&target, &m);
            siesta_total += searcher.predict(&sp, &m).mean_relative_error(&target);
            minime_total += mp
                .counters_on(m.cpu(), mm.blocks())
                .mean_relative_error(&target);
        }
        assert!(
            siesta_total < minime_total,
            "siesta {siesta_total} not better than minime {minime_total}"
        );
    }

    #[test]
    fn zero_target_is_idle() {
        let m = machine();
        let mm = Minime::new(&m);
        assert_eq!(mm.synthesize(&CounterVec::ZERO, &m), ComputeProxy::IDLE);
    }
}
