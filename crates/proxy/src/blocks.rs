//! The 11 pre-designed code blocks of the paper's Figure 2.
//!
//! Each block is a tiny code snippet with a deliberately skewed performance
//! signature, so that non-negative integer combinations of them span a wide
//! range of (INS, CYC, LST, L1_DCM, BR_CN, MSP) targets:
//!
//! | # | snippet | purpose |
//! |---|---------|---------|
//! | 1 | `i1 = i2+i3` | simple add, high IPC |
//! | 2 | `i1 = i2+i3+i4+i5+i6` (registers) | adds with low LST/INS |
//! | 3 | `d1 = d1/d2` | divide, low IPC |
//! | 4 | `d1 = d2/d3/d4/d5/d6` (registers) | divides with low LST/INS |
//! | 5 | random-bit loop with add body | mispredictions at high IPC |
//! | 6 | random-bit loop with divide body | mispredictions at low IPC |
//! | 7 | stride-walk over 2×L1 | cache misses |
//! | 8 | stride-walk with adds | cache misses at high IPC |
//! | 9 | stride-walk with divides | cache misses at low IPC |
//! | 10 | empty counted loop | predictable branches |
//! | 11 | the wrapper loop around blocks 1–9 | loop overhead cover |
//!
//! Blocks 1–6 and 10–11 are per-iteration costs; blocks 7–9 contain their
//! own traversal loop, so one repetition is one full 2×L1 pass. The paper's
//! extra constraint `x₁₁ ≥ Σᵢ₌₁⁹ xᵢ` expresses that every occurrence of
//! blocks 1–9 executes inside one iteration of block 11's wrapper loop.

use siesta_perfmodel::{CpuModel, KernelDesc};

/// Number of pre-designed blocks.
pub const NUM_BLOCKS: usize = 11;

/// Index (0-based) of the wrapper-loop block (block 11).
pub const WRAPPER: usize = 10;

/// Human-readable names matching Figure 2's comments.
pub const BLOCK_NAMES: [&str; NUM_BLOCKS] = [
    "block1_add_high_ipc",
    "block2_add_low_lst",
    "block3_div_low_ipc",
    "block4_div_low_lst",
    "block5_msp_high_ipc",
    "block6_msp_low_ipc",
    "block7_cache_miss",
    "block8_cache_miss_high_ipc",
    "block9_cache_miss_low_ipc",
    "block10_branch_loop",
    "block11_wrapper_loop",
];

/// Unroll factor of the straight-line blocks 1–4: one occurrence inside the
/// wrapper loop is 32 copies of the snippet, as a compiler would emit.
/// Without unrolling, every occurrence would pay one wrapper branch per
/// handful of instructions, and low-branch-density targets (dense numeric
/// kernels run ~50+ instructions per branch) would be unreachable.
pub const UNROLL: f64 = 32.0;

/// Build the block kernels for a target CPU. Figure 2 sizes the walk by
/// the L1 cache; we use a 6×L1 span (192 KB on all three platforms):
/// large enough that the walk's miss density (`1 − L1/span ≈ 0.83`)
/// covers the most cache-hostile kernels (irregular gathers/scatters),
/// small enough to stay L2-resident like the blocked loops of real codes.
pub fn blocks_for(cpu: &CpuModel) -> [KernelDesc; NUM_BLOCKS] {
    let line = cpu.line_size;
    let span = 6.0 * cpu.l1_size;
    let walk_iters = span / line; // loop j over cacheline-strided slots
    [
        // block1: i1 = i2 + i3 (memory operands), unrolled.
        KernelDesc {
            int_alu: UNROLL,
            loads: 2.0 * UNROLL,
            stores: UNROLL,
            ..KernelDesc::ZERO
        },
        // block2: five-term register add chain, unrolled.
        KernelDesc {
            int_alu: 4.0 * UNROLL,
            loads: UNROLL,
            stores: UNROLL,
            ..KernelDesc::ZERO
        },
        // block3: d1 = d1 / d2, unrolled.
        KernelDesc {
            fp_div: UNROLL,
            loads: 2.0 * UNROLL,
            stores: UNROLL,
            ..KernelDesc::ZERO
        },
        // block4: four register divides, unrolled.
        KernelDesc {
            fp_div: 4.0 * UNROLL,
            loads: UNROLL,
            stores: UNROLL,
            ..KernelDesc::ZERO
        },
        // block5: 20 data-dependent branches on random bits, add body.
        KernelDesc {
            int_alu: 35.0,
            loads: 2.0,
            stores: 1.0,
            branches: 20.0,
            mispredict_rate: 0.5,
            ..KernelDesc::ZERO
        },
        // block6: same control, divide body (taken half the time).
        KernelDesc {
            int_alu: 26.0,
            fp_div: 10.0,
            loads: 2.0,
            stores: 1.0,
            branches: 20.0,
            mispredict_rate: 0.5,
            ..KernelDesc::ZERO
        },
        // block7: cache-line strided store walk over the span, the walk
        // loop unrolled 8× (one loop branch per eight line stores).
        KernelDesc {
            int_alu: walk_iters * 2.0,
            stores: walk_iters,
            branches: walk_iters / 8.0,
            mispredict_rate: 8.0 / walk_iters,
            working_set: span,
            stride: line,
            ..KernelDesc::ZERO
        },
        // block8: the walk with an add-heavy body.
        KernelDesc {
            int_alu: walk_iters * 5.0,
            stores: walk_iters,
            branches: walk_iters / 8.0,
            mispredict_rate: 8.0 / walk_iters,
            working_set: span,
            stride: line,
            ..KernelDesc::ZERO
        },
        // block9: the walk with a divide-heavy body.
        KernelDesc {
            int_alu: walk_iters * 2.0,
            fp_div: walk_iters * 2.0,
            stores: walk_iters,
            branches: walk_iters / 8.0,
            mispredict_rate: 8.0 / walk_iters,
            working_set: span,
            stride: line,
            ..KernelDesc::ZERO
        },
        // block10: empty counted loop (one predictable branch/iteration).
        KernelDesc {
            int_alu: 1.0,
            branches: 1.0,
            mispredict_rate: 0.001,
            ..KernelDesc::ZERO
        },
        // block11: the wrapper loop (counter + bound check + dispatch).
        KernelDesc {
            int_alu: 2.0,
            branches: 1.0,
            mispredict_rate: 0.001,
            ..KernelDesc::ZERO
        },
    ]
}

/// The C source of the blocks, emitted verbatim into generated proxy-apps
/// (Figure 2 of the paper).
pub const BLOCKS_C_SOURCE: &str = r#"/* Pre-designed computation blocks (Siesta, Figure 2).
 * Blocks 1-4 are emitted 32x unrolled per occurrence (REP32). */
#define REP4(X) X; X; X; X
#define REP16(X) REP4(X); REP4(X); REP4(X); REP4(X)
#define REP32(X) REP16(X); REP16(X)
static int i0, i1, i2, i3, i4;
static double d1 = 1.0, d2 = 1.000001, d3 = 1.000002, d4 = 1.000003, d5 = 1.000004, d6 = 1.000005;
static char a[6 * L1_CACHE_SIZE + CACHELINE_SIZE];

/* block1: simple add for high ipc */
#define BLOCK1() do { REP32(i1 = i2 + i3); } while (0)
/* block2: add with low LST/INS */
#define BLOCK2() do { register int r2 = i2, r3 = i3, r4 = i4; REP32(i1 = r2 + r3 + r4 + r2 + r3); } while (0)
/* block3: simple div for low ipc */
#define BLOCK3() do { REP32(d1 = d1 / d2); } while (0)
/* block4: div with low LST/INS */
#define BLOCK4() do { register double r2 = d2, r3 = d3, r4 = d4, r5 = d5, r6 = d6; REP32(d1 = r2 / r3 / r4 / r5 / r6); } while (0)
/* block5: msp with high ipc */
#define BLOCK5() do { \
    i4 = rand() % (1 << 20); \
    for (register long j = 0; j < 20; j++) \
        if ((i4 >> j) & 1) i1 = i2 + i3 + i4; \
} while (0)
/* block6: msp with low ipc */
#define BLOCK6() do { \
    i4 = rand() % (1 << 20); \
    for (register long j = 0; j < 20; j++) \
        if ((i4 >> j) & 1) d1 = d2 / d3 / d4; \
} while (0)
/* block7: get cache miss */
#define BLOCK7() do { \
    for (register long j = 0; j < 6 * L1_CACHE_SIZE / CACHELINE_SIZE; j++) { \
        a[i0] = (char)i1; i0 = (i0 + CACHELINE_SIZE) % (6 * L1_CACHE_SIZE); \
    } \
} while (0)
/* block8: cache miss with high ipc */
#define BLOCK8() do { \
    for (register long j = 0; j < 6 * L1_CACHE_SIZE / CACHELINE_SIZE; j++) { \
        a[i0] = (char)(i1 + i2 + i3 + i4); i0 = (i0 + CACHELINE_SIZE) % (6 * L1_CACHE_SIZE); \
    } \
} while (0)
/* block9: cache miss with low ipc */
#define BLOCK9() do { \
    for (register long j = 0; j < 6 * L1_CACHE_SIZE / CACHELINE_SIZE; j++) { \
        a[i0] = (char)(i1 / (i2 | 1) / (i3 | 1)); i0 = (i0 + CACHELINE_SIZE) % (6 * L1_CACHE_SIZE); \
    } \
} while (0)
/* block10: empty cycle for branch */
#define BLOCK10(n) do { for (volatile long j10 = 0; j10 < (n); j10++); } while (0)
/* block11: loop to achieve the linear combination of the other blocks */
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::platform_a;

    #[test]
    fn blocks_have_expected_skews() {
        let cpu = platform_a().cpu;
        let b = blocks_for(&cpu);
        let c: Vec<_> = b.iter().map(|k| cpu.counters(k)).collect();
        // Adds are high-IPC, divides low-IPC.
        assert!(c[0].ipc() > 2.0 * c[2].ipc());
        // block2 has lower LST/INS than block1.
        assert!(c[1].lst / c[1].ins < c[0].lst / c[0].ins);
        // block4 has lower LST/INS than block3.
        assert!(c[3].lst / c[3].ins < c[2].lst / c[2].ins);
        // Blocks 5–6 produce real mispredictions, 10–11 almost none.
        assert!(c[4].bmr() > 0.4);
        assert!(c[9].bmr() < 0.01);
        // Blocks 7–9 miss the cache; others basically don't.
        assert!(c[6].cmr() > 0.3, "block7 cmr {}", c[6].cmr());
        assert!(c[0].cmr() < 0.05);
        // block8 beats block9 on IPC.
        assert!(c[7].ipc() > c[8].ipc());
    }

    #[test]
    fn block_signatures_are_linearly_diverse() {
        // No block's counter vector is a scalar multiple of another's —
        // a sanity check that the search space is not degenerate.
        let cpu = platform_a().cpu;
        let b = blocks_for(&cpu);
        let sigs: Vec<[f64; 6]> = b.iter().map(|k| cpu.counters(k).as_array()).collect();
        for i in 0..NUM_BLOCKS {
            for j in (i + 1)..NUM_BLOCKS {
                let (a, c) = (&sigs[i], &sigs[j]);
                // Cosine similarity strictly below 1 − epsilon, except the
                // deliberately similar wrapper/branch loops 10 & 11.
                if (i, j) == (9, 10) {
                    continue;
                }
                let dot: f64 = a.iter().zip(c).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nc: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
                let cos = dot / (na * nc);
                assert!(cos < 0.999999, "blocks {i} and {j} are collinear (cos={cos})");
            }
        }
    }

    #[test]
    fn cache_blocks_scale_with_platform_l1() {
        use siesta_perfmodel::platform_b;
        let ba = blocks_for(&platform_a().cpu);
        let bb = blocks_for(&platform_b().cpu);
        // Same L1 on A and B (32 KB): identical walk footprints.
        assert_eq!(ba[6].working_set, bb[6].working_set);
        let mut big = platform_a().cpu;
        big.l1_size *= 2.0;
        assert!(blocks_for(&big)[6].working_set > ba[6].working_set);
    }

    #[test]
    fn c_source_mentions_every_block() {
        for i in 1..=11 {
            if i == 11 {
                assert!(BLOCKS_C_SOURCE.contains("block11"));
            } else {
                assert!(
                    BLOCKS_C_SOURCE.contains(&format!("BLOCK{i}")),
                    "missing BLOCK{i}"
                );
            }
        }
    }
}
