//! Replay a [`ProxyProgram`] on the virtual-time MPI runtime.
//!
//! This interpreter is the executable twin of the emitted C code: each rank
//! walks its merged main rule (filtering symbols by rank list), expands
//! non-terminals as function calls, and executes terminals — MPI calls with
//! decoded relative ranks and pool handles, or block-combination compute
//! proxies whose cost is evaluated on the *replay* machine's CPU model.
//! Because block costs are re-evaluated per machine, a proxy generated on
//! platform A speeds up or slows down on platform B the way the original
//! computation does — the paper's portability mechanism (Figures 8–9).

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;

use siesta_grammar::Sym;
use siesta_mpisim::{Communicator, Rank, Request, RunStats, World};
use siesta_perfmodel::{CounterVec, KernelDesc, Machine};
use siesta_proxy::{blocks_for, NUM_BLOCKS};
use siesta_trace::{abs_rank, CommEvent};

use crate::ir::{ProxyProgram, TerminalOp};

/// Execute the proxy program on `machine` and return run statistics.
///
/// The returned elapsed time is the proxy-app's execution time; multiply by
/// `program.scale` to get the reproduced (predicted) original time, as the
/// paper does for Siesta-scaled.
pub fn replay(program: &ProxyProgram, machine: Machine) -> RunStats {
    let blocks = blocks_for(&machine.platform.cpu);
    let blocks = &blocks;
    World::new(machine, program.nranks).run(move |mut rank| {
        Box::pin(async move {
            replay_rank(&mut rank, program, blocks).await;
            rank
        })
    })
}

struct ReplayCtx {
    comms: HashMap<u32, Communicator>,
    reqs: HashMap<u32, Request>,
}

async fn replay_rank(rank: &mut Rank, program: &ProxyProgram, blocks: &[KernelDesc; NUM_BLOCKS]) {
    let me = rank.rank() as u32;
    let main = match program.mains.iter().find(|m| m.ranks.contains(me)) {
        Some(m) => m,
        None => return,
    };
    let mut ctx = ReplayCtx { comms: HashMap::new(), reqs: HashMap::new() };
    ctx.comms.insert(0, rank.comm_world());
    // Clone the body reference walk: main body symbols in order.
    for ms in &main.body {
        if !ms.ranks.contains(me) {
            continue;
        }
        for _ in 0..ms.exp {
            exec_sym(rank, program, blocks, &mut ctx, ms.sym).await;
        }
    }
    debug_assert_eq!(rank.outstanding_requests(), 0, "proxy left requests pending");
}

/// Rule expansion is recursive, and async fns cannot recurse without
/// indirection, so each level returns a boxed future.
fn exec_sym<'a>(
    rank: &'a mut Rank,
    program: &'a ProxyProgram,
    blocks: &'a [KernelDesc; NUM_BLOCKS],
    ctx: &'a mut ReplayCtx,
    sym: Sym,
) -> Pin<Box<dyn Future<Output = ()> + Send + 'a>> {
    Box::pin(async move {
        match sym {
            Sym::T(t) => exec_terminal(rank, &program.terminals[t as usize], blocks, ctx).await,
            Sym::N(n) => {
                // Work around borrow rules by indexing; rule bodies are small.
                for i in 0..program.rules[n as usize].len() {
                    let rs = program.rules[n as usize][i];
                    for _ in 0..rs.exp {
                        exec_sym(rank, program, blocks, ctx, rs.sym).await;
                    }
                }
            }
        }
    })
}

async fn exec_terminal(
    rank: &mut Rank,
    op: &TerminalOp,
    blocks: &[KernelDesc; NUM_BLOCKS],
    ctx: &mut ReplayCtx,
) {
    match op {
        TerminalOp::Compute { proxy, .. } => {
            let exact = proxy.counters_on(rank.machine().cpu(), blocks);
            rank.compute_counters(&exact);
        }
        TerminalOp::Comm(event) => exec_comm(rank, event, ctx).await,
    }
}

fn comm_of(ctx: &ReplayCtx, id: u32) -> &Communicator {
    ctx.comms
        .get(&id)
        .expect("proxy used a communicator before creating it")
}

async fn exec_comm(rank: &mut Rank, event: &CommEvent, ctx: &mut ReplayCtx) {
    match event {
        CommEvent::Send { rel, tag, bytes, comm } => {
            let c = comm_of(ctx, *comm).clone();
            let dest = abs_rank(c.rank(), *rel, c.size());
            rank.send(&c, dest, *tag, *bytes as usize).await;
        }
        CommEvent::Recv { rel, tag, bytes, comm } => {
            let c = comm_of(ctx, *comm).clone();
            let src = abs_rank(c.rank(), *rel, c.size());
            rank.recv(&c, src, *tag, *bytes as usize).await;
        }
        CommEvent::Isend { rel, tag, bytes, comm, req } => {
            let c = comm_of(ctx, *comm).clone();
            let dest = abs_rank(c.rank(), *rel, c.size());
            let r = rank.isend(&c, dest, *tag, *bytes as usize);
            ctx.reqs.insert(*req, r);
        }
        CommEvent::Irecv { rel, tag, bytes, comm, req } => {
            let c = comm_of(ctx, *comm).clone();
            let src = abs_rank(c.rank(), *rel, c.size());
            let r = rank.irecv(&c, src, *tag, *bytes as usize);
            ctx.reqs.insert(*req, r);
        }
        CommEvent::Wait { req } => {
            let r = ctx.reqs.remove(req).expect("wait on unknown proxy request");
            rank.wait(r).await;
        }
        CommEvent::Waitall { reqs } => {
            let rs: Vec<Request> = reqs
                .iter()
                .map(|id| ctx.reqs.remove(id).expect("waitall on unknown proxy request"))
                .collect();
            rank.waitall(&rs).await;
        }
        CommEvent::Sendrecv {
            dest_rel,
            send_tag,
            send_bytes,
            src_rel,
            recv_tag,
            recv_bytes,
            comm,
        } => {
            let c = comm_of(ctx, *comm).clone();
            let dest = abs_rank(c.rank(), *dest_rel, c.size());
            let src = abs_rank(c.rank(), *src_rel, c.size());
            rank.sendrecv(
                &c,
                dest,
                *send_tag,
                *send_bytes as usize,
                src,
                *recv_tag,
                *recv_bytes as usize,
            )
            .await;
        }
        CommEvent::Barrier { comm } => {
            let c = comm_of(ctx, *comm).clone();
            rank.barrier(&c).await;
        }
        CommEvent::Bcast { comm, root, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.bcast(&c, *root as usize, *bytes as usize).await;
        }
        CommEvent::Reduce { comm, root, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.reduce(&c, *root as usize, *bytes as usize).await;
        }
        CommEvent::Allreduce { comm, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.allreduce(&c, *bytes as usize).await;
        }
        CommEvent::Allgather { comm, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.allgather(&c, *bytes as usize).await;
        }
        CommEvent::Alltoall { comm, bytes_per_peer } => {
            let c = comm_of(ctx, *comm).clone();
            rank.alltoall(&c, *bytes_per_peer as usize).await;
        }
        CommEvent::Alltoallv { comm, send_counts, recv_counts } => {
            let c = comm_of(ctx, *comm).clone();
            let sc: Vec<usize> = send_counts.iter().map(|&v| v as usize).collect();
            let rc: Vec<usize> = recv_counts.iter().map(|&v| v as usize).collect();
            rank.alltoallv(&c, &sc, &rc).await;
        }
        CommEvent::Gather { comm, root, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.gather(&c, *root as usize, *bytes as usize).await;
        }
        CommEvent::Scatter { comm, root, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.scatter(&c, *root as usize, *bytes as usize).await;
        }
        CommEvent::Gatherv { comm, root, counts } => {
            let c = comm_of(ctx, *comm).clone();
            let counts: Vec<usize> = counts.iter().map(|&v| v as usize).collect();
            rank.gatherv(&c, *root as usize, &counts).await;
        }
        CommEvent::Scatterv { comm, root, counts } => {
            let c = comm_of(ctx, *comm).clone();
            let counts: Vec<usize> = counts.iter().map(|&v| v as usize).collect();
            rank.scatterv(&c, *root as usize, &counts).await;
        }
        CommEvent::Scan { comm, bytes } => {
            let c = comm_of(ctx, *comm).clone();
            rank.scan(&c, *bytes as usize).await;
        }
        CommEvent::ReduceScatterBlock { comm, bytes_per_rank } => {
            let c = comm_of(ctx, *comm).clone();
            rank.reduce_scatter_block(&c, *bytes_per_rank as usize).await;
        }
        CommEvent::CommSplit { parent, color, key, result } => {
            let p = comm_of(ctx, *parent).clone();
            let created = rank.comm_split(&p, *color, *key).await;
            match (result, created) {
                (Some(id), Some(c)) => {
                    ctx.comms.insert(*id, c);
                }
                (None, None) => {}
                (r, c) => panic!(
                    "split outcome mismatch at replay: recorded {r:?}, got {}",
                    c.is_some()
                ),
            }
        }
        CommEvent::CommDup { parent, result } => {
            let p = comm_of(ctx, *parent).clone();
            let c = rank.comm_dup(&p).await;
            ctx.comms.insert(*result, c);
        }
        CommEvent::CommFree { comm } => {
            let c = ctx.comms.remove(comm).expect("free of unknown proxy communicator");
            rank.comm_free(c);
        }
    }
}

/// Diagnostic: total compute-proxy counters the program will produce per
/// rank on a machine (noise-free), for error analysis without running.
pub fn predicted_compute_counters(
    program: &ProxyProgram,
    machine: &Machine,
    rank: u32,
) -> CounterVec {
    let blocks = blocks_for(&machine.platform.cpu);
    let mut acc = CounterVec::ZERO;
    for t in program.expand_for_rank(rank) {
        if let TerminalOp::Compute { proxy, .. } = &program.terminals[t as usize] {
            acc += proxy.counters_on(&machine.platform.cpu, &blocks);
        }
    }
    acc
}
