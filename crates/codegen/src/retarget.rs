//! Scale retargeting — an implementation of the paper's future-work note.
//!
//! The paper's conclusion: "a manually developed proxy-app can accept
//! different input arguments and run with different parallel scales, while
//! Siesta can only reproduce program behaviors from a certain execution
//! path with fixed input and scale."
//!
//! This module lifts the *scale* restriction for the class of programs
//! where it is sound: fully SPMD proxies (one merged main rule, every
//! symbol executed by every rank) whose communication is **scale-free** —
//! partners are expressed as small relative offsets (ring/halo patterns
//! wrap at any size) and collectives carry per-rank volumes. Retargeting
//! such a proxy to a different rank count reproduces the program's *weak
//! scaling*: per-rank work and per-neighbor volumes stay fixed while the
//! job grows. Anything rank-count-specific (rank-dependent branches,
//! offsets beyond the new size, per-rank count vectors with unequal
//! entries, communicator splits) is rejected rather than silently wrong.

use siesta_grammar::RankSet;
use siesta_trace::CommEvent;

use crate::ir::{ProxyProgram, TerminalOp};

/// Why a proxy cannot be retargeted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetargetError {
    /// More than one merged main: ranks behave differently.
    MultipleMains,
    /// A main-rule symbol is executed by a strict subset of ranks.
    RankDependentBranch,
    /// A point-to-point offset does not fit in the new world.
    OffsetOutOfRange { rel: u32, old: usize, new: usize },
    /// A per-rank count vector is not uniform, so its shape at another
    /// scale is unknowable.
    NonUniformCounts(&'static str),
    /// Communicator management encodes rank-count-specific grouping.
    CommManagement,
    /// The new size is not a valid world.
    BadSize(usize),
}

impl std::fmt::Display for RetargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetargetError::MultipleMains => {
                write!(f, "proxy has multiple rank classes (not fully SPMD)")
            }
            RetargetError::RankDependentBranch => {
                write!(f, "proxy branches on rank identity")
            }
            RetargetError::OffsetOutOfRange { rel, old, new } => write!(
                f,
                "relative offset {rel} (of {old} ranks) does not fit in {new} ranks"
            ),
            RetargetError::NonUniformCounts(op) => {
                write!(f, "{op} uses non-uniform per-rank counts")
            }
            RetargetError::CommManagement => {
                write!(f, "proxy manages communicators (rank-count-specific groups)")
            }
            RetargetError::BadSize(n) => write!(f, "cannot retarget to {n} ranks"),
        }
    }
}

impl std::error::Error for RetargetError {}

/// Interpret a stored relative rank as a signed offset (`+1` right
/// neighbor, `−1` left neighbor, ...), the form that is scale-free.
fn signed_offset(rel: u32, size: usize) -> i64 {
    let rel = rel as i64;
    let size = size as i64;
    if rel * 2 <= size {
        rel
    } else {
        rel - size
    }
}

fn reencode(off: i64, new_size: usize) -> u32 {
    let n = new_size as i64;
    (((off % n) + n) % n) as u32
}

/// Retarget `program` to `new_nranks`, or explain why that is unsound.
pub fn retarget(program: &ProxyProgram, new_nranks: usize) -> Result<ProxyProgram, RetargetError> {
    if new_nranks < 2 {
        return Err(RetargetError::BadSize(new_nranks));
    }
    let old = program.nranks;
    // Fully SPMD check.
    if program.mains.len() != 1 {
        return Err(RetargetError::MultipleMains);
    }
    let everyone = RankSet::all(old as u32);
    let main = &program.mains[0];
    if main.ranks != everyone {
        return Err(RetargetError::MultipleMains);
    }
    if main.body.iter().any(|ms| ms.ranks != everyone) {
        return Err(RetargetError::RankDependentBranch);
    }

    // Rewrite terminals.
    let map_rel = |rel: u32| -> Result<u32, RetargetError> {
        let off = signed_offset(rel, old);
        if off == 0 || off.unsigned_abs() as usize >= new_nranks {
            return Err(RetargetError::OffsetOutOfRange { rel, old, new: new_nranks });
        }
        Ok(reencode(off, new_nranks))
    };
    let uniform = |counts: &[u64], op: &'static str| -> Result<Vec<u64>, RetargetError> {
        match counts.first() {
            None => Ok(vec![]),
            Some(&v) if counts.iter().all(|&c| c == v) => Ok(vec![v; new_nranks]),
            _ => Err(RetargetError::NonUniformCounts(op)),
        }
    };
    let mut terminals = Vec::with_capacity(program.terminals.len());
    for t in &program.terminals {
        let mapped = match t {
            TerminalOp::Compute { .. } => t.clone(),
            TerminalOp::Comm(e) => TerminalOp::Comm(match e {
                CommEvent::Send { rel, tag, bytes, comm } => {
                    CommEvent::Send { rel: map_rel(*rel)?, tag: *tag, bytes: *bytes, comm: *comm }
                }
                CommEvent::Recv { rel, tag, bytes, comm } => {
                    CommEvent::Recv { rel: map_rel(*rel)?, tag: *tag, bytes: *bytes, comm: *comm }
                }
                CommEvent::Isend { rel, tag, bytes, comm, req } => CommEvent::Isend {
                    rel: map_rel(*rel)?,
                    tag: *tag,
                    bytes: *bytes,
                    comm: *comm,
                    req: *req,
                },
                CommEvent::Irecv { rel, tag, bytes, comm, req } => CommEvent::Irecv {
                    rel: map_rel(*rel)?,
                    tag: *tag,
                    bytes: *bytes,
                    comm: *comm,
                    req: *req,
                },
                CommEvent::Sendrecv {
                    dest_rel,
                    send_tag,
                    send_bytes,
                    src_rel,
                    recv_tag,
                    recv_bytes,
                    comm,
                } => CommEvent::Sendrecv {
                    dest_rel: map_rel(*dest_rel)?,
                    send_tag: *send_tag,
                    send_bytes: *send_bytes,
                    src_rel: map_rel(*src_rel)?,
                    recv_tag: *recv_tag,
                    recv_bytes: *recv_bytes,
                    comm: *comm,
                },
                CommEvent::Alltoallv { comm, send_counts, recv_counts } => {
                    CommEvent::Alltoallv {
                        comm: *comm,
                        send_counts: uniform(send_counts, "MPI_Alltoallv")?,
                        recv_counts: uniform(recv_counts, "MPI_Alltoallv")?,
                    }
                }
                CommEvent::Gatherv { comm, root, counts } => CommEvent::Gatherv {
                    comm: *comm,
                    root: *root,
                    counts: uniform(counts, "MPI_Gatherv")?,
                },
                CommEvent::Scatterv { comm, root, counts } => CommEvent::Scatterv {
                    comm: *comm,
                    root: *root,
                    counts: uniform(counts, "MPI_Scatterv")?,
                },
                CommEvent::CommSplit { .. }
                | CommEvent::CommDup { .. }
                | CommEvent::CommFree { .. } => return Err(RetargetError::CommManagement),
                // Size-independent collectives pass through. Roots must
                // exist in the smaller world.
                CommEvent::Bcast { root, .. }
                | CommEvent::Reduce { root, .. }
                | CommEvent::Gather { root, .. }
                | CommEvent::Scatter { root, .. }
                    if *root as usize >= new_nranks =>
                {
                    return Err(RetargetError::BadSize(new_nranks));
                }
                other => other.clone(),
            }),
        };
        terminals.push(mapped);
    }

    // Rules are over terminals only — unchanged. The main rule gets the
    // new full-world rank set on every symbol.
    let new_everyone = RankSet::all(new_nranks as u32);
    let body = main
        .body
        .iter()
        .map(|ms| siesta_grammar::MainSym {
            sym: ms.sym,
            exp: ms.exp,
            ranks: new_everyone.clone(),
        })
        .collect();

    Ok(ProxyProgram {
        nranks: new_nranks,
        terminals,
        rules: program.rules.clone(),
        mains: vec![siesta_grammar::MergedMain { ranks: new_everyone, body }],
        scale: program.scale,
        generated_on: format!("{} (retargeted {}→{} ranks)", program.generated_on, old, new_nranks),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_grammar::{MainSym, MergedMain, RSym, Sym};
    use siesta_perfmodel::CounterVec;
    use siesta_proxy::ComputeProxy;

    fn spmd_ring(nranks: usize) -> ProxyProgram {
        let everyone = RankSet::all(nranks as u32);
        ProxyProgram {
            nranks,
            terminals: vec![
                TerminalOp::Comm(CommEvent::Sendrecv {
                    dest_rel: 1,
                    send_tag: 0,
                    send_bytes: 4096,
                    src_rel: (nranks - 1) as u32, // −1: left neighbor
                    recv_tag: 0,
                    recv_bytes: 4096,
                    comm: 0,
                }),
                TerminalOp::Compute {
                    proxy: ComputeProxy::IDLE,
                    target: CounterVec::ZERO,
                },
                TerminalOp::Comm(CommEvent::Allreduce { comm: 0, bytes: 8 }),
            ],
            rules: vec![vec![
                RSym::new(Sym::T(0), 1),
                RSym::new(Sym::T(1), 1),
                RSym::new(Sym::T(2), 1),
            ]],
            mains: vec![MergedMain {
                ranks: everyone.clone(),
                body: vec![MainSym { sym: Sym::N(0), exp: 20, ranks: everyone }],
            }],
            scale: 1.0,
            generated_on: "A/openmpi".into(),
        }
    }

    #[test]
    fn ring_proxy_retargets_and_offsets_reencode() {
        let p8 = spmd_ring(8);
        let p16 = retarget(&p8, 16).expect("retargetable");
        assert_eq!(p16.nranks, 16);
        match &p16.terminals[0] {
            TerminalOp::Comm(CommEvent::Sendrecv { dest_rel, src_rel, .. }) => {
                assert_eq!(*dest_rel, 1);
                assert_eq!(*src_rel, 15); // −1 mod 16
            }
            other => panic!("unexpected {other:?}"),
        }
        // Shrinking works too.
        let p4 = retarget(&p8, 4).expect("shrinkable");
        match &p4.terminals[0] {
            TerminalOp::Comm(CommEvent::Sendrecv { src_rel, .. }) => assert_eq!(*src_rel, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rank_dependent_branches_are_rejected() {
        let mut p = spmd_ring(8);
        p.mains[0].body[0].ranks = RankSet::from_iter(0..4);
        assert_eq!(retarget(&p, 16), Err(RetargetError::RankDependentBranch));
    }

    #[test]
    fn oversized_offsets_are_rejected() {
        let mut p = spmd_ring(8);
        if let TerminalOp::Comm(CommEvent::Sendrecv { dest_rel, .. }) = &mut p.terminals[0] {
            *dest_rel = 3; // offset +3 does not fit in a 3-rank world
        }
        assert!(matches!(
            retarget(&p, 3),
            Err(RetargetError::OffsetOutOfRange { .. })
        ));
        assert!(retarget(&p, 16).is_ok());
    }

    #[test]
    fn comm_management_is_rejected() {
        let mut p = spmd_ring(8);
        p.terminals.push(TerminalOp::Comm(CommEvent::CommDup { parent: 0, result: 1 }));
        assert_eq!(retarget(&p, 16), Err(RetargetError::CommManagement));
    }

    #[test]
    fn nonuniform_counts_are_rejected_uniform_resized() {
        let mut p = spmd_ring(8);
        p.terminals.push(TerminalOp::Comm(CommEvent::Alltoallv {
            comm: 0,
            send_counts: vec![64; 8],
            recv_counts: vec![64; 8],
        }));
        let p16 = retarget(&p, 16).expect("uniform counts resize");
        match &p16.terminals[3] {
            TerminalOp::Comm(CommEvent::Alltoallv { send_counts, .. }) => {
                assert_eq!(send_counts, &vec![64u64; 16]);
            }
            other => panic!("unexpected {other:?}"),
        }
        if let TerminalOp::Comm(CommEvent::Alltoallv { send_counts, .. }) =
            &mut p.terminals[3]
        {
            send_counts[2] = 128;
        }
        assert_eq!(
            retarget(&p, 16),
            Err(RetargetError::NonUniformCounts("MPI_Alltoallv"))
        );
    }

    #[test]
    fn retargeted_proxy_replays_at_the_new_scale() {
        use crate::replay::replay;
        use siesta_perfmodel::Machine;
        let p8 = spmd_ring(8);
        let m = Machine::default_eval();
        let p16 = retarget(&p8, 16).unwrap();
        let s16 = replay(&p16, m);
        assert_eq!(s16.per_rank.len(), 16);
        assert!(s16.elapsed_ns() > 0.0);
        // Everyone executes the same 20 iterations (SPMD preserved).
        let c0 = s16.per_rank[0].app_calls;
        assert!(s16.per_rank.iter().all(|r| r.app_calls == c0));
    }
}
