//! Binary serialization of [`ProxyProgram`]s (`.siesta` files).
//!
//! A generated proxy-app is an artifact users ship around: generate once on
//! the traced system, replay or emit C anywhere. The format is a simple
//! little-endian tag-length-value encoding — no external format crates —
//! with a magic header and version byte for forward compatibility.

use siesta_grammar::{MainSym, MergedMain, RSym, RankSet, Sym};
use siesta_perfmodel::CounterVec;
use siesta_proxy::{ComputeProxy, NUM_BLOCKS};
use siesta_trace::wire::{get_event, put_event, Reader, Writer};

use crate::ir::{ProxyProgram, TerminalOp};

/// Re-exported so `codegen::wire::WireError` keeps working.
pub use siesta_trace::wire::WireError;

const MAGIC: &[u8; 8] = b"SIESTA1\0";

fn put_sym(w: &mut Writer, s: Sym) {
    match s {
        Sym::T(t) => {
            w.u8(0);
            w.u32(t);
        }
        Sym::N(n) => {
            w.u8(1);
            w.u32(n);
        }
    }
}

fn get_sym(r: &mut Reader) -> Result<Sym, WireError> {
    match r.u8()? {
        0 => Ok(Sym::T(r.u32()?)),
        1 => Ok(Sym::N(r.u32()?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_rankset(w: &mut Writer, s: &RankSet) {
    let ranges = s.ranges();
    w.u32(ranges.len() as u32);
    for &(a, b) in ranges {
        w.u32(a);
        w.u32(b);
    }
}

fn get_rankset(r: &mut Reader) -> Result<RankSet, WireError> {
    let n = r.u32()? as usize;
    let mut items = Vec::new();
    for _ in 0..n {
        let a = r.u32()?;
        let b = r.u32()?;
        items.extend(a..=b);
    }
    Ok(RankSet::from_iter(items))
}

// ---------------------------------------------------------------------
// Whole-program encode/decode
// ---------------------------------------------------------------------

/// Serialize a proxy program to bytes.
pub fn to_bytes(p: &ProxyProgram) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u8(1); // version
    w.u32(p.nranks as u32);
    w.f64(p.scale);
    w.str(&p.generated_on);

    w.u32(p.terminals.len() as u32);
    for t in &p.terminals {
        match t {
            TerminalOp::Comm(e) => {
                w.u8(0);
                put_event(&mut w, e);
            }
            TerminalOp::Compute { proxy, target } => {
                w.u8(1);
                for rep in proxy.reps {
                    w.u64(rep);
                }
                for v in target.as_array() {
                    w.f64(v);
                }
            }
        }
    }

    w.u32(p.rules.len() as u32);
    for body in &p.rules {
        w.u32(body.len() as u32);
        for rs in body {
            put_sym(&mut w, rs.sym);
            w.u64(rs.exp);
        }
    }

    w.u32(p.mains.len() as u32);
    for m in &p.mains {
        put_rankset(&mut w, &m.ranks);
        w.u32(m.body.len() as u32);
        for ms in &m.body {
            put_sym(&mut w, ms.sym);
            w.u64(ms.exp);
            put_rankset(&mut w, &ms.ranks);
        }
    }
    w.buf
}

/// Deserialize a proxy program.
pub fn from_bytes(bytes: &[u8]) -> Result<ProxyProgram, WireError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != 1 {
        return Err(WireError::UnsupportedVersion(version));
    }
    let nranks = r.u32()? as usize;
    let scale = r.f64()?;
    let generated_on = r.str()?;

    let n_terminals = r.u32()? as usize;
    let mut terminals = Vec::with_capacity(n_terminals);
    for _ in 0..n_terminals {
        match r.u8()? {
            0 => terminals.push(TerminalOp::Comm(get_event(&mut r)?)),
            1 => {
                let mut reps = [0u64; NUM_BLOCKS];
                for rep in reps.iter_mut() {
                    *rep = r.u64()?;
                }
                let mut arr = [0.0f64; 6];
                for v in arr.iter_mut() {
                    *v = r.f64()?;
                }
                terminals.push(TerminalOp::Compute {
                    proxy: ComputeProxy { reps },
                    target: CounterVec::from_array(arr),
                });
            }
            t => return Err(WireError::BadTag(t)),
        }
    }

    let n_rules = r.u32()? as usize;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let len = r.u32()? as usize;
        let mut body = Vec::with_capacity(len);
        for _ in 0..len {
            let sym = get_sym(&mut r)?;
            let exp = r.u64()?;
            body.push(RSym::new(sym, exp));
        }
        rules.push(body);
    }

    let n_mains = r.u32()? as usize;
    let mut mains = Vec::with_capacity(n_mains);
    for _ in 0..n_mains {
        let ranks = get_rankset(&mut r)?;
        let len = r.u32()? as usize;
        let mut body = Vec::with_capacity(len);
        for _ in 0..len {
            let sym = get_sym(&mut r)?;
            let exp = r.u64()?;
            let sym_ranks = get_rankset(&mut r)?;
            body.push(MainSym { sym, exp, ranks: sym_ranks });
        }
        mains.push(MergedMain { ranks, body });
    }

    Ok(ProxyProgram { nranks, terminals, rules, mains, scale, generated_on })
}

/// Save to a file.
pub fn save(p: &ProxyProgram, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(p))
}

/// Load from a file.
pub fn load(path: &std::path::Path) -> Result<ProxyProgram, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    Ok(from_bytes(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_trace::CommEvent;

    fn toy() -> ProxyProgram {
        let mut proxy = ComputeProxy::IDLE;
        proxy.reps = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 55];
        ProxyProgram {
            nranks: 4,
            terminals: vec![
                TerminalOp::Comm(CommEvent::Send { rel: 1, tag: 7, bytes: 1024, comm: 0 }),
                TerminalOp::Compute {
                    proxy,
                    target: CounterVec::new(1.5, 2.5, 3.5, 4.5, 5.5, 6.5),
                },
                TerminalOp::Comm(CommEvent::Alltoallv {
                    comm: 0,
                    send_counts: vec![1, 2, 3, 4],
                    recv_counts: vec![4, 3, 2, 1],
                }),
                TerminalOp::Comm(CommEvent::CommSplit {
                    parent: 0,
                    color: -1,
                    key: 3,
                    result: None,
                }),
                TerminalOp::Comm(CommEvent::Waitall { reqs: vec![0, 1, 2] }),
            ],
            rules: vec![vec![RSym::new(Sym::T(1), 2), RSym::new(Sym::T(0), 1)]],
            mains: vec![MergedMain {
                ranks: RankSet::all(4),
                body: vec![
                    MainSym { sym: Sym::N(0), exp: 10, ranks: RankSet::all(4) },
                    MainSym { sym: Sym::T(2), exp: 1, ranks: RankSet::from_iter([0, 2]) },
                ],
            }],
            scale: 10.0,
            generated_on: "A/openmpi".into(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = toy();
        let bytes = to_bytes(&p);
        let q = from_bytes(&bytes).expect("decode");
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(from_bytes(b"not a siesta file"), Err(WireError::BadMagic));
        let bytes = to_bytes(&toy());
        for cut in [8usize, 9, 20, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_future_versions() {
        let mut bytes = to_bytes(&toy());
        bytes[8] = 9;
        assert_eq!(from_bytes(&bytes), Err(WireError::UnsupportedVersion(9)));
    }

    #[test]
    fn file_round_trip() {
        let p = toy();
        let dir = std::env::temp_dir();
        let path = dir.join("siesta_wire_test.siesta");
        save(&p, &path).unwrap();
        let q = load(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(&path).ok();
    }
}
