//! The proxy-app intermediate representation.
//!
//! A [`ProxyProgram`] is the executable form of a synthesized proxy-app:
//! the merged grammar (rules plus rank-listed main rules) over a terminal
//! table whose entries are directly replayable operations — normalized MPI
//! calls and block-combination computation proxies. The same structure
//! drives both the C source emitter ([`crate::c_emit`]) and the virtual-
//! machine replayer ([`crate::replay()`](crate::replay::replay)), so what we measure is exactly what
//! we emit.

use siesta_grammar::{MergedMain, RSym};
use siesta_perfmodel::CounterVec;
use siesta_proxy::ComputeProxy;
use siesta_trace::CommEvent;

/// One replayable terminal.
#[derive(Debug, Clone, PartialEq)]
pub enum TerminalOp {
    /// A communication event (volumes already scaled if shrinking).
    Comm(CommEvent),
    /// A computation proxy plus the counter target it was fit to.
    Compute { proxy: ComputeProxy, target: CounterVec },
}

impl TerminalOp {
    pub fn is_comm(&self) -> bool {
        matches!(self, TerminalOp::Comm(_))
    }
}

/// A complete synthesized proxy application.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyProgram {
    pub nranks: usize,
    /// Terminal table; `Sym::T(i)` indexes here.
    pub terminals: Vec<TerminalOp>,
    /// Non-terminal table; `Sym::N(i)` indexes here.
    pub rules: Vec<Vec<RSym>>,
    /// Merged main rules with per-symbol rank lists.
    pub mains: Vec<MergedMain>,
    /// Scaling factor the proxy was generated with (1 = unscaled).
    pub scale: f64,
    /// Label of the machine the proxy was generated on (provenance).
    pub generated_on: String,
}

impl ProxyProgram {
    /// Total grammar symbols (rules + mains) — proportional to code size.
    pub fn grammar_size(&self) -> usize {
        self.rules.iter().map(|r| r.len()).sum::<usize>()
            + self.mains.iter().map(|m| m.body.len()).sum::<usize>()
    }

    /// Communication terminals count.
    pub fn comm_terminals(&self) -> usize {
        self.terminals.iter().filter(|t| t.is_comm()).count()
    }

    /// Computation terminals count.
    pub fn compute_terminals(&self) -> usize {
        self.terminals.len() - self.comm_terminals()
    }

    /// The flat terminal-id sequence rank `rank` executes (losslessness
    /// witness against the original trace).
    pub fn expand_for_rank(&self, rank: u32) -> Vec<u32> {
        let main = match self.mains.iter().find(|m| m.ranks.contains(rank)) {
            Some(m) => m,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for ms in &main.body {
            if !ms.ranks.contains(rank) {
                continue;
            }
            for _ in 0..ms.exp {
                self.expand_sym_into(ms.sym, &mut out);
            }
        }
        out
    }

    fn expand_sym_into(&self, sym: siesta_grammar::Sym, out: &mut Vec<u32>) {
        match sym {
            siesta_grammar::Sym::T(t) => out.push(t),
            siesta_grammar::Sym::N(n) => {
                for rs in &self.rules[n as usize] {
                    for _ in 0..rs.exp {
                        self.expand_sym_into(rs.sym, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_grammar::{MainSym, RankSet, Sym};
    use siesta_proxy::ComputeProxy;

    fn toy() -> ProxyProgram {
        // terminals: 0=comm barrier, 1=compute
        // rule 0: [t0 t1^2]
        // main: (R0^3){ranks 0-1} (t0){rank 1}
        ProxyProgram {
            nranks: 2,
            terminals: vec![
                TerminalOp::Comm(CommEvent::Barrier { comm: 0 }),
                TerminalOp::Compute { proxy: ComputeProxy::IDLE, target: CounterVec::ZERO },
            ],
            rules: vec![vec![
                RSym::new(Sym::T(0), 1),
                RSym::new(Sym::T(1), 2),
            ]],
            mains: vec![MergedMain {
                ranks: RankSet::all(2),
                body: vec![
                    MainSym { sym: Sym::N(0), exp: 3, ranks: RankSet::all(2) },
                    MainSym { sym: Sym::T(0), exp: 1, ranks: RankSet::single(1) },
                ],
            }],
            scale: 1.0,
            generated_on: "A/openmpi".to_string(),
        }
    }

    #[test]
    fn expansion_respects_rank_lists() {
        let p = toy();
        assert_eq!(p.expand_for_rank(0), vec![0, 1, 1, 0, 1, 1, 0, 1, 1]);
        assert_eq!(p.expand_for_rank(1), vec![0, 1, 1, 0, 1, 1, 0, 1, 1, 0]);
        assert!(p.expand_for_rank(2).is_empty());
    }

    #[test]
    fn counting_helpers() {
        let p = toy();
        assert_eq!(p.comm_terminals(), 1);
        assert_eq!(p.compute_terminals(), 1);
        assert_eq!(p.grammar_size(), 4);
    }
}
