//! Proxy-app code generation and replay (paper Section 2.7).
//!
//! The output of the Siesta pipeline is a [`ProxyProgram`]: the merged
//! grammar over a table of replayable terminals. This crate turns it into
//! two equivalent artifacts:
//!
//! * [`emit_c`] — a self-contained C program (MPI calls + the Figure 2
//!   block macros + rank-list branch statements), the artifact the paper
//!   ships to users;
//! * [`replay()`](replay::replay) — direct execution of the same structure on the
//!   virtual-time MPI runtime, which is how this reproduction *measures*
//!   proxy-app performance (we have no real cluster to compile the C on —
//!   the interpreter and the emitter walk identical structures).

pub mod c_emit;
pub mod ir;
pub mod replay;
pub mod retarget;
pub mod wire;

pub use c_emit::emit_c;
pub use ir::{ProxyProgram, TerminalOp};
pub use replay::{predicted_compute_counters, replay};
pub use retarget::{retarget, RetargetError};
pub use wire::{from_bytes, to_bytes, WireError};
