//! Property-based round-trip tests for the `.siesta` wire format, over
//! randomized proxy programs.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_codegen::{emit_c, from_bytes, to_bytes, ProxyProgram, TerminalOp};
use siesta_grammar::{MainSym, MergedMain, RSym, RankSet, Sym};
use siesta_perfmodel::CounterVec;
use siesta_proxy::ComputeProxy;
use siesta_trace::CommEvent;

fn arb_event() -> impl Strategy<Value = CommEvent> {
    prop_oneof![
        (0u32..64, -1i32..100, 0u64..1_000_000, 0u32..4).prop_map(|(rel, tag, bytes, comm)| {
            CommEvent::Send { rel, tag, bytes, comm }
        }),
        (0u32..64, -1i32..100, 0u64..1_000_000, 0u32..4).prop_map(|(rel, tag, bytes, comm)| {
            CommEvent::Recv { rel, tag, bytes, comm }
        }),
        (0u32..64, 0i32..100, 0u64..1_000_000, 0u32..4, 0u32..16).prop_map(
            |(rel, tag, bytes, comm, req)| CommEvent::Isend { rel, tag, bytes, comm, req }
        ),
        (0u32..64, 0i32..100, 0u64..1_000_000, 0u32..4, 0u32..16).prop_map(
            |(rel, tag, bytes, comm, req)| CommEvent::Irecv { rel, tag, bytes, comm, req }
        ),
        (0u32..16).prop_map(|req| CommEvent::Wait { req }),
        prop::collection::vec(0u32..16, 0..8).prop_map(|reqs| CommEvent::Waitall { reqs }),
        (0u32..4).prop_map(|comm| CommEvent::Barrier { comm }),
        (0u32..4, 0u32..64, 0u64..1_000_000)
            .prop_map(|(comm, root, bytes)| CommEvent::Bcast { comm, root, bytes }),
        (0u32..4, 0u64..1_000_000).prop_map(|(comm, bytes)| CommEvent::Allreduce { comm, bytes }),
        (
            0u32..4,
            prop::collection::vec(0u64..10_000, 1..16),
            prop::collection::vec(0u64..10_000, 1..16)
        )
            .prop_map(|(comm, send_counts, recv_counts)| CommEvent::Alltoallv {
                comm,
                send_counts,
                recv_counts
            }),
        (0u32..4, -5i64..5, -5i64..5, prop::option::of(1u32..4)).prop_map(
            |(parent, color, key, result)| CommEvent::CommSplit { parent, color, key, result }
        ),
        (0u32..4, 1u32..4)
            .prop_map(|(parent, result)| CommEvent::CommDup { parent, result }),
        (1u32..4).prop_map(|comm| CommEvent::CommFree { comm }),
        (0u32..4, 0u32..32, prop::collection::vec(0u64..10_000, 1..16))
            .prop_map(|(comm, root, counts)| CommEvent::Gatherv { comm, root, counts }),
        (0u32..4, 0u32..32, prop::collection::vec(0u64..10_000, 1..16))
            .prop_map(|(comm, root, counts)| CommEvent::Scatterv { comm, root, counts }),
        (0u32..4, 0u64..1_000_000).prop_map(|(comm, bytes)| CommEvent::Scan { comm, bytes }),
        (0u32..4, 0u64..100_000).prop_map(|(comm, bytes_per_rank)| {
            CommEvent::ReduceScatterBlock { comm, bytes_per_rank }
        }),
    ]
}

fn arb_terminal() -> impl Strategy<Value = TerminalOp> {
    prop_oneof![
        arb_event().prop_map(TerminalOp::Comm),
        (
            prop::collection::vec(0u64..100_000, 11),
            prop::collection::vec(0.0f64..1e9, 6)
        )
            .prop_map(|(reps, t)| {
                let mut r = [0u64; 11];
                r.copy_from_slice(&reps);
                TerminalOp::Compute {
                    proxy: ComputeProxy { reps: r },
                    target: CounterVec::from_array([t[0], t[1], t[2], t[3], t[4], t[5]]),
                }
            }),
    ]
}

fn arb_rankset(nranks: u32) -> impl Strategy<Value = RankSet> {
    prop::collection::btree_set(0..nranks, 1..(nranks as usize).min(12))
        .prop_map(RankSet::from_iter)
}

fn arb_program() -> impl Strategy<Value = ProxyProgram> {
    (
        2u32..32,
        prop::collection::vec(arb_terminal(), 1..12),
        1.0f64..20.0,
    )
        .prop_flat_map(|(nranks, terminals, scale)| {
            let n_terms = terminals.len() as u32;
            // One rule over terminals only (keeps acyclicity trivial), and a
            // main over rules + terminals.
            let rule = prop::collection::vec(
                (0..n_terms, 1u64..50).prop_map(|(t, e)| RSym::new(Sym::T(t), e)),
                1..6,
            );
            let main_syms = prop::collection::vec(
                (
                    prop_oneof![
                        (0..n_terms).prop_map(Sym::T),
                        Just(Sym::N(0)),
                    ],
                    1u64..20,
                    arb_rankset(nranks),
                )
                    .prop_map(|(sym, exp, ranks)| MainSym { sym, exp, ranks }),
                1..10,
            );
            (Just(nranks), Just(terminals), Just(scale), rule, main_syms)
        })
        .prop_map(|(nranks, terminals, scale, rule, main)| ProxyProgram {
            nranks: nranks as usize,
            terminals,
            rules: vec![rule],
            mains: vec![MergedMain { ranks: RankSet::all(nranks), body: main }],
            scale,
            generated_on: "A/openmpi".to_string(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity on arbitrary programs.
    #[test]
    fn wire_round_trip(p in arb_program()) {
        let bytes = to_bytes(&p);
        let q = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(p, q);
    }

    /// Truncating anywhere never panics and never yields Ok of a different
    /// program (prefix-freeness of the format).
    #[test]
    fn truncation_is_detected(p in arb_program(), frac in 0.0f64..1.0) {
        let bytes = to_bytes(&p);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            match from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(q) => prop_assert_eq!(p, q), // only acceptable if identical
            }
        }
    }

    /// Emission works on every decodable program (no panics, balanced
    /// braces) — the two consumers of the IR agree on validity.
    #[test]
    fn emit_c_total_on_arbitrary_programs(p in arb_program()) {
        let c = emit_c(&p);
        prop_assert_eq!(c.matches('{').count(), c.matches('}').count());
        prop_assert!(c.contains("int main"));
    }
}
