//! Shared plumbing for the table/figure reproduction harnesses.
//!
//! Every bench target prints the rows/series of one table or figure of the
//! paper's evaluation (Section 3). Scales default to a laptop-friendly
//! subset; set `SIESTA_PAPER=1` to run the paper's process counts and the
//! reference problem size (slow: the biggest rows simulate 512–529 ranks).

use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig, Synthesis};
use siesta_mpisim::RunStats;
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::{ProblemSize, Program};

/// The default evaluation machine (paper: platform A + OpenMPI).
pub fn machine_a() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Evaluation scale selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced ranks / Small problems: minutes, not hours.
    Quick,
    /// The paper's Table 3 process counts and the Reference size.
    Paper,
}

impl Scale {
    pub fn from_env() -> Scale {
        if std::env::var("SIESTA_PAPER").map(|v| v == "1").unwrap_or(false) {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    pub fn size(self) -> ProblemSize {
        match self {
            Scale::Quick => ProblemSize::Small,
            Scale::Paper => ProblemSize::Reference,
        }
    }

    /// Process counts to sweep for a program.
    pub fn nprocs(self, program: Program) -> Vec<usize> {
        match self {
            Scale::Paper => program.paper_nprocs().to_vec(),
            Scale::Quick => match program {
                Program::Bt | Program::Sp => vec![16, 64],
                _ => vec![16, 64],
            },
        }
    }

    /// A single representative count for per-program comparisons. 64 ranks
    /// even at quick scale: smaller counts are compute-bound and the
    /// flavor/baseline comparisons lose their signal.
    pub fn one_nprocs(self, _program: Program) -> usize {
        64
    }

    /// Rank count for comparisons that need compute-dominated runs (the
    /// Figure 6 execution-time comparison: at tiny per-rank work the
    /// latency floor dominates and scaling-factor reproduction degenerates,
    /// which the paper's larger problems do not exhibit).
    pub fn compute_heavy_nprocs(self, _program: Program) -> usize {
        match self {
            Scale::Paper => 64,
            Scale::Quick => 16,
        }
    }
}

/// Everything measured for one (program, nprocs) cell.
pub struct Cell {
    pub original: RunStats,
    pub traced: RunStats,
    pub synthesis: Synthesis,
    pub proxy: RunStats,
}

/// Run the full Siesta pipeline on one workload configuration.
pub fn evaluate(
    program: Program,
    machine: Machine,
    nprocs: usize,
    size: ProblemSize,
    config: SiestaConfig,
) -> Cell {
    let original = program.run(machine, nprocs, size);
    let siesta = Siesta::new(config);
    let (synthesis, traced) =
        siesta.synthesize_run(machine, nprocs, move |r| program.body(size)(r));
    let proxy = replay(&synthesis.program, machine);
    Cell { original, traced, synthesis, proxy }
}

/// Tracing overhead in percent (Table 3 column).
pub fn overhead_pct(cell: &Cell) -> f64 {
    100.0 * (cell.traced.elapsed_ns() - cell.original.elapsed_ns())
        / cell.original.elapsed_ns()
}

/// Print a rule line.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        std::env::remove_var("SIESTA_PAPER");
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.size(), ProblemSize::Small);
    }

    #[test]
    fn scales_produce_valid_counts() {
        for scale in [Scale::Quick, Scale::Paper] {
            for p in Program::ALL {
                for n in scale.nprocs(p) {
                    assert!(p.valid_nprocs(n), "{} invalid at {n} ({scale:?})", p.name());
                }
                assert!(p.valid_nprocs(scale.one_nprocs(p)));
            }
        }
    }

    #[test]
    fn evaluate_produces_consistent_cell() {
        let cell = evaluate(
            Program::Is,
            machine_a(),
            8,
            ProblemSize::Tiny,
            SiestaConfig::default(),
        );
        assert!(cell.original.elapsed_ns() > 0.0);
        assert!(cell.proxy.elapsed_ns() > 0.0);
        assert!(overhead_pct(&cell) >= 0.0);
        assert!(cell.synthesis.stats.raw_trace_bytes > cell.synthesis.stats.size_c_bytes);
    }
}
