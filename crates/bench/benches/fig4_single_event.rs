//! Figure 4 — MINIME vs Siesta on a *single* computation event.
//!
//! The whole program execution's computation is treated as one event: its
//! summed counters are the target, and each synthesizer produces one proxy.
//! Similarity is reported in MINIME's own coordinates — IPC, cache miss
//! rate, branch misprediction rate — relative to the original ("Origin").

use siesta_bench::{hr, machine_a, Scale};
use siesta_perfmodel::CounterVec;
use siesta_proxy::{Minime, ProxySearcher};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let m = machine_a();
    let searcher = ProxySearcher::new(&m);
    let minime = Minime::new(&m);

    println!("Figure 4: single computation event — Origin vs MINIME vs Siesta  ({scale:?})");
    hr(108);
    println!(
        "{:<10} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7} {:>7}",
        "Program", "IPC", "CMR", "BMR", "mini", "mini", "mini", "siesta", "siesta", "siesta",
        "miniE%", "siesE%"
    );
    hr(108);
    let mut minime_total = 0.0;
    let mut siesta_total = 0.0;
    let mut minime_six = 0.0;
    let mut siesta_six = 0.0;
    for program in Program::ALL {
        let nprocs = scale.one_nprocs(program);
        let run = program.run(m, nprocs, size);
        // "The origin ... corresponds to the sum of the computational parts
        // of the tested programs."
        let origin: CounterVec = run.total_counters();
        let sp = searcher.search(&origin);
        let mp = minime.synthesize(&origin, &m);
        let s_pred = searcher.predict(&sp, &m);
        let m_pred = mp.counters_on(m.cpu(), minime.blocks());
        let s_err = 100.0 * Minime::ratio_error(&s_pred, &origin);
        let m_err = 100.0 * Minime::ratio_error(&m_pred, &origin);
        let s_six = 100.0 * s_pred.mean_relative_error(&origin);
        let m_six = 100.0 * m_pred.mean_relative_error(&origin);
        minime_total += m_err;
        siesta_total += s_err;
        minime_six += m_six;
        siesta_six += s_six;
        println!(
            "{:<10} {:>8.3} {:>8.4} {:>8.4} | {:>8.3} {:>8.4} {:>8.4} | {:>8.3} {:>8.4} {:>8.4} | {:>6.2}% {:>6.2}%",
            program.name(),
            origin.ipc(), origin.cmr(), origin.bmr(),
            m_pred.ipc(), m_pred.cmr(), m_pred.bmr(),
            s_pred.ipc(), s_pred.cmr(), s_pred.bmr(),
            m_err, s_err,
        );
    }
    hr(108);
    let n = Program::ALL.len() as f64;
    println!(
        "Mean error on MINIME's own ratios (IPC/CMR/BMR): MINIME {:.2}%   Siesta {:.2}%",
        minime_total / n,
        siesta_total / n
    );
    println!(
        "Mean error on all six Table-1 metrics:           MINIME {:.2}%   Siesta {:.2}%",
        minime_six / n,
        siesta_six / n
    );
    println!("(paper: Siesta slightly better on single events; the six-metric view shows why)");
}
