//! Figure 9 — portability between platform A and platform B (KNL).
//!
//! BT and CG at 16–64 ranks, generated on A and executed on both A and B.
//! Platform B's slow cores change the original's time dramatically;
//! Siesta's re-costed block proxies follow, ScalaBench's fixed sleeps do
//! not ("the execution time of ScalaBench is almost unchanged").

use siesta_baselines::scalabench;
use siesta_bench::{hr, Scale};
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, platform_b, Machine, MpiFlavor};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let ma = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    let mb = Machine::new(platform_b(), MpiFlavor::OpenMpi);

    println!("Figure 9: execution time on platforms A and B (generated on A)  ({scale:?})");
    hr(104);
    println!(
        "{:<8} {:>6} {:>5} | {:>9} {:>9} {:>6} {:>9} {:>6}",
        "Program", "Procs", "Plat", "Original", "Siesta", "err%", "ScalaB", "err%"
    );
    hr(104);
    let mut errs_a = (Vec::new(), Vec::new());
    let mut errs_b = (Vec::new(), Vec::new());
    for program in [Program::Bt, Program::Cg] {
        let counts: Vec<usize> = match program {
            Program::Bt => vec![16, 25, 36, 64],
            _ => vec![16, 32, 64],
        };
        for nprocs in counts {
            let siesta = Siesta::new(SiestaConfig::default());
            let (synthesis, _) =
                siesta.synthesize_run(ma, nprocs, move |r| program.body(size)(r));
            let scala = scalabench::trace_and_synthesize(ma, nprocs, move |r| {
                program.body(size)(r)
            });
            for (label, m) in [("A", ma), ("B", mb)] {
                let original = program.run(m, nprocs, size);
                let t_orig = original.elapsed_ms();
                let proxy = replay(&synthesis.program, m);
                let e_siesta = 100.0 * proxy.time_error(&original);
                let (scala_txt, err_txt, e_scala) = match &scala {
                    Ok(app) => {
                        let t = app.replay(m).elapsed_ms();
                        let e = 100.0 * (t - t_orig).abs() / t_orig;
                        (format!("{t:9.2}"), format!("{e:5.1}%"), Some(e))
                    }
                    Err(_) => ("     fail".to_string(), "    -".to_string(), None),
                };
                let (se, ce) = if label == "A" { (&mut errs_a.0, &mut errs_a.1) } else { (&mut errs_b.0, &mut errs_b.1) };
                se.push(e_siesta);
                if let Some(e) = e_scala {
                    ce.push(e);
                }
                println!(
                    "{:<8} {:>6} {:>5} | {:>9.2} {:>9.2} {:>5.1}% {} {}",
                    program.name(),
                    nprocs,
                    label,
                    t_orig,
                    proxy.elapsed_ms(),
                    e_siesta,
                    scala_txt,
                    err_txt,
                );
            }
        }
    }
    hr(104);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "Mean error on A (native platform): Siesta {:.2}%   ScalaBench {:.2}%",
        mean(&errs_a.0),
        mean(&errs_a.1)
    );
    println!(
        "Mean error on B (ported):          Siesta {:.2}%   ScalaBench {:.2}%",
        mean(&errs_b.0),
        mean(&errs_b.1)
    );
    println!("Paper reference on B: Siesta 13.68%, ScalaBench 70.44%.");
}
