//! Table 3 — Specification of generated proxy-apps.
//!
//! For every program × process count: the raw trace size, the exported
//! compressed size (`size_C`), the tracing overhead, and the proxy-vs-
//! original counter error. Run with `SIESTA_PAPER=1` for the paper's
//! process counts (64–529) and reference problem size.

use siesta_bench::{evaluate, hr, machine_a, overhead_pct, Scale};
use siesta_core::{counter_error_pct, human_bytes, SiestaConfig};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    println!("Table 3: Specification of generated proxy-apps  (scale: {scale:?}, size: {size:?})");
    hr(86);
    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>8} {:>9} {:>8} {:>7}",
        "Program", "Procs", "Trace size", "size_C", "Ratio", "Overhead", "Error", "Fit"
    );
    hr(86);
    for program in Program::ALL {
        for nprocs in scale.nprocs(program) {
            let cell = evaluate(program, machine_a(), nprocs, size, SiestaConfig::default());
            let err = counter_error_pct(&cell.proxy, &cell.original);
            println!(
                "{:<10} {:>7} {:>12} {:>10} {:>7.0}x {:>8.2}% {:>7.2}% {:>6.2}%",
                program.name(),
                nprocs,
                human_bytes(cell.synthesis.stats.raw_trace_bytes),
                human_bytes(cell.synthesis.stats.size_c_bytes),
                cell.synthesis.stats.compression_ratio(),
                overhead_pct(&cell),
                err,
                100.0 * cell.synthesis.stats.mean_fit_error,
            );
        }
    }
    hr(86);
    println!("Paper reference: overhead <1%–7.8%, error 0.36%–8.67%, trace:size_C ratios 10²–10⁴.");
}
