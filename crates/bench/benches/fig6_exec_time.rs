//! Figure 6 — proxy-app execution time vs the original program.
//!
//! Compares: the original, Siesta, Siesta-scaled (execution time multiplied
//! back by the scaling factor), the ScalaBench-like baseline, and the
//! Pilgrim-like comm-only baseline. ScalaBench rejects the FLASH programs
//! (communicator management), shown as `fail` — matching the paper's
//! missing bars.

use siesta_baselines::{pilgrim, scalabench};
use siesta_bench::{evaluate, hr, machine_a, Scale};
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let m = machine_a();
    println!("Figure 6: proxy-app execution time (ms) and error vs original  ({scale:?})");
    hr(110);
    println!(
        "{:<10} {:>6} {:>9} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "Program", "Procs", "Original", "Siesta", "err%", "Scaled*k", "err%", "ScalaB", "err%",
        "Pilgrim", "err%"
    );
    hr(110);
    let mut errs = (0.0, 0.0, 0.0, 0.0);
    let mut n_scala = 0usize;
    for program in Program::ALL {
        let nprocs = scale.compute_heavy_nprocs(program);
        // Original + Siesta (unscaled).
        let cell = evaluate(program, m, nprocs, size, SiestaConfig::default());
        let t_orig = cell.original.elapsed_ms();
        let t_siesta = cell.proxy.elapsed_ms();
        let e_siesta = 100.0 * cell.proxy.time_error(&cell.original);
        // Siesta-scaled: replay the shrunk proxy, multiply back.
        let siesta_scaled = Siesta::new(SiestaConfig::scaled());
        let (syn_scaled, _) =
            siesta_scaled.synthesize_run(m, nprocs, move |r| program.body(size)(r));
        let t_scaled_run = replay(&syn_scaled.program, m).elapsed_ms();
        let t_scaled = t_scaled_run * syn_scaled.program.scale;
        let e_scaled = 100.0 * (t_scaled - t_orig).abs() / t_orig;
        // ScalaBench-like.
        let scala = scalabench::trace_and_synthesize(m, nprocs, move |r| {
            program.body(size)(r)
        });
        let (scala_txt, scala_err_txt, e_scala) = match &scala {
            Ok(app) => {
                let t = app.replay(m).elapsed_ms();
                let e = 100.0 * (t - t_orig).abs() / t_orig;
                (format!("{t:9.2}"), format!("{e:5.1}%"), Some(e))
            }
            Err(_) => ("     fail".to_string(), "    -".to_string(), None),
        };
        // Pilgrim-like.
        let pilgrim_prog =
            pilgrim::trace_and_synthesize(m, nprocs, move |r| program.body(size)(r));
        let t_pilgrim = replay(&pilgrim_prog, m).elapsed_ms();
        let e_pilgrim = 100.0 * (t_pilgrim - t_orig).abs() / t_orig;

        errs.0 += e_siesta;
        errs.1 += e_scaled;
        if let Some(e) = e_scala {
            errs.2 += e;
            n_scala += 1;
        }
        errs.3 += e_pilgrim;
        println!(
            "{:<10} {:>6} {:>9.2} | {:>9.2} {:>5.1}% | {:>9.2} {:>5.1}% | {} {} | {:>9.2} {:>5.1}%",
            program.name(),
            nprocs,
            t_orig,
            t_siesta,
            e_siesta,
            t_scaled,
            e_scaled,
            scala_txt,
            scala_err_txt,
            t_pilgrim,
            e_pilgrim,
        );
    }
    hr(110);
    let n = Program::ALL.len() as f64;
    println!(
        "Mean errors: Siesta {:.2}%  Siesta-scaled {:.2}%  ScalaBench {:.2}% (over {} programs)  Pilgrim {:.2}%",
        errs.0 / n,
        errs.1 / n,
        if n_scala > 0 { errs.2 / n_scala as f64 } else { f64::NAN },
        n_scala,
        errs.3 / n
    );
    println!("Paper reference: Siesta 5.30%, Siesta-scaled 9.31%, ScalaBench 13.13%, Pilgrim 84.30%.");
}
