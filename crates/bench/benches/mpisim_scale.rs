//! Event-scheduler scale bench: simulation throughput and memory versus
//! virtual rank count.
//!
//! The event-driven rework's contract is that rank count is decoupled
//! from host threads: a rank costs one heap future plus a mailbox. This
//! bench sweeps the 2D halo-exchange microkernel at 512 / 4096 / 65 536
//! ranks, records **ranks per second** (virtual ranks simulated to
//! completion per wall-clock second) and the process **peak RSS**, and
//! writes `BENCH_mpisim.json` (format v2) for `scripts/check_bench.py`
//! to gate in CI.
//!
//! ```sh
//! cargo bench -p siesta-bench --bench mpisim_scale            # full
//! cargo bench -p siesta-bench --bench mpisim_scale -- --quick # CI smoke
//! ```
//!
//! Budgets (embedded in the JSON, gated at slack 1.0 on the checked-in
//! full run, 4× slack on the CI quick run):
//!
//! * ranks/s at 65 536 ranks must clear the floor — the ISSUE 8
//!   acceptance "65 536 ranks in < 60 s" with margin;
//! * peak RSS after the full sweep stays under 2 GB (`VmHWM` is a
//!   process-lifetime high-water mark, so the post-sweep reading bounds
//!   every point).

use std::hint::black_box;
use std::time::Instant;

use siesta_mpisim::World;
use siesta_perfmodel::{platform_b, Machine, MpiFlavor};
use siesta_workloads::halo::halo2d_body;

struct Config {
    quick: bool,
    sizes: &'static [usize],
    iters: usize,
    face_bytes: usize,
    warmup: usize,
    reps: usize,
}

impl Config {
    fn detect() -> Config {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("SIESTA_BENCH_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Config { quick, sizes: &[512, 4096], iters: 5, face_bytes: 4096, warmup: 1, reps: 3 }
        } else {
            Config {
                quick,
                sizes: &[512, 4096, 65_536],
                iters: 10,
                face_bytes: 4096,
                warmup: 1,
                reps: 5,
            }
        }
    }
}

fn main() {
    let cfg = Config::detect();
    let machine = Machine::new(platform_b(), MpiFlavor::OpenMpi);

    println!(
        "mpisim_scale halo2d iters={} face={}B ({} reps{})",
        cfg.iters,
        cfg.face_bytes,
        cfg.reps,
        if cfg.quick { ", quick" } else { "" }
    );
    println!(
        "{:>9}  {:>10}  {:>10}  {:>12}  {:>10}",
        "ranks", "mean ms", "min ms", "ranks/s", "peak RSS"
    );

    let mut points = String::new();
    let mut best_rps = Vec::new();
    for &ranks in cfg.sizes {
        let run = || {
            let t0 = Instant::now();
            let stats =
                World::new(machine, ranks).run(halo2d_body(cfg.iters, cfg.face_bytes));
            let dt = t0.elapsed().as_secs_f64();
            black_box(stats.schedule_hash());
            dt
        };
        for _ in 0..cfg.warmup {
            run();
        }
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..cfg.reps {
            let dt = run();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / cfg.reps as f64;
        // Throughput from the min time: the cleanest sample of what the
        // scheduler can do, which is what the regression floor gates.
        let rps = ranks as f64 / min;
        let rss = siesta_obs::peak_rss_bytes().unwrap_or(0);
        best_rps.push((ranks, rps));
        println!(
            "{ranks:>9}  {:>10.2}  {:>10.2}  {:>12.0}  {:>8.1} MB",
            mean * 1e3,
            min * 1e3,
            rps,
            rss as f64 / (1024.0 * 1024.0)
        );
        if !points.is_empty() {
            points.push(',');
        }
        points.push_str(&format!(
            "\n    {{\"phase\": \"halo2d\", \"ranks\": {ranks}, \"mean_ms\": {:.3}, \
             \"min_ms\": {:.3}, \"ranks_per_sec\": {:.0}, \"peak_rss_bytes\": {rss}}}",
            mean * 1e3,
            min * 1e3,
            rps
        ));
    }

    let peak_rss = siesta_obs::peak_rss_bytes().unwrap_or(0);
    let peak_rss_gb = peak_rss as f64 / (1024.0 * 1024.0 * 1024.0);
    let top_ranks = *cfg.sizes.last().unwrap();
    let top_rps = best_rps.last().unwrap().1;

    // Floors with generous margin under the recorded values: the 65 536
    // acceptance bound (< 60 s ⇒ > ~1100 ranks/s) for the full run, and
    // a matching per-size floor for the quick sweep. The RSS ceiling is
    // the ISSUE 8 acceptance number verbatim.
    let (rps_metric, rps_budget) = if cfg.quick {
        (format!("ranks_per_sec_{top_ranks}"), 2_000.0)
    } else {
        (format!("ranks_per_sec_{top_ranks}"), 1_100.0)
    };

    let path = if cfg.quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpisim_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpisim.json")
    };
    let json = format!(
        "{{\n  \"version\": 2,\n  \"bench\": \"mpisim_scale\",\n  \"mode\": \"{}\",\n  \
         \"host_parallelism\": {},\n  \"workload\": \"halo2d\",\n  \"iters\": {},\n  \
         \"face_bytes\": {},\n  \"reps\": {},\n  \
         \"{rps_metric}\": {:.0},\n  \"budget_min_{rps_metric}\": {:.0},\n  \
         \"peak_rss_gb\": {:.4},\n  \"budget_max_peak_rss_gb\": 2.0,\n  \
         \"points\": [{points}\n  ]\n}}\n",
        if cfg.quick { "quick" } else { "full" },
        siesta_par::available_parallelism(),
        cfg.iters,
        cfg.face_bytes,
        cfg.reps,
        top_rps,
        rps_budget,
        peak_rss_gb,
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("scale results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
