//! Figure 8 — portability between platform A and platform C.
//!
//! MG, IS, and SP at 16 ranks (platform C is a single 28-core node).
//! "A to C" generates the proxy on A and executes it on C; "C to A" is the
//! reverse. Siesta's block proxies re-cost on the target platform;
//! ScalaBench's sleeps do not.

use siesta_baselines::scalabench;
use siesta_bench::{hr, Scale};
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, platform_c, Machine, MpiFlavor};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let nprocs = 16; // paper: "executed under 16 processes" (C has 28 cores)
    let ma = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    let mc = Machine::new(platform_c(), MpiFlavor::OpenMpi);

    println!("Figure 8: portability between platforms A and C (16 ranks)  ({scale:?})");
    hr(100);
    println!(
        "{:<10} {:>7} | {:>9} {:>9} {:>6} {:>9} {:>6}",
        "Program", "Dir", "Original", "Siesta", "err%", "ScalaB", "err%"
    );
    hr(100);
    let mut siesta_errs = Vec::new();
    let mut scala_errs = Vec::new();
    for program in [Program::Mg, Program::Is, Program::Sp] {
        for (dir, gen_m, run_m) in [("A to C", ma, mc), ("C to A", mc, ma)] {
            let original = program.run(run_m, nprocs, size);
            let t_orig = original.elapsed_ms();
            let siesta = Siesta::new(SiestaConfig::default());
            let (synthesis, _) =
                siesta.synthesize_run(gen_m, nprocs, move |r| program.body(size)(r));
            let proxy = replay(&synthesis.program, run_m);
            let e_siesta = 100.0 * proxy.time_error(&original);
            siesta_errs.push(e_siesta);
            let scala = scalabench::trace_and_synthesize(gen_m, nprocs, move |r| {
                program.body(size)(r)
            });
            let (scala_txt, err_txt) = match &scala {
                Ok(app) => {
                    let t = app.replay(run_m).elapsed_ms();
                    let e = 100.0 * (t - t_orig).abs() / t_orig;
                    scala_errs.push(e);
                    (format!("{t:9.2}"), format!("{e:5.1}%"))
                }
                Err(_) => ("     fail".to_string(), "    -".to_string()),
            };
            println!(
                "{:<10} {:>7} | {:>9.2} {:>9.2} {:>5.1}% {} {}",
                program.name(),
                dir,
                t_orig,
                proxy.elapsed_ms(),
                e_siesta,
                scala_txt,
                err_txt,
            );
        }
    }
    hr(100);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "Mean error: Siesta {:.2}%   ScalaBench {:.2}%",
        mean(&siesta_errs),
        mean(&scala_errs)
    );
    println!("Paper reference: Siesta 6.83%, ScalaBench 18.11% (similar platforms).");
}
