//! Grammar hot-path sweep: the three phases that dominate synthesis time
//! when every rank's trace is unique — per-rank Sequitur (memo on and off,
//! duplicate-heavy and all-unique), main-rule clustering, and the LCS
//! main-rule merge — each at 1/2/4/8 worker threads.
//!
//! Emits `BENCH_grammar.json` (format v2) with per-phase budgets that
//! `scripts/check_bench.py` gates in CI: the checked-in full-run results
//! gate strictly, and a fresh `--quick` run on the CI runner gates with
//! generous slack (shared runners are noisy — the quick gate catches
//! regressions of kind, the checked-in result regressions of degree).
//!
//! ```sh
//! cargo bench -p siesta-bench --bench grammar_hotpath            # full
//! cargo bench -p siesta-bench --bench grammar_hotpath -- --quick # CI smoke
//! ```
//!
//! Speedup budgets (`budget_min_speedup_vs_1`) are only meaningful where
//! the host can actually run that many workers; the checker skips them
//! when the point's thread count exceeds `host_parallelism`, so the gate
//! arms itself automatically on real multi-core hosts.

use std::hint::black_box;
use std::time::Instant;

use siesta_grammar::{
    build_rank_grammars, cluster_by_edit_distance, merge_grammars, MergeConfig, RSym, Sequitur,
    Sym,
};

/// Pre-PR checked-in record for `sequitur_memo_uniq64`, memo on, 1 thread
/// (the all-unique worst case before the arena/interning rework). The
/// top-level speedup-vs-baseline budget gates the rework's single-thread
/// win against this number.
const BASELINE_UNIQ64_1T_MEAN_MS: f64 = 218.240;

/// Required single-thread speedup of `sequitur_memo_uniq64` (memo on)
/// against [`BASELINE_UNIQ64_1T_MEAN_MS`].
const BUDGET_MIN_UNIQ64_SPEEDUP_VS_BASELINE: f64 = 1.3;

/// Required parallel speedup at 4 threads for the pool-parallel phases —
/// gated only on hosts with at least 4 cores (see module docs).
const BUDGET_MIN_SPEEDUP_VS_1_AT_4T: f64 = 1.05;

/// Absolute-time budgets (ms) for the gated 1-thread points, fixed
/// contract values recorded on the reference host. The headline
/// `sequitur_memo_uniq64` budget *is* the 1.3× contract
/// (`218.240 / 1.3`); the others carry ~2× headroom over the means
/// measured when this harness was introduced. Quick mode runs the same
/// input sizes (only fewer iterations), so these apply to both modes.
fn budget_max_mean_ms(phase: &str) -> Option<f64> {
    match phase {
        "sequitur_memo_dup64" => Some(35.0),
        "sequitur_memo_uniq64" => Some(BASELINE_UNIQ64_1T_MEAN_MS / 1.3),
        "cluster_mains_96" => Some(200.0),
        "lcs_merge_64" => Some(310.0),
        _ => None,
    }
}

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    quick: bool,
    warmup: usize,
    iters: usize,
}

impl Config {
    fn from_args() -> Config {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("SIESTA_BENCH_QUICK").is_some();
        // Quick mode trims iterations, not input sizes, so the fixed
        // absolute-time budgets stay meaningful under `--slack`.
        if quick {
            Config { quick, warmup: 0, iters: 1 }
        } else {
            Config { quick, warmup: 1, iters: 3 }
        }
    }
}

/// Time `f` over `iters` iterations after `warmup` untimed ones; print a
/// summary line and return `(mean_s, min_s)`.
fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters as f64;
    println!(
        "{name:<34} mean {:>10.3} ms   min {:>10.3} ms   ({iters} iters)",
        mean * 1e3,
        min * 1e3
    );
    (mean, min)
}

/// One measured point of the sweep.
struct Point {
    phase: &'static str,
    /// Memo flag for the Sequitur scenarios; `None` for cluster/merge.
    memo: Option<bool>,
    threads: usize,
    mean_s: f64,
    min_s: f64,
}

/// A trace-like sequence: nested loops with occasional irregularities.
fn trace_like_sequence(n: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(n);
    let mut i = 0;
    while seq.len() < n {
        seq.extend([1, 2, 3, 2, 4]);
        seq.extend(std::iter::repeat_n(5, 8));
        if i % 10 == 9 {
            seq.extend([20, 21]);
        }
        i += 1;
    }
    seq.truncate(n);
    seq
}

/// Synthetic main-rule variants for the clustering phase: `groups` families
/// of `per_group` variants each. Within a family the bodies differ in a few
/// rank-private symbols (small edit distance → same cluster); families use
/// disjoint alphabets (huge distance → Myers runs to the bound and gives
/// up). This is the expensive shape: most probes are *misses*.
fn cluster_variants(groups: usize, per_group: usize, len: usize) -> Vec<Vec<RSym>> {
    let mut variants = Vec::with_capacity(groups * per_group);
    for i in 0..groups * per_group {
        let g = (i % groups) as u32;
        let member = (i / groups) as u32;
        let body: Vec<RSym> = (0..len as u32)
            .map(|j| {
                let t = if j % 53 == member % 53 {
                    // A sprinkle of member-private symbols.
                    1_000_000 + g * 10_000 + member * 100 + j % 7
                } else {
                    g * 10_000 + j
                };
                RSym::once(Sym::T(t))
            })
            .collect();
        variants.push(body);
    }
    variants
}

/// Grammars whose main rules are long and nearly identical — an
/// incompressible strictly-increasing core (Sequitur keeps it verbatim in
/// the main rule) with sparse rank-private substitutions, so the merge
/// phase pays for real LCS work instead of trivial two-symbol diffs.
fn divergent_main_grammars(nranks: u32, len: usize) -> Vec<siesta_grammar::Grammar> {
    (0..nranks)
        .map(|r| {
            let seq: Vec<u32> = (0..len as u32)
                .map(|j| if j % 97 == r % 97 { 500_000 + r * 1_000 + j } else { j })
                .collect();
            Sequitur::build(&seq)
        })
        .collect()
}

/// Emit the sweep as JSON format v2 (hand-rolled: the workspace is
/// registry-free). Per point: `speedup_vs_1` against the same
/// (phase, memo) at 1 thread, `speedup_vs_no_memo` for memo points, and
/// the budgets described in the module docs.
fn write_json(
    path: &str,
    points: &[Point],
    hit_rates: &[(&'static str, usize, usize)],
    uniq64_1t_mean_ms: f64,
) {
    let mut out = String::from("{\n  \"version\": 2,\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        siesta_par::available_parallelism()
    ));
    out.push_str(&format!(
        "  \"baseline_uniq64_1t_mean_ms\": {BASELINE_UNIQ64_1T_MEAN_MS:.3},\n"
    ));
    out.push_str(&format!(
        "  \"uniq64_1t_speedup_vs_baseline\": {:.3},\n",
        BASELINE_UNIQ64_1T_MEAN_MS / uniq64_1t_mean_ms
    ));
    out.push_str(&format!(
        "  \"budget_min_uniq64_1t_speedup_vs_baseline\": {BUDGET_MIN_UNIQ64_SPEEDUP_VS_BASELINE},\n"
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, (scenario, unique, ranks)) in hit_rates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{scenario}\", \"ranks\": {ranks}, \"unique\": {unique}, \"memo_hits\": {}, \"hit_rate\": {:.4}}}{}\n",
            ranks - unique,
            (ranks - unique) as f64 / *ranks as f64,
            if i + 1 < hit_rates.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let base_1t = points
            .iter()
            .find(|q| q.phase == p.phase && q.memo == p.memo && q.threads == 1)
            .map_or(p.mean_s, |q| q.mean_s);
        let mut fields = format!(
            "\"phase\": \"{}\", {}\"threads\": {}, \"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"speedup_vs_1\": {:.3}",
            p.phase,
            match p.memo {
                Some(m) => format!("\"memo\": {m}, "),
                None => String::new(),
            },
            p.threads,
            p.mean_s * 1e3,
            p.min_s * 1e3,
            base_1t / p.mean_s,
        );
        if p.memo == Some(true) {
            let unmemo = points
                .iter()
                .find(|q| q.phase == p.phase && q.threads == p.threads && q.memo == Some(false))
                .map_or(p.mean_s, |q| q.mean_s);
            fields.push_str(&format!(", \"speedup_vs_no_memo\": {:.3}", unmemo / p.mean_s));
        }
        // Budgets ride on the gated points: every phase's 1-thread mean
        // gets an absolute-time budget; the 4-thread points of the
        // parallel phases get the min-speedup budget (skipped by the
        // checker on hosts with fewer cores). The memo-off Sequitur rows
        // are context, not a contract — no budget.
        let gated = p.memo != Some(false);
        if gated && p.threads == 1 {
            if let Some(b) = budget_max_mean_ms(p.phase) {
                fields.push_str(&format!(", \"budget_max_mean_ms\": {b:.3}"));
            }
        }
        if gated && p.threads == 4 {
            fields.push_str(&format!(
                ", \"budget_min_speedup_vs_1\": {BUDGET_MIN_SPEEDUP_VS_1_AT_4T}"
            ));
        }
        out.push_str(&format!(
            "    {{{fields}}}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => println!("grammar hot-path results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "grammar hot-path sweep ({} mode, host_parallelism {})",
        if cfg.quick { "quick" } else { "full" },
        siesta_par::available_parallelism()
    );
    let mut points: Vec<Point> = Vec::new();

    // ---- Phase 1: per-rank Sequitur, memo on/off.
    // A duplicate-heavy 64-rank job (SPMD: only 4 distinct sequences, hit
    // rate 60/64) against an all-unique 64-rank job (worst case: the memo
    // pass is pure content-hash overhead and every rank pays full
    // grammar construction).
    const MEMO_RANKS: usize = 64;
    const MEMO_UNIQUE: usize = 4;
    const SYMBOLS_PER_RANK: usize = 20_000;
    let dup_unique: Vec<Vec<u32>> = (0..MEMO_UNIQUE as u32)
        .map(|u| {
            let mut s = trace_like_sequence(SYMBOLS_PER_RANK);
            s.push(1_000 + u);
            s
        })
        .collect();
    let dup_heavy: Vec<Vec<u32>> =
        (0..MEMO_RANKS).map(|r| dup_unique[r % MEMO_UNIQUE].clone()).collect();
    let all_unique: Vec<Vec<u32>> = (0..MEMO_RANKS as u32)
        .map(|r| {
            let mut s = trace_like_sequence(SYMBOLS_PER_RANK);
            s.push(1_000 + r);
            s
        })
        .collect();
    for (phase, seqs) in
        [("sequitur_memo_dup64", &dup_heavy), ("sequitur_memo_uniq64", &all_unique)]
    {
        for memo in [false, true] {
            for &w in &WIDTHS {
                let tag = if memo { "memo" } else { "raw" };
                let (mean_s, min_s) = siesta_par::with_threads(w, || {
                    bench(&format!("{phase}_{tag}_{w}t"), cfg.warmup, cfg.iters, || {
                        build_rank_grammars(black_box(seqs), memo)
                    })
                });
                points.push(Point { phase, memo: Some(memo), threads: w, mean_s, min_s });
            }
        }
    }
    let uniq64_1t_mean_ms = points
        .iter()
        .find(|p| p.phase == "sequitur_memo_uniq64" && p.memo == Some(true) && p.threads == 1)
        .map(|p| p.mean_s * 1e3)
        .unwrap_or(f64::NAN);

    // ---- Phase 2: main-rule clustering.
    // 96 variants in 8 families: within-family probes are cheap hits,
    // cross-family probes run Myers to the distance bound and miss — the
    // dominant cost when many ranks diverge. Batched representative
    // probes fan out across the pool (fixed batch size, so the evaluated
    // work-set is width-independent).
    let variants = cluster_variants(8, 12, 512);
    for &w in &WIDTHS {
        let (mean_s, min_s) = siesta_par::with_threads(w, || {
            bench(&format!("cluster_mains_96_{w}t"), cfg.warmup, cfg.iters, || {
                cluster_by_edit_distance(black_box(&variants), 0.3)
            })
        });
        points.push(Point { phase: "cluster_mains_96", memo: None, threads: w, mean_s, min_s });
    }

    // ---- Phase 3: full grammar merge with a heavy LCS main-rule tree.
    // 64 long, nearly identical mains collapse into one cluster, so the
    // balanced pairwise merge tree does 63 real Myers merges.
    let grammars = divergent_main_grammars(64, 4_000);
    for &w in &WIDTHS {
        let (mean_s, min_s) = siesta_par::with_threads(w, || {
            bench(&format!("lcs_merge_64_{w}t"), cfg.warmup, cfg.iters, || {
                merge_grammars(black_box(&grammars), &MergeConfig::default())
            })
        });
        points.push(Point { phase: "lcs_merge_64", memo: None, threads: w, mean_s, min_s });
    }

    let path = if cfg.quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grammar_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grammar.json")
    };
    write_json(
        path,
        &points,
        &[
            ("sequitur_memo_dup64", MEMO_UNIQUE, MEMO_RANKS),
            ("sequitur_memo_uniq64", MEMO_RANKS, MEMO_RANKS),
        ],
        uniq64_1t_mean_ms,
    );
}
