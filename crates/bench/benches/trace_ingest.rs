//! Trace-ingest bench: events/s and peak memory, streaming vs materialized.
//!
//! Drives the PMPI recorder directly — synthetic `HookCtx` + `MpiCall`
//! records in the shape of a 2D halo exchange (two isend / two irecv /
//! waitall / allreduce per iteration, one clustered compute interval each)
//! — so the numbers isolate *ingest*: normalization, hash-consing, and the
//! sequence sink, with no simulator in the loop. The streaming sink feeds
//! each rank's online Sequitur through a bounded buffer; the materialized
//! sink stores every id. At 65 536 ranks the flat id sequences are the
//! dominant allocation, which is exactly what streaming exists to avoid.
//!
//! ```sh
//! cargo bench -p siesta-bench --bench trace_ingest            # full
//! cargo bench -p siesta-bench --bench trace_ingest -- --quick # CI smoke
//! ```
//!
//! Writes `BENCH_trace.json` (format v2) for `scripts/check_bench.py`:
//!
//! * an ingest-throughput floor on the streaming path (the production
//!   default must not regress);
//! * a peak-RSS ceiling on the streaming sweep;
//! * a floor on materialized-RSS / streaming-RSS — the acceptance claim
//!   that streaming holds less memory than materialization at 64k ranks.
//!   Streaming runs **first**: `VmHWM` is a process-lifetime high-water
//!   mark, so the ordering makes the ratio conservative (if materialized
//!   never out-allocates streaming, the ratio reads 1.0 and the gate
//!   fails — which is the regression it exists to catch).

use std::sync::Arc;
use std::time::Instant;

use siesta_mpisim::{CommId, HookCtx, MpiCall, PmpiHook};
use siesta_perfmodel::CounterVec;
use siesta_trace::{Recorder, TraceConfig};

struct Config {
    quick: bool,
    ranks: usize,
    iters: usize,
    stream_buf: usize,
    reps: usize,
}

impl Config {
    fn detect() -> Config {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("SIESTA_BENCH_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Config { quick, ranks: 4096, iters: 96, stream_buf: 256, reps: 2 }
        } else {
            Config { quick, ranks: 65_536, iters: 160, stream_buf: 256, reps: 2 }
        }
    }

    /// Events ingested per run: per rank and iteration, six communication
    /// records plus one clustered compute interval.
    fn total_events(&self) -> usize {
        self.ranks * self.iters * 7
    }
}

/// Feed one rank's whole call stream through the hook, the way the
/// runtime would: cumulative counters advance once per iteration (one
/// compute cluster), then the halo calls post in program order.
fn drive_rank(rec: &Recorder, me: usize, ranks: usize, iters: usize) {
    let right = (me + 1) % ranks;
    let left = (me + ranks - 1) % ranks;
    let step = CounterVec::from_array([5_000.0, 120.0, 30.0, 65_536.0, 400.0, 12.0]);
    let mut counters = CounterVec::default();
    let mut call_seq = 0u32;
    let mut post = |counters: CounterVec, call: &MpiCall| {
        let ctx = HookCtx {
            rank: me,
            clock_ns: 0.0,
            counters,
            comm_rank: me,
            comm_size: ranks,
            call_start_ns: 0.0,
            wait_ns: 0.0,
            call_seq,
        };
        call_seq += 1;
        rec.post(&ctx, call);
    };
    for _ in 0..iters {
        counters += step;
        post(counters, &MpiCall::Isend { comm: CommId::WORLD, dest: right, tag: 7, bytes: 4096, req: 1 });
        post(counters, &MpiCall::Isend { comm: CommId::WORLD, dest: left, tag: 7, bytes: 4096, req: 2 });
        post(counters, &MpiCall::Irecv { comm: CommId::WORLD, src: left, tag: 7, bytes: 4096, req: 3 });
        post(counters, &MpiCall::Irecv { comm: CommId::WORLD, src: right, tag: 7, bytes: 4096, req: 4 });
        post(counters, &MpiCall::Waitall { reqs: vec![1, 2, 3, 4] });
        post(counters, &MpiCall::Allreduce { comm: CommId::WORLD, bytes: 8 });
    }
}

/// One full ingest run; returns wall seconds. The recorder (and with it
/// every per-rank sequence, buffer, and grammar) stays live until after
/// the finish call, so the RSS high-water mark covers the whole run.
fn run_once(cfg: &Config, stream: bool) -> f64 {
    let config = TraceConfig { stream_buf: cfg.stream_buf, ..TraceConfig::default() };
    let rec = Arc::new(if stream {
        Recorder::new_streaming(cfg.ranks, config)
    } else {
        Recorder::new(cfg.ranks, config)
    });
    let t0 = Instant::now();
    for me in 0..cfg.ranks {
        drive_rank(&rec, me, cfg.ranks, cfg.iters);
    }
    let ingested = if stream {
        rec.finish_streamed().total_events()
    } else {
        rec.finish().total_events()
    };
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(ingested, cfg.total_events(), "ingest event count drifted");
    dt
}

struct ModeResult {
    mean_s: f64,
    min_s: f64,
    events_per_sec: f64,
    peak_rss: u64,
}

fn run_mode(cfg: &Config, stream: bool) -> ModeResult {
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..cfg.reps {
        let dt = run_once(cfg, stream);
        total += dt;
        min = min.min(dt);
    }
    ModeResult {
        mean_s: total / cfg.reps as f64,
        min_s: min,
        events_per_sec: cfg.total_events() as f64 / min,
        peak_rss: siesta_obs::peak_rss_bytes().unwrap_or(0),
    }
}

fn main() {
    let cfg = Config::detect();
    println!(
        "trace_ingest synthetic-halo2d ranks={} iters={} stream_buf={} ({} reps{})",
        cfg.ranks,
        cfg.iters,
        cfg.stream_buf,
        cfg.reps,
        if cfg.quick { ", quick" } else { "" }
    );
    println!(
        "{:>13}  {:>10}  {:>10}  {:>13}  {:>10}",
        "mode", "mean ms", "min ms", "events/s", "peak RSS"
    );

    // Streaming first — see the module doc for why the order matters.
    let mut points = String::new();
    let mut report = |label: &str, r: &ModeResult| {
        println!(
            "{label:>13}  {:>10.1}  {:>10.1}  {:>13.0}  {:>8.1} MB",
            r.mean_s * 1e3,
            r.min_s * 1e3,
            r.events_per_sec,
            r.peak_rss as f64 / (1024.0 * 1024.0)
        );
        if !points.is_empty() {
            points.push(',');
        }
        points.push_str(&format!(
            "\n    {{\"phase\": \"{label}\", \"mean_ms\": {:.3}, \"min_ms\": {:.3}, \
             \"events_per_sec\": {:.0}, \"peak_rss_bytes\": {}}}",
            r.mean_s * 1e3,
            r.min_s * 1e3,
            r.events_per_sec,
            r.peak_rss
        ));
    };
    let streaming = run_mode(&cfg, true);
    report("streaming", &streaming);
    let materialized = run_mode(&cfg, false);
    report("materialized", &materialized);

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let stream_gb = streaming.peak_rss as f64 / GB;
    let mat_gb = materialized.peak_rss as f64 / GB;
    let rss_ratio = if streaming.peak_rss > 0 {
        materialized.peak_rss as f64 / streaming.peak_rss as f64
    } else {
        0.0
    };

    // Floors under the recorded values with regression margin; the RSS
    // ratio floor is the acceptance claim itself (streaming must hold
    // meaningfully less than materialization — a ratio collapsing toward
    // 1.0 means the bounded buffer stopped bounding anything).
    let (eps_budget, ratio_budget, rss_cap_gb) =
        if cfg.quick { (1_500_000.0, 1.0, 0.25) } else { (1_500_000.0, 1.25, 0.8) };

    let path = if cfg.quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json")
    };
    let json = format!(
        "{{\n  \"version\": 2,\n  \"bench\": \"trace_ingest\",\n  \"mode\": \"{}\",\n  \
         \"host_parallelism\": {},\n  \"workload\": \"synthetic-halo2d\",\n  \
         \"ranks\": {},\n  \"iters\": {},\n  \"stream_buf\": {},\n  \"reps\": {},\n  \
         \"total_events\": {},\n  \
         \"events_per_sec_streaming\": {:.0},\n  \
         \"budget_min_events_per_sec_streaming\": {:.0},\n  \
         \"events_per_sec_materialized\": {:.0},\n  \
         \"peak_rss_streaming_gb\": {:.4},\n  \
         \"budget_max_peak_rss_streaming_gb\": {:.2},\n  \
         \"peak_rss_materialized_gb\": {:.4},\n  \
         \"rss_ratio_materialized_vs_streaming\": {:.4},\n  \
         \"budget_min_rss_ratio_materialized_vs_streaming\": {:.2},\n  \
         \"points\": [{points}\n  ]\n}}\n",
        if cfg.quick { "quick" } else { "full" },
        siesta_par::available_parallelism(),
        cfg.ranks,
        cfg.iters,
        cfg.stream_buf,
        cfg.reps,
        cfg.total_events(),
        streaming.events_per_sec,
        eps_budget,
        materialized.events_per_sec,
        stream_gb,
        rss_cap_gb,
        mat_gb,
        rss_ratio,
        ratio_budget,
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("trace-ingest results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
