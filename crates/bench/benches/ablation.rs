//! Ablation studies backing the design choices called out in DESIGN.md:
//!
//! 1. **Compute-event clustering threshold** (Section 2.3): too tight and
//!    the terminal table explodes; too loose and the replay targets drift.
//! 2. **Main-rule clustering threshold** (Section 2.6.2): merging
//!    dissimilar mains bloats the merged rule; never merging wastes space.
//! 3. **Row normalization of the QP** (eq. 3→4): without it, INS/CYC
//!    dominate the fit and the small metrics (L1_DCM, MSP) go unmodeled.

use siesta_bench::{hr, machine_a, Scale};
use siesta_codegen::replay;
use siesta_core::{counter_error_pct, human_bytes, Siesta, SiestaConfig};
use siesta_grammar::{MergeConfig, Sequitur};
use siesta_perfmodel::KernelDesc;
use siesta_proxy::{solve_block_fit_opts, ProxySearcher};
use siesta_trace::TraceConfig;
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let m = machine_a();

    // ------------------------------------------------------------------
    println!("Ablation 1: compute-event clustering threshold (program: MG)");
    hr(76);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "threshold", "terminals", "size_C", "grammar", "counterErr%"
    );
    hr(76);
    let nprocs = scale.one_nprocs(Program::Mg);
    let original = Program::Mg.run(m, nprocs, size);
    for threshold in [0.02, 0.05, 0.15, 0.40, 0.80] {
        let config = SiestaConfig {
            trace: TraceConfig { cluster_threshold: threshold, ..TraceConfig::default() },
            ..SiestaConfig::default()
        };
        let siesta = Siesta::new(config);
        let (synthesis, _) =
            siesta.synthesize_run(m, nprocs, move |r| Program::Mg.body(size)(r));
        let proxy = replay(&synthesis.program, m);
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>11.2}%",
            threshold,
            synthesis.stats.num_terminals,
            human_bytes(synthesis.stats.size_c_bytes),
            synthesis.stats.grammar_size,
            counter_error_pct(&proxy, &original),
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("Ablation 2: main-rule clustering threshold (program: BT, boundary-heavy)");
    hr(64);
    println!(
        "{:<12} {:>8} {:>12} {:>12}",
        "threshold", "mains", "mainSyms", "size_C"
    );
    hr(64);
    let bt_procs = if scale == Scale::Paper { 64 } else { 16 };
    for threshold in [0.0, 0.1, 0.3, 0.5, 0.9] {
        let config = SiestaConfig {
            merge: MergeConfig { cluster_threshold: threshold },
            ..SiestaConfig::default()
        };
        let siesta = Siesta::new(config);
        let (synthesis, _) =
            siesta.synthesize_run(m, bt_procs, move |r| Program::Bt.body(size)(r));
        let main_syms: usize =
            synthesis.program.mains.iter().map(|mm| mm.body.len()).sum();
        println!(
            "{:<12} {:>8} {:>12} {:>12}",
            threshold,
            synthesis.stats.num_mains,
            main_syms,
            human_bytes(synthesis.stats.size_c_bytes),
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("Ablation 3: QP row normalization (eq. 3→4)");
    hr(70);
    println!(
        "{:<26} {:>18} {:>18}",
        "target kernel", "normalized err%", "unnormalized err%"
    );
    hr(70);
    let searcher = ProxySearcher::new(&m);
    let kernels = [
        ("dense stencil", KernelDesc::stencil(80_000.0, 6.0, 2e6)),
        ("divide-heavy", KernelDesc::divide_heavy(30_000.0, 2.0, 1e6)),
        ("integer scatter", KernelDesc::integer_scatter(60_000.0, 6e6)),
        ("bookkeeping", KernelDesc::bookkeeping(50_000.0)),
    ];
    for (name, kernel) in kernels {
        let target = m.cpu().counters(&kernel);
        let t = target.as_array();
        let mut errs = [0.0f64; 2];
        for (slot, normalize) in [(0, true), (1, false)] {
            let fit = solve_block_fit_opts(searcher.b_matrix(), &t, normalize);
            // Evaluate with the mean relative error over the six metrics.
            let mut pred = [0.0f64; 6];
            #[allow(clippy::needless_range_loop)] // i indexes two matrices
            for i in 0..6 {
                pred[i] = (0..11).map(|j| searcher.b_matrix()[i][j] * fit.x[j]).sum();
            }
            let err: f64 = (0..6)
                .filter(|&i| t[i] > 1.0)
                .map(|i| (pred[i] - t[i]).abs() / t[i])
                .sum::<f64>()
                / 6.0;
            errs[slot] = 100.0 * err;
        }
        println!("{:<26} {:>17.2}% {:>17.2}%", name, errs[0], errs[1]);
    }
    println!();
    println!("(expected: unnormalized fits sacrifice L1_DCM/MSP accuracy to INS/CYC magnitude)");

    // ------------------------------------------------------------------
    println!();
    println!("Ablation 4: run-length extension of Sequitur (constraint 3)");
    hr(72);
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "program", "events", "RLE grammar", "classic", "saving"
    );
    hr(72);
    let siesta = Siesta::new(SiestaConfig::default());
    for program in [Program::Sweep3d, Program::Sp, Program::Mg, Program::Cg] {
        let n = scale.one_nprocs(program);
        let (trace, _) = siesta.trace_run(m, n, move |r| program.body(size)(r));
        let global = siesta_trace::merge_tables(trace);
        let events: usize = global.seqs.iter().map(|s| s.len()).sum();
        let rle: usize = global.seqs.iter().map(|s| Sequitur::build(s).size()).sum();
        let classic: usize =
            global.seqs.iter().map(|s| Sequitur::build_classic(s).size()).sum();
        println!(
            "{:<10} {:>10} {:>14} {:>14} {:>9.1}x",
            program.name(),
            events,
            rle,
            classic,
            classic as f64 / rle.max(1) as f64
        );
    }
    println!();
    println!("(paper/Omnis'IO: regular loops cost O(1) grammar space with powers vs O(log n) without)");
}
