//! Figure 7 — robustness to MPI implementation changes.
//!
//! Proxies are generated under OpenMPI on platform A, then executed under
//! OpenMPI, MPICH, and MVAPICH. Siesta's lossless communication lets it
//! track each implementation's timing; ScalaBench's histogram-relaxed
//! replay does not (and it cannot generate the FLASH programs at all).

use siesta_baselines::scalabench;
use siesta_bench::{hr, machine_a, Scale};
use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let gen_machine = machine_a();
    println!(
        "Figure 7: execution time under different MPI implementations (generated under openmpi)  ({scale:?})"
    );
    hr(96);
    println!(
        "{:<10} {:>8} | {:>9} {:>9} {:>6} {:>9} {:>6} | per-flavor",
        "Program", "Flavor", "Original", "Siesta", "err%", "ScalaB", "err%"
    );
    hr(96);
    let mut siesta_errs = Vec::new();
    let mut scala_errs = Vec::new();
    for program in Program::ALL {
        let nprocs = scale.one_nprocs(program);
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) =
            siesta.synthesize_run(gen_machine, nprocs, move |r| program.body(size)(r));
        let scala = scalabench::trace_and_synthesize(gen_machine, nprocs, move |r| {
            program.body(size)(r)
        });
        for flavor in MpiFlavor::ALL {
            let m = Machine::new(platform_a(), flavor);
            let original = program.run(m, nprocs, size);
            let t_orig = original.elapsed_ms();
            let proxy = replay(&synthesis.program, m);
            let e_siesta = 100.0 * proxy.time_error(&original);
            siesta_errs.push(e_siesta);
            let (scala_txt, err_txt) = match &scala {
                Ok(app) => {
                    let t = app.replay(m).elapsed_ms();
                    let e = 100.0 * (t - t_orig).abs() / t_orig;
                    scala_errs.push(e);
                    (format!("{t:9.2}"), format!("{e:5.1}%"))
                }
                Err(_) => ("     fail".to_string(), "    -".to_string()),
            };
            println!(
                "{:<10} {:>8} | {:>9.2} {:>9.2} {:>5.1}% {} {}",
                program.name(),
                flavor.name(),
                t_orig,
                proxy.elapsed_ms(),
                e_siesta,
                scala_txt,
                err_txt,
            );
        }
    }
    hr(96);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "Mean error across implementations: Siesta {:.2}%   ScalaBench {:.2}%",
        mean(&siesta_errs),
        mean(&scala_errs)
    );
    println!("Paper reference: Siesta 5.78%, ScalaBench 33.58%.");
}
