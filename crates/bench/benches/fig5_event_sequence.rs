//! Figure 5 — MINIME vs Siesta on a *sequence* of computation events.
//!
//! Each clustered computation event of the trace is mimicked separately;
//! the per-event proxies are summed (weighted by occurrence count) and the
//! total is compared against the original computation. The paper's point:
//! fitting heterogeneous events individually is where the QP fit pulls
//! clearly ahead of iterative ratio matching.

use siesta_bench::{hr, machine_a, Scale};
use siesta_core::{Siesta, SiestaConfig};
use siesta_perfmodel::CounterVec;
use siesta_proxy::{Minime, ProxySearcher};
use siesta_trace::{merge_tables, EventRecord};
use siesta_workloads::Program;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size();
    let m = machine_a();
    let searcher = ProxySearcher::new(&m);
    let minime = Minime::new(&m);
    let siesta = Siesta::new(SiestaConfig::default());

    println!("Figure 5: sequence of computation events — summed proxies vs Origin  ({scale:?})");
    hr(78);
    println!(
        "{:<10} {:>8} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "Program", "Events", "Origin-INS", "miniErr%", "siesErr%", "miniRat%", "siesRat%"
    );
    hr(78);
    let mut totals = (0.0, 0.0, 0.0, 0.0);
    for program in Program::ALL {
        let nprocs = scale.one_nprocs(program);
        let (trace, _) = siesta.trace_run(m, nprocs, move |r| program.body(size)(r));
        let global = merge_tables(trace);
        // Occurrence counts per terminal id (over all ranks).
        let mut occurrences = vec![0u64; global.table.len()];
        for seq in &global.seqs {
            for &id in seq {
                occurrences[id as usize] += 1;
            }
        }
        let mut origin = CounterVec::ZERO;
        let mut siesta_sum = CounterVec::ZERO;
        let mut minime_sum = CounterVec::ZERO;
        let mut n_events = 0usize;
        for (id, rec) in global.table.iter().enumerate() {
            if let EventRecord::Compute(stats) = rec {
                n_events += 1;
                let target = stats.mean();
                let weight = occurrences[id] as f64;
                origin += target * weight;
                let sp = searcher.search(&target);
                siesta_sum += searcher.predict(&sp, &m) * weight;
                let mp = minime.synthesize(&target, &m);
                minime_sum += mp.counters_on(m.cpu(), minime.blocks()) * weight;
            }
        }
        let s_err = 100.0 * siesta_sum.mean_relative_error(&origin);
        let m_err = 100.0 * minime_sum.mean_relative_error(&origin);
        let s_rat = 100.0 * Minime::ratio_error(&siesta_sum, &origin);
        let m_rat = 100.0 * Minime::ratio_error(&minime_sum, &origin);
        totals.0 += m_err;
        totals.1 += s_err;
        totals.2 += m_rat;
        totals.3 += s_rat;
        println!(
            "{:<10} {:>8} {:>10.2e} | {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}%",
            program.name(),
            n_events,
            origin.ins,
            m_err,
            s_err,
            m_rat,
            s_rat,
        );
    }
    hr(78);
    let n = Program::ALL.len() as f64;
    println!(
        "Means: six-metric error  MINIME {:.2}% vs Siesta {:.2}%;  ratio error  MINIME {:.2}% vs Siesta {:.2}%",
        totals.0 / n,
        totals.1 / n,
        totals.2 / n,
        totals.3 / n
    );
    println!("(paper: on per-event sequences Siesta has clearly higher similarity than MINIME)");
}
