//! Criterion micro-benchmarks of the pipeline's algorithmic components.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use siesta_core::{Siesta, SiestaConfig};
use siesta_grammar::{lcs, merge_grammars, MergeConfig, Sequitur};
use siesta_perfmodel::{platform_a, KernelDesc, Machine, MpiFlavor};
use siesta_proxy::{solve_block_fit, ProxySearcher};
use siesta_trace::{merge_tables, Recorder, TraceConfig};
use siesta_workloads::{ProblemSize, Program};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// A trace-like sequence: nested loops with occasional irregularities.
fn trace_like_sequence(n: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(n);
    let mut i = 0;
    while seq.len() < n {
        seq.extend([1, 2, 3, 2, 4]);
        seq.extend(std::iter::repeat_n(5, 8));
        if i % 10 == 9 {
            seq.extend([20, 21]);
        }
        i += 1;
    }
    seq.truncate(n);
    seq
}

fn bench_sequitur(c: &mut Criterion) {
    let seq = trace_like_sequence(10_000);
    c.bench_function("sequitur_10k_symbols", |b| {
        b.iter(|| Sequitur::build(black_box(&seq)))
    });
}

fn bench_qp(c: &mut Criterion) {
    let m = machine();
    let searcher = ProxySearcher::new(&m);
    let target = m.cpu().counters(&KernelDesc::stencil(50_000.0, 6.0, 2e6));
    let t = target.as_array();
    c.bench_function("qp_block_fit", |b| {
        b.iter(|| solve_block_fit(black_box(searcher.b_matrix()), black_box(&t)))
    });
}

fn bench_lcs(c: &mut Criterion) {
    // Two nearly identical main rules, SPMD-style.
    let a: Vec<u32> = (0..2000).map(|i| i % 37).collect();
    let mut bv = a.clone();
    for i in (0..2000).step_by(97) {
        bv[i] = 999;
    }
    c.bench_function("myers_lcs_2k_similar", |b| {
        b.iter(|| lcs::diff(black_box(&a), black_box(&bv), 200))
    });
}

fn bench_grammar_merge(c: &mut Criterion) {
    let base = trace_like_sequence(2_000);
    let grammars: Vec<_> = (0..16)
        .map(|r| {
            let mut s = base.clone();
            s.push(100 + r);
            Sequitur::build(&s)
        })
        .collect();
    c.bench_function("merge_16_rank_grammars", |b| {
        b.iter(|| merge_grammars(black_box(&grammars), &MergeConfig::default()))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let m = machine();
    c.bench_function("mpisim_mg8_tiny", |b| {
        b.iter(|| Program::Mg.run(m, 8, ProblemSize::Tiny))
    });
}

fn bench_table_merge(c: &mut Criterion) {
    let m = machine();
    c.bench_function("trace_and_table_merge_cg8", |b| {
        b.iter(|| {
            let rec = std::sync::Arc::new(Recorder::new(8, TraceConfig::default()));
            Program::Cg.run_hooked(m, 8, ProblemSize::Tiny, rec.clone());
            merge_tables(rec.finish())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let m = machine();
    c.bench_function("synthesize_bt9_tiny", |b| {
        b.iter(|| {
            let siesta = Siesta::new(SiestaConfig::default());
            siesta.synthesize_run(m, 9, move |r| Program::Bt.body(ProblemSize::Tiny)(r))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sequitur,
        bench_qp,
        bench_lcs,
        bench_grammar_merge,
        bench_simulator,
        bench_table_merge,
        bench_end_to_end
);
criterion_main!(benches);
