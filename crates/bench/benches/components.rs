//! Micro-benchmarks of the pipeline's algorithmic components.
//!
//! Hand-rolled harness (no external benchmark crate: the build environment
//! has no registry access). Each benchmark warms up, then reports the mean
//! and minimum wall time over a fixed number of timed iterations:
//!
//! ```sh
//! cargo bench -p siesta-bench --bench components
//! ```

use std::hint::black_box;
use std::time::Instant;

use siesta_core::{Siesta, SiestaConfig};
use siesta_grammar::{lcs, merge_grammars, MergeConfig, Sequitur};
use siesta_perfmodel::{platform_a, KernelDesc, Machine, MpiFlavor};
use siesta_proxy::{solve_block_fit, ProxySearcher};
use siesta_trace::{merge_tables, Recorder, TraceConfig};
use siesta_workloads::{ProblemSize, Program};

/// Time `f` over `iters` iterations after `warmup` untimed ones; print a
/// criterion-style summary line.
fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters as f64;
    println!(
        "{name:<28} mean {:>10.3} ms   min {:>10.3} ms   ({iters} iters)",
        mean * 1e3,
        min * 1e3
    );
}

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// A trace-like sequence: nested loops with occasional irregularities.
fn trace_like_sequence(n: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(n);
    let mut i = 0;
    while seq.len() < n {
        seq.extend([1, 2, 3, 2, 4]);
        seq.extend(std::iter::repeat_n(5, 8));
        if i % 10 == 9 {
            seq.extend([20, 21]);
        }
        i += 1;
    }
    seq.truncate(n);
    seq
}

fn main() {
    let m = machine();

    let seq = trace_like_sequence(10_000);
    bench("sequitur_10k_symbols", 2, 10, || Sequitur::build(black_box(&seq)));

    let searcher = ProxySearcher::new(&m);
    let target = m.cpu().counters(&KernelDesc::stencil(50_000.0, 6.0, 2e6));
    let t = target.as_array();
    bench("qp_block_fit", 10, 100, || {
        solve_block_fit(black_box(searcher.b_matrix()), black_box(&t))
    });

    // Two nearly identical main rules, SPMD-style.
    let a: Vec<u32> = (0..2000).map(|i| i % 37).collect();
    let mut bv = a.clone();
    for i in (0..2000).step_by(97) {
        bv[i] = 999;
    }
    bench("myers_lcs_2k_similar", 2, 20, || lcs::diff(black_box(&a), black_box(&bv), 200));

    let base = trace_like_sequence(2_000);
    let grammars: Vec<_> = (0..16)
        .map(|r| {
            let mut s = base.clone();
            s.push(100 + r);
            Sequitur::build(&s)
        })
        .collect();
    bench("merge_16_rank_grammars", 2, 10, || {
        merge_grammars(black_box(&grammars), &MergeConfig::default())
    });

    bench("mpisim_mg8_tiny", 1, 10, || Program::Mg.run(m, 8, ProblemSize::Tiny));

    bench("trace_and_table_merge_cg8", 1, 10, || {
        let rec = std::sync::Arc::new(Recorder::new(8, TraceConfig::default()));
        Program::Cg.run_hooked(m, 8, ProblemSize::Tiny, rec.clone());
        merge_tables(rec.finish())
    });

    bench("synthesize_bt9_tiny", 1, 10, || {
        let siesta = Siesta::new(SiestaConfig::default());
        siesta.synthesize_run(m, 9, move |r| Program::Bt.body(ProblemSize::Tiny)(r))
    });
}
