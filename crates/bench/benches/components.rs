//! Micro-benchmarks of the pipeline's algorithmic components.
//!
//! Hand-rolled harness (no external benchmark crate: the build environment
//! has no registry access). Each benchmark warms up, then reports the mean
//! and minimum wall time over a fixed number of timed iterations:
//!
//! ```sh
//! cargo bench -p siesta-bench --bench components
//! ```

use std::hint::black_box;
use std::time::Instant;

use siesta_core::{Siesta, SiestaConfig};
use siesta_grammar::{lcs, merge_grammars, MergeConfig, Sequitur};
use siesta_perfmodel::{platform_a, KernelDesc, Machine, MpiFlavor};
use siesta_proxy::{solve_block_fit, ProxySearcher};
use siesta_trace::{merge_tables, Recorder, TraceConfig};
use siesta_workloads::{ProblemSize, Program};

/// Time `f` over `iters` iterations after `warmup` untimed ones; print a
/// criterion-style summary line and return `(mean_s, min_s)`.
fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters as f64;
    println!(
        "{name:<28} mean {:>10.3} ms   min {:>10.3} ms   ({iters} iters)",
        mean * 1e3,
        min * 1e3
    );
    (mean, min)
}

/// One measured point of the thread-scaling sweep.
struct ScalePoint {
    phase: &'static str,
    threads: usize,
    mean_s: f64,
    min_s: f64,
}

/// Sweep the worker-pool width over `WIDTHS` for one parallel phase and
/// append the points.
fn sweep<T>(
    points: &mut Vec<ScalePoint>,
    phase: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    const WIDTHS: [usize; 4] = [1, 2, 4, 8];
    for &w in &WIDTHS {
        let (mean_s, min_s) =
            siesta_par::with_threads(w, || bench(&format!("{phase}_{w}t"), 1, iters, &mut f));
        points.push(ScalePoint { phase, threads: w, mean_s, min_s });
    }
}

/// Emit the scaling sweep as JSON (hand-rolled: the workspace is
/// registry-free). Speedups are against each phase's 1-thread mean.
fn write_scaling_json(path: &str, points: &[ScalePoint]) {
    // NOTE: on a single-core host (available_parallelism == 1) every
    // speedup_vs_1 hovers around 1.0 by construction — interpret the
    // curves together with host_parallelism.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n  \"points\": [\n",
        siesta_par::available_parallelism()
    ));
    for (i, p) in points.iter().enumerate() {
        let base = points
            .iter()
            .find(|q| q.phase == p.phase && q.threads == 1)
            .map_or(p.mean_s, |q| q.mean_s);
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"threads\": {}, \"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"speedup_vs_1\": {:.3}}}{}\n",
            p.phase,
            p.threads,
            p.mean_s * 1e3,
            p.min_s * 1e3,
            base / p.mean_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => println!("scaling results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// A trace with `events_per_rank` mostly-shared comm events per rank:
/// every 7th event is rank-private, so pair merges both dedup and grow.
fn synthetic_trace(nranks: usize, events_per_rank: usize) -> siesta_trace::Trace {
    use siesta_trace::{CommEvent, EventRecord, RankTraceData, Trace};
    let ranks = (0..nranks)
        .map(|r| {
            let table: Vec<EventRecord> = (0..events_per_rank)
                .map(|i| {
                    let tag = if i % 7 == 0 { (r * 10_000 + i) as i32 } else { i as i32 };
                    EventRecord::Comm(CommEvent::Send {
                        rel: 1,
                        tag,
                        bytes: 64 + (i as u64 % 512),
                        comm: 0,
                    })
                })
                .collect();
            let seq: Vec<u32> = (0..events_per_rank as u32).collect();
            RankTraceData { table, seq, raw_bytes: events_per_rank * 32 }
        })
        .collect();
    Trace { nranks, ranks }
}

/// A trace-like sequence: nested loops with occasional irregularities.
fn trace_like_sequence(n: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(n);
    let mut i = 0;
    while seq.len() < n {
        seq.extend([1, 2, 3, 2, 4]);
        seq.extend(std::iter::repeat_n(5, 8));
        if i % 10 == 9 {
            seq.extend([20, 21]);
        }
        i += 1;
    }
    seq.truncate(n);
    seq
}

fn main() {
    let m = machine();

    let seq = trace_like_sequence(10_000);
    bench("sequitur_10k_symbols", 2, 10, || Sequitur::build(black_box(&seq)));

    let searcher = ProxySearcher::new(&m);
    let target = m.cpu().counters(&KernelDesc::stencil(50_000.0, 6.0, 2e6));
    let t = target.as_array();
    bench("qp_block_fit", 10, 100, || {
        solve_block_fit(black_box(searcher.b_matrix()), black_box(&t))
    });

    // Two nearly identical main rules, SPMD-style.
    let a: Vec<u32> = (0..2000).map(|i| i % 37).collect();
    let mut bv = a.clone();
    for i in (0..2000).step_by(97) {
        bv[i] = 999;
    }
    bench("myers_lcs_2k_similar", 2, 20, || lcs::diff(black_box(&a), black_box(&bv), 200));

    let base = trace_like_sequence(2_000);
    let grammars: Vec<_> = (0..16)
        .map(|r| {
            let mut s = base.clone();
            s.push(100 + r);
            Sequitur::build(&s)
        })
        .collect();
    bench("merge_16_rank_grammars", 2, 10, || {
        merge_grammars(black_box(&grammars), &MergeConfig::default())
    });

    bench("mpisim_mg8_tiny", 1, 10, || Program::Mg.run(m, 8, ProblemSize::Tiny));

    bench("trace_and_table_merge_cg8", 1, 10, || {
        let rec = std::sync::Arc::new(Recorder::new(8, TraceConfig::default()));
        Program::Cg.run_hooked(m, 8, ProblemSize::Tiny, rec.clone());
        merge_tables(rec.finish())
    });

    bench("synthesize_bt9_tiny", 1, 10, || {
        let siesta = Siesta::new(SiestaConfig::default());
        siesta.synthesize_run(m, 9, move |r| Program::Bt.body(ProblemSize::Tiny)(r))
    });

    // Thread-scaling sweep over the pool-parallel phases (1/2/4/8 worker
    // threads), emitted as BENCH_parallel.json for the scaling curves.
    // The differential harness guarantees width changes only wall time,
    // never output, so these all compute identical results.
    let mut points: Vec<ScalePoint> = Vec::new();

    // Per-rank Sequitur over a 32-rank trace, 20k symbols per rank (each
    // rank's sequence ends with a private epilogue, like real SPMD traces).
    let rank_seqs: Vec<Vec<u32>> = (0..32u32)
        .map(|r| {
            let mut s = trace_like_sequence(20_000);
            s.push(1_000 + r);
            s
        })
        .collect();
    sweep(&mut points, "sequitur_per_rank_32x20k", 5, || {
        siesta_par::parallel_map(&rank_seqs, |_, s| Sequitur::build(s))
    });

    // Batch QP solves over 256 distinct targets (no dedup hits, so every
    // solve is real work).
    let targets: Vec<_> = (0..256)
        .map(|i| {
            m.cpu().counters(&KernelDesc::stencil(
                10_000.0 + 137.0 * i as f64,
                2.0 + (i % 7) as f64,
                1e6,
            ))
        })
        .collect();
    sweep(&mut points, "qp_batch_256", 5, || searcher.search_batch(&targets));

    // The log2P table-merge tree over a production-shaped trace: 64 ranks
    // with a few hundred unique events each (mostly shared across ranks,
    // so the absorb path does real dedup work). Recorded tiny-size traces
    // sit below the merge's small-work guard, so they would measure the
    // inline path at every width.
    let traced = synthetic_trace(64, 512);
    sweep(&mut points, "table_merge_synth64x512", 5, || merge_tables(traced.clone()));

    // Anchor to the workspace root regardless of the bench binary's cwd.
    write_scaling_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json"),
        &points,
    );

    // The cross-rank memoization sweep and the rest of the grammar hot path
    // (unique-rank Sequitur, clustering, LCS merge) moved to the dedicated
    // `grammar_hotpath` bench, which emits the budget-gated
    // BENCH_grammar.json (v2).
}
