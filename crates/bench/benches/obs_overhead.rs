//! Observability overhead budget: instrumented-vs-off pipeline time.
//!
//! The flight recorder's contract (DESIGN.md §12) is that measuring the
//! pipeline does not distort it: **<1%** pipeline slowdown with profiling
//! off and **<5%** with `--profile`. This bench measures both, prints a
//! summary, and emits `BENCH_obs.json` for `scripts/check_bench.py` to
//! gate in CI.
//!
//! ```sh
//! cargo bench -p siesta-bench --bench obs_overhead            # full
//! cargo bench -p siesta-bench --bench obs_overhead -- --quick # CI smoke
//! ```
//!
//! Methodology:
//!
//! * **Profile-on overhead** is measured directly: the synthesis pipeline
//!   runs with profiling off and with profiling on (spans drained per
//!   iteration, as the CLI does), and the **minimum** times are compared —
//!   min-of-N is the standard noise floor for micro-measurement.
//! * **Profile-off overhead** cannot be measured the same way (the
//!   baseline would need the instrumentation compiled out), so it is
//!   modeled: a microbench measures the cost of one disabled `span!`
//!   (one relaxed atomic load), which times the spans a run records gives
//!   the total instrumentation cost the uninstrumented pipeline pays.
//! * **Virtual-time profiler overhead** (DESIGN.md §15) is measured the
//!   same interleaved way on the simulator directly: the halo2d
//!   microkernel runs bare and with a [`SimProfiler`] interposed, at 4 096
//!   and 65 536 ranks (512 / 4 096 in quick mode). Budget: **<5%**
//!   slowdown at every size, and process peak RSS under 2 GB with the
//!   full 64k-rank profile resident.
//! * Quick mode shrinks the workload and iteration counts and writes
//!   `BENCH_obs_quick.json` instead, so CI can smoke-test the harness
//!   without inheriting full-run statistics.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::{PmpiHook, SimProfiler, World};
use siesta_perfmodel::{platform_a, platform_b, Machine, MpiFlavor};
use siesta_workloads::halo::halo2d_body;
use siesta_workloads::{ProblemSize, Program};

struct Config {
    quick: bool,
    program: Program,
    nprocs: usize,
    size: ProblemSize,
    warmup: usize,
    iters: usize,
    span_calls: usize,
    /// Rank counts for the simulator-profiler sweep.
    sim_sizes: &'static [usize],
    /// halo2d iterations and repetitions for that sweep.
    sim_iters: usize,
    sim_reps: usize,
}

impl Config {
    fn detect() -> Config {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("SIESTA_BENCH_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Config {
                quick,
                program: Program::Cg,
                nprocs: 8,
                size: ProblemSize::Tiny,
                warmup: 3,
                iters: 40,
                span_calls: 200_000,
                sim_sizes: &[512, 4096],
                sim_iters: 5,
                sim_reps: 3,
            }
        } else {
            Config {
                quick,
                program: Program::Cg,
                nprocs: 16,
                size: ProblemSize::Small,
                warmup: 5,
                iters: 120,
                span_calls: 2_000_000,
                sim_sizes: &[4096, 65_536],
                sim_iters: 10,
                sim_reps: 3,
            }
        }
    }
}

/// Minimum wall time of `f` over `iters` iterations (after `warmup`).
fn min_time<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        min = min.min(t0.elapsed().as_secs_f64());
    }
    min
}

fn main() {
    let cfg = Config::detect();
    let machine = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    let siesta = Siesta::new(SiestaConfig::default());
    let run = |m: Machine| {
        let (synth, _) =
            siesta.synthesize_run(m, cfg.nprocs, move |r| cfg.program.body(cfg.size)(r));
        synth.stats.size_c_bytes
    };

    // Pipeline with profiling off (the production default) vs. on
    // (spans drained per iteration, like the CLI). The two are
    // *interleaved*, one off-iteration then one on-iteration, so slow
    // drift of the host (frequency scaling, cache warmth) hits both
    // measurements equally instead of biasing whichever ran second.
    siesta_obs::set_profiling_enabled(false);
    siesta_obs::drain_spans();
    for _ in 0..cfg.warmup {
        black_box(run(machine));
    }
    let mut off_s = f64::INFINITY;
    let mut profile_s = f64::INFINITY;
    let mut spans_per_run = 0usize;
    for _ in 0..cfg.iters {
        siesta_obs::set_profiling_enabled(false);
        let t0 = Instant::now();
        black_box(run(machine));
        off_s = off_s.min(t0.elapsed().as_secs_f64());

        siesta_obs::set_profiling_enabled(true);
        let t0 = Instant::now();
        black_box(run(machine));
        let dt = t0.elapsed().as_secs_f64();
        spans_per_run = siesta_obs::drain_spans().len();
        profile_s = profile_s.min(dt);
    }
    siesta_obs::set_profiling_enabled(false);
    siesta_obs::drain_spans();

    // Cost of one disabled span! call (what instrumented code pays when
    // nobody is profiling).
    let disabled_span_s = min_time(1, 5, || {
        for i in 0..cfg.span_calls {
            let _g = siesta_obs::span!("disabled-probe", i = i);
            black_box(&_g);
        }
    });
    let disabled_span_ns = disabled_span_s / cfg.span_calls as f64 * 1e9;

    let overhead_profile_pct = ((profile_s - off_s) / off_s * 100.0).max(0.0);
    let overhead_off_pct =
        (disabled_span_ns * spans_per_run as f64) / (off_s * 1e9) * 100.0;

    // ---- Virtual-time profiler: simulator overhead at scale. ---------
    // Bare halo2d vs. the same run with a SimProfiler interposed,
    // interleaved min-of-N like the pipeline measurement above. The
    // profile stays resident during the timed run (that is the contract:
    // recording, not exporting); the snapshot/export happens once,
    // untimed, to report event volume.
    let sim_machine = Machine::new(platform_b(), MpiFlavor::OpenMpi);
    let mut sim_rows = Vec::new();
    println!(
        "sim_profile halo2d iters={} ({} reps{})",
        cfg.sim_iters,
        cfg.sim_reps,
        if cfg.quick { ", quick" } else { "" }
    );
    for &ranks in cfg.sim_sizes {
        let bare = || {
            let t0 = Instant::now();
            let stats =
                World::new(sim_machine, ranks).run(halo2d_body(cfg.sim_iters, 4096));
            black_box(stats.schedule_hash());
            t0.elapsed().as_secs_f64()
        };
        let profiled = || {
            let prof = SimProfiler::new(ranks, 0);
            let hook: Arc<dyn PmpiHook> = prof.clone();
            let t0 = Instant::now();
            let stats = World::new(sim_machine, ranks)
                .with_hook(hook)
                .run(halo2d_body(cfg.sim_iters, 4096));
            let dt = t0.elapsed().as_secs_f64();
            black_box(stats.schedule_hash());
            (dt, prof)
        };
        bare(); // warmup
        let (_, warm_prof) = profiled();
        drop(warm_prof);
        // Shared-host noise drifts on second timescales, so (a) take
        // enough interleaved pairs to cover ~1 s per size, (b) alternate
        // which side runs first so drift penalizes both equally, and
        // (c) snapshot only once — at 64k ranks a snapshot materializes
        // hundreds of MB, and doing that between timed pairs perturbs
        // the allocator mid-measurement.
        let est = bare();
        let mut off = est;
        let mut on = f64::INFINITY;
        let mut events = 0usize;
        let reps = cfg.sim_reps.max((1.0 / est.max(1e-9)).ceil() as usize).clamp(5, 12);
        for i in 0..reps {
            if i % 2 == 0 {
                let (dt, prof) = profiled();
                on = on.min(dt);
                if events == 0 {
                    events = prof.snapshot().events_total();
                }
                drop(prof);
                off = off.min(bare());
            } else {
                off = off.min(bare());
                let (dt, _prof) = profiled();
                on = on.min(dt);
            }
        }
        let pct = ((on - off) / off * 100.0).max(0.0);
        // The <5% budget is the paper-level claim and applies at scale
        // (≥32k ranks), where recording cost is amortized over a large
        // baseline. Mid-size worlds sit right at the LLC boundary — the
        // bare run's working set still fits, and the profiler's event
        // stream displaces it — so their relative overhead is higher
        // even though the absolute cost per event is the same; those
        // rows get a looser 15% regression tripwire.
        let budget = if ranks >= 32_768 { 5.0 } else { 15.0 };
        println!(
            "  {ranks:>7} ranks  off {:>9.2} ms  profiled {:>9.2} ms  {:>8} events  overhead {pct:>7.3} % (budget {budget}%)",
            off * 1e3,
            on * 1e3,
            events,
        );
        sim_rows.push((ranks, off, on, events, pct, budget));
    }
    // `VmHWM` is a process-lifetime high-water mark, so this reading
    // bounds every sweep point including the resident 64k-rank profile.
    let sim_peak_rss = siesta_obs::peak_rss_bytes().unwrap_or(0);
    let sim_peak_rss_pct =
        sim_peak_rss as f64 / (2.0 * 1024.0 * 1024.0 * 1024.0) * 100.0;
    println!(
        "  peak RSS {:.1} MB = {sim_peak_rss_pct:.2} % of the 2 GB ceiling",
        sim_peak_rss as f64 / (1024.0 * 1024.0)
    );

    println!(
        "obs_overhead {} {} ranks {:?} ({} iters)",
        cfg.program.name(),
        cfg.nprocs,
        cfg.size,
        cfg.iters
    );
    println!("  pipeline off      {:>10.3} ms (min)", off_s * 1e3);
    println!("  pipeline profile  {:>10.3} ms (min)", profile_s * 1e3);
    println!("  spans per run     {spans_per_run:>10}");
    println!("  disabled span     {disabled_span_ns:>10.2} ns/call");
    println!("  overhead off      {overhead_off_pct:>10.4} % (budget 1%)");
    println!("  overhead profile  {overhead_profile_pct:>10.4} % (budget 5%)");

    let path = if cfg.quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json")
    };
    // Legacy gate format: every `<metric>_pct` with a sibling
    // `budget_<metric>_pct` is enforced by scripts/check_bench.py.
    let mut sim_json = String::new();
    for &(ranks, off, on, events, pct, budget) in &sim_rows {
        sim_json.push_str(&format!(
            "  \"sim_profile_{ranks}_off_ms\": {:.4},\n  \
             \"sim_profile_{ranks}_on_ms\": {:.4},\n  \
             \"sim_profile_{ranks}_events\": {events},\n  \
             \"sim_profile_overhead_{ranks}_pct\": {pct:.4},\n  \
             \"budget_sim_profile_overhead_{ranks}_pct\": {budget:.1},\n",
            off * 1e3,
            on * 1e3,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \
         \"workload\": \"{}\",\n  \"nprocs\": {},\n  \"size\": \"{:?}\",\n  \"iters\": {},\n  \
         \"pipeline_off_ms\": {:.4},\n  \"pipeline_profile_ms\": {:.4},\n  \
         \"spans_per_run\": {},\n  \"disabled_span_ns\": {:.3},\n  \
         \"overhead_off_pct\": {:.4},\n  \"overhead_profile_pct\": {:.4},\n  \
         \"budget_overhead_off_pct\": 1.0,\n  \"budget_overhead_profile_pct\": 5.0,\n\
         {sim_json}  \
         \"sim_profile_peak_rss_pct\": {sim_peak_rss_pct:.4},\n  \
         \"budget_sim_profile_peak_rss_pct\": 100.0\n}}\n",
        if cfg.quick { "quick" } else { "full" },
        siesta_par::available_parallelism(),
        cfg.program.name(),
        cfg.nprocs,
        cfg.size,
        cfg.iters,
        off_s * 1e3,
        profile_s * 1e3,
        spans_per_run,
        disabled_span_ns,
        overhead_off_pct,
        overhead_profile_pct,
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("overhead results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
