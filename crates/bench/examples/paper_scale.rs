//! Capability check at the paper's largest configuration: SP on 529
//! ranks at the Reference problem size, end to end (original run, traced
//! run, synthesis, proxy replay). Finishes in seconds and reproduces the
//! paper's SP compression band (11,662 MB → 2.7 MB ≈ 4300×).
//!
//! ```sh
//! cargo run --release -p siesta-bench --example paper_scale
//! ```

use siesta_bench::{evaluate, machine_a};
use siesta_core::{counter_error_pct, human_bytes, SiestaConfig};
use siesta_workloads::{ProblemSize, Program};

fn main() {
    let t0 = std::time::Instant::now();
    let cell = evaluate(Program::Sp, machine_a(), 529, ProblemSize::Reference, SiestaConfig::default());
    println!(
        "SP@529 Reference: trace {} size_C {} ratio {:.0}x err {:.2}% (wall {:?})",
        human_bytes(cell.synthesis.stats.raw_trace_bytes),
        human_bytes(cell.synthesis.stats.size_c_bytes),
        cell.synthesis.stats.compression_ratio(),
        counter_error_pct(&cell.proxy, &cell.original),
        t0.elapsed()
    );
}
