//! The persistent parked-worker pool behind [`crate::run_tasks`].
//!
//! The first generation of `siesta-par` spawned scoped threads per
//! parallel region (~100µs per spawn, partially hidden by the small-work
//! guards). This module replaces that with a process-wide pool of
//! **lazily spawned, condvar-parked workers** and a **generation-counted
//! job handoff**:
//!
//! * Workers are spawned on first demand, up to the width a region asks
//!   for (capped at [`POOL_CAP`]), and then live for the process. Between
//!   regions they park on a condvar — an idle pool costs nothing.
//! * A region is published as a generation-stamped job under the pool
//!   mutex. Each worker enters a given generation at most once, and entry
//!   (slot accounting, worker count) happens entirely under the mutex, so
//!   the submitter can retire a job race-free: unpublish, then wait for
//!   the entered-worker count to drain to zero.
//! * The job's control block lives on the **submitter's stack**. That is
//!   sound because every worker access goes through the pool mutex and
//!   the submitter does not return from [`run_region`] until no worker
//!   holds the pointer — the same lifetime argument scoped threads make,
//!   without paying a spawn per region.
//!
//! Determinism is unaffected by any of this: the pool hands out *task
//! indices*, results land in index-addressed slots, and the submitter is
//! always a full participant (a region at width N uses the submitter plus
//! at most N−1 pool workers). See DESIGN.md §9 for the contract.

use std::cell::{Cell, UnsafeCell};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on pool threads. Regions may ask for any width (`--threads
/// 200` is accepted and still bit-identical); the pool simply stops
/// adding helpers here — width is a maximum, never a promise.
const POOL_CAP: usize = 64;

/// Bookkeeping for one in-flight parallel region. Lives on the submitting
/// thread's stack; all access happens under the pool mutex, and the
/// submitter does not return until `workers == 0` with the job
/// unpublished, so worker-held pointers never dangle.
struct JobCtl {
    /// Type-erased runner: claims task indices from the region's shared
    /// counter until exhausted. Lifetime erased to 'static; validity is
    /// guaranteed by the retirement protocol above.
    run: &'static (dyn Fn() + Sync),
    /// Worker entries still allowed (the submitter participates outside
    /// this budget).
    slots_left: usize,
    /// Workers currently inside `run`.
    workers: usize,
}

struct PoolState {
    /// Bumped on every publish; a worker enters each generation at most
    /// once, which is what lets one job hand off to the next without any
    /// per-worker acknowledgement round.
    gen: u64,
    /// The current job, if any: `(generation, control block)`.
    job: Option<(u64, *const UnsafeCell<JobCtl>)>,
    /// Worker threads spawned so far (monotonic, ≤ POOL_CAP).
    spawned: usize,
}

// The raw control-block pointer crosses threads inside the mutex; every
// dereference happens under that mutex (or, for `run`, is kept alive by
// the entered-worker count the mutex protects).
unsafe impl Send for PoolState {}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Submitters wait here for their job's entered workers to drain.
    done_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { gen: 0, job: None, spawned: 0 }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

thread_local! {
    /// Set inside pool workers: a nested parallel region started from a
    /// worker runs inline instead of re-entering (and possibly starving)
    /// its own pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread a pool worker?
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

fn worker_loop() {
    IN_WORKER.with(|w| w.set(true));
    // Register this worker's flight-recorder shard up front (one lock +
    // one chunk allocation, once per thread) so no span recorded inside a
    // parallel region ever pays for registration.
    siesta_obs::register_thread();
    let p = pool();
    let mut seen_gen = 0u64;
    let mut st = p.state.lock().unwrap();
    loop {
        if let Some((gen, ctl)) = st.job {
            if gen != seen_gen {
                seen_gen = gen;
                // Entry accounting under the mutex: once `workers` is
                // incremented the submitter cannot retire the job until we
                // check back in, so `run` stays valid for the whole call.
                let run = unsafe {
                    let c = &mut *(*ctl).get();
                    if c.slots_left > 0 {
                        c.slots_left -= 1;
                        c.workers += 1;
                        Some(c.run)
                    } else {
                        None
                    }
                };
                if let Some(run) = run {
                    drop(st);
                    run();
                    st = p.state.lock().unwrap();
                    unsafe {
                        let c = &mut *(*ctl).get();
                        c.workers -= 1;
                        if c.workers == 0 {
                            p.done_cv.notify_all();
                        }
                    }
                    // Re-examine the state: a new generation may already
                    // be published.
                    continue;
                }
            }
        }
        st = p.work_cv.wait(st).unwrap();
    }
}

/// Run `run` on the calling thread plus up to `extra_workers` pool
/// workers, blocking until every participant has left `run`. The closure
/// must partition its own work (the callers in `lib.rs` claim task
/// indices from a shared atomic counter).
pub(crate) fn run_region(extra_workers: usize, run: &(dyn Fn() + Sync)) {
    let p = pool();
    // Erase the borrow: the retirement protocol below keeps `run` alive
    // for as long as any worker can reach it.
    let run_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(run) };
    let ctl = UnsafeCell::new(JobCtl { run: run_static, slots_left: extra_workers, workers: 0 });

    let gen = {
        let mut st = p.state.lock().unwrap();
        // Lazily grow the pool to demand; threads park between jobs, so
        // previously spawned workers are free to reuse.
        let want = extra_workers.min(POOL_CAP);
        while st.spawned < want {
            st.spawned += 1;
            std::thread::Builder::new()
                .name(format!("siesta-par-{}", st.spawned))
                .spawn(worker_loop)
                .expect("failed to spawn siesta-par pool worker");
        }
        st.gen += 1;
        st.job = Some((st.gen, &ctl as *const _));
        p.work_cv.notify_all();
        st.gen
    };

    // The submitter is a full participant — width 1 of the region is this
    // very call, not a separate code path.
    run();

    // Retire: unpublish (unless a later region already replaced us), then
    // drain workers that entered. After unpublishing under the mutex no
    // new worker can reach `ctl`, and `workers` only moves under the same
    // mutex, so when it reads zero the stack frame is safe to leave.
    let mut st = p.state.lock().unwrap();
    if let Some((g, _)) = st.job {
        if g == gen {
            st.job = None;
        }
    }
    while unsafe { (*ctl.get()).workers } > 0 {
        st = p.done_cv.wait(st).unwrap();
    }
}
