//! `siesta-par` — a deterministic scoped-thread worker pool (std-only).
//!
//! The synthesis pipeline is embarrassingly parallel along three axes:
//! per-rank Sequitur construction, per-unique-event QP solves, and the
//! pair-merges inside each round of the log₂P terminal-table tree. This
//! crate provides the one primitive all three need: run N independent
//! tasks on a bounded set of scoped worker threads and collect results
//! **in index order**, so the output is bit-identical regardless of the
//! thread count or OS scheduling.
//!
//! # Determinism contract
//!
//! * Results land in slots addressed by task index; scheduling order can
//!   never reorder them.
//! * Workers never read the clock, an RNG, or any global mutable state of
//!   the pipeline — the task closure receives only its index (and item).
//! * `threads() == 1` (or a single task) runs inline on the caller's
//!   thread: the sequential path IS the parallel path at width one, not a
//!   separate code path that could drift.
//! * A panicking task propagates to the caller after all workers stop
//!   (std scoped-thread join semantics), never silently drops results.
//!
//! The process-global width is configured once at startup (`--threads N`
//! on the CLI, [`set_threads`] programmatically); `0` means "use
//! [`available_parallelism`]".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configured worker count. 0 = auto (available parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// What the OS reports as usable parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Set the process-global worker count. `0` restores the default
/// (auto-detect). Called by the CLI's `--threads` flag; tests and benches
/// call it directly around measured regions.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The resolved worker count parallel regions will use right now.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => available_parallelism(),
        n => n,
    }
}

/// Run `n_tasks` independent tasks on at most `nthreads` scoped workers;
/// `task(i)` computes result `i`. Results are returned in index order.
///
/// With `nthreads <= 1` or fewer than two tasks everything runs inline on
/// the calling thread — no spawn, no atomics, identical results.
pub fn run_tasks<R, F>(n_tasks: usize, nthreads: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if nthreads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(task).collect();
    }
    let nworkers = nthreads.min(n_tasks);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|_| {
                s.spawn(|| {
                    // Work-steal from a shared counter: coarse tasks with
                    // skewed costs (rank 0's sequence is often the odd one
                    // out) balance better than static chunking.
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        done.push((i, task(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // join() propagates worker panics to the caller.
            for (i, r) in h.join().expect("siesta-par worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Map `f` over `items` in parallel at the configured width; results in
/// input order. `f` receives `(index, &item)`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_tasks(items.len(), threads(), |i| f(i, &items[i]))
}

/// [`parallel_map`] with a small-work guard: runs inline (width 1) when
/// `est_work` — any deterministic, data-derived work estimate the caller
/// picks (symbols, events, solves) — is below `min_work`. Scoped-thread
/// spawns cost ~100µs each; phases below the threshold lose more to
/// spawning than they gain. The guard depends only on the input, never on
/// timing or width, so outputs stay bit-identical either way.
pub fn parallel_map_min_work<T, R, F>(items: &[T], est_work: usize, min_work: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let width = if est_work < min_work { 1 } else { threads() };
    run_tasks(items.len(), width, |i| f(i, &items[i]))
}

/// Like [`parallel_map`] but consuming the items, for tasks that fold or
/// absorb their input (e.g. table-merge pairs). `f` receives
/// `(index, item)`; results in input order.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_owned_min_work(items, usize::MAX, 0, f)
}

/// [`parallel_map_owned`] with the same small-work guard as
/// [`parallel_map_min_work`].
pub fn parallel_map_owned_min_work<T, R, F>(
    items: Vec<T>,
    est_work: usize,
    min_work: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let width = if est_work < min_work { 1 } else { threads() };
    // Hand each owned item to exactly one worker through a per-slot cell;
    // the width-1 path takes them in order with zero contention.
    let cells: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    run_tasks(cells.len(), width, |i| {
        let item = cells[i].lock().unwrap().take().expect("item taken once");
        f(i, item)
    })
}

/// Run `body` with the global width temporarily forced to `n`, restoring
/// the previous setting afterwards (even on panic). Benches and the
/// differential harness use this to sweep thread counts.
pub fn with_threads<R>(n: usize, body: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREADS.swap(n, Ordering::Relaxed));
    body()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_index_ordered_at_any_width() {
        let items: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for w in [1, 2, 3, 8, 64, 200] {
            let got = run_tasks(items.len(), w, |i| items[i] * items[i]);
            assert_eq!(got, expect, "width {w}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |_, x: &u32| *x).is_empty());
        assert_eq!(run_tasks(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let n = 1000;
        let out = run_tasks(n, 7, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    /// Serializes the tests that touch the process-global width.
    static GLOBAL_WIDTH: Mutex<()> = Mutex::new(());

    #[test]
    fn owned_map_consumes_in_order() {
        let _g = GLOBAL_WIDTH.lock().unwrap();
        let items: Vec<String> = (0..50).map(|i| format!("s{i}")).collect();
        let got = with_threads(4, || {
            parallel_map_owned(items.clone(), |i, s| format!("{i}:{s}"))
        });
        let expect: Vec<String> = (0..50).map(|i| format!("{i}:s{i}")).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn with_threads_restores_setting() {
        let _g = GLOBAL_WIDTH.lock().unwrap();
        set_threads(0);
        let inner = with_threads(3, threads);
        assert_eq!(inner, 3);
        assert_eq!(THREADS.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn width_one_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let ids = run_tasks(4, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
