//! `siesta-par` — a deterministic persistent worker pool (std-only).
//!
//! The synthesis pipeline is embarrassingly parallel along three axes:
//! per-rank Sequitur construction, per-unique-event QP solves, and the
//! pair-merges inside each round of the log₂P terminal-table tree. This
//! crate provides the one primitive all three need: run N independent
//! tasks on a bounded set of worker threads and collect results **in
//! index order**, so the output is bit-identical regardless of the
//! thread count or OS scheduling.
//!
//! Workers are spawned lazily on first demand and then **parked between
//! regions** (see [`pool`]): a parallel region costs a mutex hand-off and
//! a condvar wake instead of the ~100µs-per-thread scoped spawns the
//! first version paid. The caller always participates, so width 1 of
//! every region is the caller's own thread.
//!
//! # Determinism contract
//!
//! * Results land in slots addressed by task index; scheduling order can
//!   never reorder them.
//! * Workers never read the clock, an RNG, or any global mutable state of
//!   the pipeline — the task closure receives only its index (and item).
//! * `threads() == 1` (or a single task) runs inline on the caller's
//!   thread: the sequential path IS the parallel path at width one, not a
//!   separate code path that could drift.
//! * A panicking task propagates to the caller after the region drains,
//!   never silently drops results.
//!
//! The process-global width is configured once at startup (`--threads N`
//! on the CLI, [`set_threads`] programmatically); `0` means "use
//! [`available_parallelism`]".

mod pool;

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configured worker count. 0 = auto (available parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// What the OS reports as usable parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Set the process-global worker count. `0` restores the default
/// (auto-detect). Called by the CLI's `--threads` flag; tests and benches
/// call it directly around measured regions.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The resolved worker count parallel regions will use right now.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => available_parallelism(),
        n => n,
    }
}

/// Index-addressed result slots shared with pool workers. Only distinct
/// indices are ever written (each task index is claimed exactly once from
/// the shared counter), and the caller reads them only after the region
/// has drained, so the aliasing is benign.
struct Slots<'a, R>(&'a [UnsafeCell<Option<R>>]);

unsafe impl<R: Send> Sync for Slots<'_, R> {}

impl<R> Slots<'_, R> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw `UnsafeCell` slice inside it.
    fn slot(&self, i: usize) -> *mut Option<R> {
        self.0[i].get()
    }
}

/// Run `n_tasks` independent tasks on the calling thread plus at most
/// `nthreads - 1` pool workers; `task(i)` computes result `i`. Results
/// are returned in index order.
///
/// With `nthreads <= 1` or fewer than two tasks everything runs inline on
/// the calling thread — no hand-off, no atomics, identical results.
pub fn run_tasks<R, F>(n_tasks: usize, nthreads: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // `in_worker`: a nested region started from inside a pool task runs
    // inline rather than waiting on the pool it is itself occupying.
    if nthreads <= 1 || n_tasks <= 1 || pool::in_worker() {
        return (0..n_tasks).map(task).collect();
    }
    let nworkers = nthreads.min(n_tasks);
    let next = AtomicUsize::new(0);
    let slots: Vec<UnsafeCell<Option<R>>> =
        (0..n_tasks).map(|_| UnsafeCell::new(None)).collect();
    let slots_ref = Slots(&slots);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let runner = || {
        // Work-steal from a shared counter: coarse tasks with skewed
        // costs (rank 0's sequence is often the odd one out) balance
        // better than static chunking.
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            match panic::catch_unwind(AssertUnwindSafe(|| task(i))) {
                Ok(r) => unsafe { *slots_ref.slot(i) = Some(r) },
                Err(payload) => {
                    let mut first = panicked.lock().unwrap();
                    if first.is_none() {
                        *first = Some(payload);
                    }
                    // Abandon unclaimed tasks: the whole region is about
                    // to propagate the panic anyway.
                    next.store(n_tasks, Ordering::Relaxed);
                }
            }
        }
    };
    pool::run_region(nworkers - 1, &runner);
    if let Some(payload) = panicked.into_inner().unwrap() {
        panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|c| c.into_inner().expect("every slot filled"))
        .collect()
}

/// Map `f` over `items` in parallel at the configured width; results in
/// input order. `f` receives `(index, &item)`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_tasks(items.len(), threads(), |i| f(i, &items[i]))
}

/// [`parallel_map`] with a small-work guard: runs inline (width 1) when
/// `est_work` — any deterministic, data-derived work estimate the caller
/// picks (symbols, events, solves) — is below `min_work`. Even with the
/// persistent pool a region costs a mutex hand-off and condvar wakes;
/// phases below the threshold lose more to the hand-off than they gain.
/// The guard depends only on the input, never on timing or width, so
/// outputs stay bit-identical either way.
pub fn parallel_map_min_work<T, R, F>(items: &[T], est_work: usize, min_work: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let width = if est_work < min_work { 1 } else { threads() };
    run_tasks(items.len(), width, |i| f(i, &items[i]))
}

/// Like [`parallel_map`] but consuming the items, for tasks that fold or
/// absorb their input (e.g. table-merge pairs). `f` receives
/// `(index, item)`; results in input order.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_owned_min_work(items, usize::MAX, 0, f)
}

/// [`parallel_map_owned`] with the same small-work guard as
/// [`parallel_map_min_work`].
pub fn parallel_map_owned_min_work<T, R, F>(
    items: Vec<T>,
    est_work: usize,
    min_work: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let width = if est_work < min_work { 1 } else { threads() };
    // Hand each owned item to exactly one worker through a per-slot cell;
    // the width-1 path takes them in order with zero contention.
    let cells: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    run_tasks(cells.len(), width, |i| {
        let item = cells[i].lock().unwrap().take().expect("item taken once");
        f(i, item)
    })
}

/// Run `body` with the global width temporarily forced to `n`, restoring
/// the previous setting afterwards (even on panic). Benches and the
/// differential harness use this to sweep thread counts.
pub fn with_threads<R>(n: usize, body: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREADS.swap(n, Ordering::Relaxed));
    body()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_index_ordered_at_any_width() {
        let items: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for w in [1, 2, 3, 8, 64, 200] {
            let got = run_tasks(items.len(), w, |i| items[i] * items[i]);
            assert_eq!(got, expect, "width {w}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |_, x: &u32| *x).is_empty());
        assert_eq!(run_tasks(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let n = 1000;
        let out = run_tasks(n, 7, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    /// Serializes the tests that touch the process-global width.
    static GLOBAL_WIDTH: Mutex<()> = Mutex::new(());

    #[test]
    fn owned_map_consumes_in_order() {
        let _g = GLOBAL_WIDTH.lock().unwrap();
        let items: Vec<String> = (0..50).map(|i| format!("s{i}")).collect();
        let got = with_threads(4, || {
            parallel_map_owned(items.clone(), |i, s| format!("{i}:{s}"))
        });
        let expect: Vec<String> = (0..50).map(|i| format!("{i}:s{i}")).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn with_threads_restores_setting() {
        let _g = GLOBAL_WIDTH.lock().unwrap();
        set_threads(0);
        let inner = with_threads(3, threads);
        assert_eq!(inner, 3);
        assert_eq!(THREADS.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn width_one_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let ids = run_tasks(4, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn pool_survives_many_generations() {
        // Back-to-back regions at shifting widths: exercises the
        // generation hand-off, worker parking/waking, and reuse of a
        // recycled job control block (successive regions share the same
        // stack frame address).
        for round in 0..200usize {
            let w = 2 + round % 7;
            let n = 1 + round % 23;
            let got = run_tasks(n, w, |i| i * round);
            let expect: Vec<usize> = (0..n).map(|i| i * round).collect();
            assert_eq!(got, expect, "round {round}, width {w}");
        }
    }

    #[test]
    fn pool_handles_tasks_slower_than_submitter() {
        // Tasks long enough that parked workers actually wake and help:
        // drains the worker-entry and retirement paths, not just the
        // submitter-does-everything fast path.
        let got = run_tasks(16, 8, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            i * i
        });
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_region_from_a_pool_task_runs_inline() {
        // A task that itself calls run_tasks must not deadlock on the
        // pool it occupies; the nested region runs inline on whichever
        // thread executes the outer task.
        let got = run_tasks(6, 3, |i| run_tasks(4, 8, move |j| i * 10 + j));
        for (i, inner) in got.iter().enumerate() {
            assert_eq!(inner, &(0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panic_after_partial_progress_propagates() {
        // Panic mid-region with other tasks already complete: the payload
        // must surface and the pool must stay usable afterwards.
        let r = std::panic::catch_unwind(|| {
            run_tasks(64, 4, |i| {
                if i == 40 {
                    panic!("mid-region failure");
                }
                i
            })
        });
        assert!(r.is_err());
        // The pool is not poisoned: the next region works.
        assert_eq!(run_tasks(8, 4, |i| i + 1), (1..9).collect::<Vec<_>>());
    }
}
