//! Failure injection: erroneous MPI usage must fail loudly and precisely,
//! not corrupt state or hang.

use siesta_mpisim::{Rank, World};
use siesta_perfmodel::{platform_a, platform_c, Machine, MpiFlavor};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Run a 2-rank world where rank 0 executes `bad` and rank 1 idles; the
/// world panics (propagated from the rank thread).
fn expect_rank0_panic<F: Fn(&mut Rank) + Send + Sync>(bad: F) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        World::new(machine(), 2).run(|rank| {
            if rank.rank() == 0 {
                bad(rank);
            }
        });
    }));
    assert!(result.is_err(), "expected a panic");
}

#[test]
fn double_wait_panics() {
    expect_rank0_panic(|rank| {
        let comm = rank.comm_world();
        let r = rank.isend(&comm, 1, 0, 8);
        rank.wait(r);
        rank.wait(r); // the handle was released
    });
}

#[test]
fn wait_on_foreign_request_value_panics() {
    expect_rank0_panic(|rank| {
        rank.wait(siesta_mpisim::Request(42)); // never allocated
    });
}

#[test]
fn out_of_range_peer_panics() {
    expect_rank0_panic(|rank| {
        let comm = rank.comm_world();
        rank.send(&comm, 7, 0, 8); // world has 2 ranks
    });
}

#[test]
fn oversubscribed_single_node_platform_is_rejected_at_construction() {
    let result = std::panic::catch_unwind(|| {
        World::new(Machine::new(platform_c(), MpiFlavor::OpenMpi), 1000)
    });
    assert!(result.is_err());
}

#[test]
fn zero_rank_world_is_rejected() {
    let result = std::panic::catch_unwind(|| World::new(machine(), 0));
    assert!(result.is_err());
}

#[test]
fn gatherv_with_wrong_count_length_panics() {
    expect_rank0_panic(|rank| {
        let comm = rank.comm_world();
        rank.gatherv(&comm, 0, &[1, 2, 3]); // 3 counts for 2 ranks
    });
}

#[test]
fn alltoallv_with_wrong_count_length_panics() {
    expect_rank0_panic(|rank| {
        let comm = rank.comm_world();
        rank.alltoallv(&comm, &[1], &[1, 2]);
    });
}

#[test]
fn split_color_out_of_subgroup_returns_none_not_panic() {
    // MPI_UNDEFINED-style negative colors are a supported non-error.
    let stats = World::new(machine(), 4).run(|rank| {
        let comm = rank.comm_world();
        let color = if rank.rank() == 0 { -1 } else { 0 };
        let sub = rank.comm_split(&comm, color, 0);
        assert_eq!(sub.is_none(), rank.rank() == 0);
        if let Some(sub) = sub {
            rank.allreduce(&sub, 8);
            rank.comm_free(sub);
        }
    });
    assert!(stats.elapsed_ns() > 0.0);
}

#[test]
fn messages_between_disjoint_tags_do_not_cross() {
    // Send on tag 1; a recv on tag 2 posted first must keep waiting until
    // the matching send arrives later — never steal the tag-1 message.
    let stats = World::new(machine(), 2).run(|rank| {
        let comm = rank.comm_world();
        if rank.rank() == 0 {
            rank.send(&comm, 1, 1, 100);
            rank.send(&comm, 1, 2, 200);
        } else {
            let st2 = rank.recv(&comm, 0, 2, 4096);
            let st1 = rank.recv(&comm, 0, 1, 4096);
            assert_eq!(st2.bytes, 200);
            assert_eq!(st1.bytes, 100);
        }
    });
    assert!(stats.elapsed_ns() > 0.0);
}
