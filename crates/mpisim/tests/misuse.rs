//! Failure injection: erroneous MPI usage must fail loudly and precisely,
//! not corrupt state or hang.

use siesta_mpisim::{Rank, RankFut, World};
use siesta_perfmodel::{platform_a, platform_c, Machine, MpiFlavor};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Run a 2-rank world with `body`; assert it panics (the scheduler resumes
/// a rank state machine's panic on the driving thread).
fn expect_world_panic<F>(body: F)
where
    F: Fn(Rank) -> RankFut<'static> + Send + Sync,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        World::new(machine(), 2).run(body);
    }));
    assert!(result.is_err(), "expected a panic");
}

#[test]
fn double_wait_panics() {
    expect_world_panic(|mut rank| {
        Box::pin(async move {
            if rank.rank() == 0 {
                let comm = rank.comm_world();
                let r = rank.isend(&comm, 1, 0, 8);
                rank.wait(r).await;
                rank.wait(r).await; // the handle was released
            }
            rank
        })
    });
}

#[test]
fn wait_on_foreign_request_value_panics() {
    expect_world_panic(|mut rank| {
        Box::pin(async move {
            if rank.rank() == 0 {
                rank.wait(siesta_mpisim::Request(42)).await; // never allocated
            }
            rank
        })
    });
}

#[test]
fn out_of_range_peer_panics() {
    expect_world_panic(|mut rank| {
        Box::pin(async move {
            if rank.rank() == 0 {
                let comm = rank.comm_world();
                rank.send(&comm, 7, 0, 8).await; // world has 2 ranks
            }
            rank
        })
    });
}

#[test]
fn oversubscribed_single_node_platform_is_rejected_at_construction() {
    let result = std::panic::catch_unwind(|| {
        World::new(Machine::new(platform_c(), MpiFlavor::OpenMpi), 1000)
    });
    assert!(result.is_err());
}

#[test]
fn zero_rank_world_is_rejected() {
    let result = std::panic::catch_unwind(|| World::new(machine(), 0));
    assert!(result.is_err());
}

#[test]
fn gatherv_with_wrong_count_length_panics() {
    expect_world_panic(|mut rank| {
        Box::pin(async move {
            if rank.rank() == 0 {
                let comm = rank.comm_world();
                rank.gatherv(&comm, 0, &[1, 2, 3]).await; // 3 counts for 2 ranks
            }
            rank
        })
    });
}

#[test]
fn alltoallv_with_wrong_count_length_panics() {
    expect_world_panic(|mut rank| {
        Box::pin(async move {
            if rank.rank() == 0 {
                let comm = rank.comm_world();
                rank.alltoallv(&comm, &[1], &[1, 2]).await;
            }
            rank
        })
    });
}

#[test]
fn unmatched_recv_is_a_clean_deadlock_error() {
    // A plain hang in real MPI; here `try_run` reports it as a typed error.
    let err = World::new(machine(), 2)
        .try_run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                if rank.rank() == 1 {
                    rank.recv(&comm, 0, 0, 32).await; // rank 0 never sends
                }
                rank
            })
        })
        .unwrap_err();
    assert_eq!(err.nranks, 2);
    assert_eq!(err.ranks, vec![(1, err.ranks[0].1.clone())]);
}

#[test]
fn split_color_out_of_subgroup_returns_none_not_panic() {
    // MPI_UNDEFINED-style negative colors are a supported non-error.
    let stats = World::new(machine(), 4).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let color = if rank.rank() == 0 { -1 } else { 0 };
            let sub = rank.comm_split(&comm, color, 0).await;
            assert_eq!(sub.is_none(), rank.rank() == 0);
            if let Some(sub) = sub {
                rank.allreduce(&sub, 8).await;
                rank.comm_free(sub);
            }
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
}

#[test]
fn messages_between_disjoint_tags_do_not_cross() {
    // Send on tag 1; a recv on tag 2 posted first must keep waiting until
    // the matching send arrives later — never steal the tag-1 message.
    let stats = World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            if rank.rank() == 0 {
                rank.send(&comm, 1, 1, 100).await;
                rank.send(&comm, 1, 2, 200).await;
            } else {
                let st2 = rank.recv(&comm, 0, 2, 4096).await;
                let st1 = rank.recv(&comm, 0, 1, 4096).await;
                assert_eq!(st2.bytes, 200);
                assert_eq!(st1.bytes, 100);
            }
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
}
