//! Analytic cross-checks of the collective algorithms: measured virtual
//! times must scale the way the algorithms' round structures predict.

use siesta_mpisim::{Rank, RankFut, World};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

fn time_of<F>(p: usize, body: F) -> f64
where
    F: Fn(Rank) -> RankFut<'static> + Send + Sync,
{
    World::new(machine(), p).run(body).elapsed_ns()
}

#[test]
fn binomial_bcast_scales_logarithmically() {
    // Small broadcast → binomial tree → ⌈log₂p⌉ rounds. Quadrupling the
    // ranks adds ~2 rounds, nowhere near 4× the time.
    let bcast20 = |mut r: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let c = r.comm_world();
            for _ in 0..20 {
                r.bcast(&c, 0, 512).await;
            }
            r
        })
    };
    let t8 = time_of(8, bcast20);
    let t64 = time_of(64, bcast20);
    assert!(t64 > t8, "more rounds must cost more");
    assert!(
        t64 < 3.0 * t8,
        "log-scaling violated: t8={t8} t64={t64} (ratio {:.2})",
        t64 / t8
    );
}

#[test]
fn ring_allreduce_is_bandwidth_optimal_in_shape() {
    // Large allreduce → ring: 2(p−1) steps of (bytes/p) chunks, so the
    // *transfer* volume per rank is ~2·bytes regardless of p; time should
    // grow only mildly (latency terms) as p grows at fixed bytes.
    let bytes = 4 << 20;
    let body = move |mut r: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let c = r.comm_world();
            r.allreduce(&c, bytes).await;
            r
        })
    };
    let t8 = time_of(8, body);
    let t32 = time_of(32, body);
    assert!(
        t32 < 2.2 * t8,
        "ring allreduce time exploded with ranks: t8={t8} t32={t32}"
    );
}

#[test]
fn pairwise_alltoall_scales_linearly_in_ranks() {
    // Pairwise alltoall does p−1 rounds of fixed-size exchanges: time is
    // ~linear in p at fixed bytes-per-peer.
    let bytes = 32 << 10;
    let body = move |mut r: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let c = r.comm_world();
            r.alltoall(&c, bytes).await;
            r
        })
    };
    let t8 = time_of(8, body);
    let t32 = time_of(32, body);
    let ratio = t32 / t8;
    assert!(
        (2.0..8.0).contains(&ratio),
        "expected ~31/7≈4.4× scaling, got {ratio:.2} (t8={t8} t32={t32})"
    );
}

#[test]
fn bandwidth_term_dominates_large_messages() {
    // Doubling the payload of a large p2p transfer roughly doubles its
    // time (latency amortized away).
    let p2p = |bytes: usize| {
        time_of(2, move |mut r| {
            Box::pin(async move {
                let c = r.comm_world();
                if r.rank() == 0 {
                    r.send(&c, 1, 0, bytes).await;
                } else {
                    r.recv(&c, 0, 0, bytes).await;
                }
                r
            })
        })
    };
    let t1 = p2p(8 << 20);
    let t2 = p2p(16 << 20);
    let ratio = t2 / t1;
    assert!(
        (1.7..2.3).contains(&ratio),
        "bandwidth scaling off: {ratio:.2}"
    );
}

#[test]
fn latency_term_dominates_small_messages() {
    // Doubling a tiny payload barely moves the time.
    let run = |bytes: usize| {
        time_of(2, move |mut r| {
            Box::pin(async move {
                let c = r.comm_world();
                for tag in 0..50 {
                    if r.rank() == 0 {
                        r.send(&c, 1, tag, bytes).await;
                    } else {
                        r.recv(&c, 0, tag, bytes).await;
                    }
                }
                r
            })
        })
    };
    let t64 = run(64);
    let t128 = run(128);
    assert!(
        t128 < 1.1 * t64,
        "latency regime violated: t64={t64} t128={t128}"
    );
}

#[test]
fn dissemination_barrier_rounds_match_theory() {
    // ⌈log₂p⌉ rounds: barrier(16) ≈ 4 rounds vs barrier(4) ≈ 2 rounds, so
    // roughly 2× once the constant collective overhead is subtracted off.
    let reps = 50;
    let body = move |mut r: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let c = r.comm_world();
            for _ in 0..reps {
                r.barrier(&c).await;
            }
            r
        })
    };
    let t4 = time_of(4, body);
    let t16 = time_of(16, body);
    let ratio = t16 / t4;
    assert!(
        (1.2..3.0).contains(&ratio),
        "barrier round scaling off: {ratio:.2}"
    );
}
