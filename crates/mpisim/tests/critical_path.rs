//! Critical-path extraction on hand-built programs with known longest
//! chains (ISSUE 9 satellite): a send chain, a straggler-dominated
//! collective join, and a Waitall whose completion is pinned on one late
//! sender. Each test asserts the exact path membership, not just the
//! span, so a regression in happens-before matching shows up as a wrong
//! rank/class sequence rather than a small numeric drift.

use std::sync::Arc;

use siesta_mpisim::{critical_path, PmpiHook, Rank, RankFut, SimProfileSnapshot, SimProfiler, World};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

const SEND: u16 = 0;
const RECV: u16 = 1;
const WAITALL: u16 = 5;
const ALLREDUCE: u16 = 10;

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// Run `body` on `n` ranks under a private (non-global) profiler and
/// return the recorded timelines plus the run's elapsed virtual time.
fn profiled_run<F>(n: usize, body: F) -> (SimProfileSnapshot, f64)
where
    F: Fn(Rank) -> RankFut<'static> + Send + Sync,
{
    let prof = SimProfiler::new(n, 0);
    let hook: Arc<dyn PmpiHook> = prof.clone();
    let stats = World::new(machine(), n).with_hook(hook).run(body);
    (prof.snapshot(), stats.elapsed_ns())
}

/// The (rank, class) sequence of a path, for exact-membership asserts.
fn shape(report: &siesta_mpisim::CriticalPathReport) -> Vec<(usize, u16)> {
    report.path.iter().map(|s| (s.rank, s.class)).collect()
}

#[test]
fn send_chain_follows_the_relay() {
    // 0 sleeps then sends to 1; 1 relays to 2. The longest chain is the
    // relay itself: 0's send, 1's recv+send, 2's recv. Rank 2's recv is
    // the last thing to finish, and every hop crosses a matched message.
    let (snap, elapsed) = profiled_run(3, |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            match rank.rank() {
                0 => {
                    rank.sleep_ns(50_000.0);
                    rank.send(&comm, 1, 7, 256).await;
                }
                1 => {
                    rank.recv(&comm, 0, 7, 256).await;
                    rank.send(&comm, 2, 7, 256).await;
                }
                _ => {
                    rank.recv(&comm, 1, 7, 256).await;
                }
            }
            rank
        })
    });
    let report = critical_path(&snap);
    assert_eq!(
        shape(&report),
        vec![(0, SEND), (1, RECV), (1, SEND), (2, RECV)],
        "path should walk the relay end to end: {report:#?}"
    );
    assert!(!report.truncated);
    assert_eq!(report.unmatched, 0);
    assert!(report.span_ns <= elapsed + 1e-6, "span {} > elapsed {elapsed}", report.span_ns);
    // Both recvs blocked on the straggler: the path carries real wait.
    assert!(report.wait_ns > 0.0);
}

#[test]
fn collective_join_hops_to_the_straggler() {
    // Rank 2 arrives late at an allreduce; everyone else waits for it.
    // Whichever rank's allreduce finishes last, the walk must hop to the
    // last-arriving member — rank 2 — and start the chain there.
    let (snap, elapsed) = profiled_run(4, |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            if rank.rank() == 2 {
                rank.sleep_ns(200_000.0);
            }
            rank.allreduce(&comm, 4096).await;
            rank
        })
    });
    let report = critical_path(&snap);
    let s = shape(&report);
    assert!(!report.truncated);
    assert_eq!(report.unmatched, 0);
    assert!(s.iter().all(|&(_, c)| c == ALLREDUCE), "only allreduce events on path: {s:?}");
    assert_eq!(s.first().unwrap().0, 2, "chain must start at the straggler: {s:?}");
    assert!(s.len() <= 2, "straggler + at most one joining rank: {s:?}");
    assert!(report.span_ns <= elapsed + 1e-6);
    // The straggler itself never blocks; its own step carries no wait.
    let first = &report.path[0];
    assert_eq!(first.rank, 2);
    assert_eq!(first.wait_ns, 0.0);
}

#[test]
fn waitall_resolves_to_the_late_sender() {
    // Rank 0 posts two irecvs and waits on both; rank 1 sends at once,
    // rank 2 sends late. The Waitall's completion is pinned on rank 2's
    // send — the path must route through it, not through rank 1.
    let (snap, elapsed) = profiled_run(3, |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            match rank.rank() {
                0 => {
                    let r1 = rank.irecv(&comm, 1, 5, 512);
                    let r2 = rank.irecv(&comm, 2, 6, 512);
                    rank.waitall(&[r1, r2]).await;
                }
                1 => rank.send(&comm, 0, 5, 512).await,
                _ => {
                    rank.sleep_ns(300_000.0);
                    rank.send(&comm, 0, 6, 512).await;
                }
            }
            rank
        })
    });
    let report = critical_path(&snap);
    let s = shape(&report);
    assert!(!report.truncated);
    assert_eq!(report.unmatched, 0);
    assert_eq!(s.last().unwrap(), &(0, WAITALL), "path ends at the waitall: {s:?}");
    assert!(s.contains(&(2, SEND)), "path must route through the late sender: {s:?}");
    assert!(!s.contains(&(1, SEND)), "the prompt sender is off the chain: {s:?}");
    assert!(report.span_ns <= elapsed + 1e-6);
}

#[test]
fn profiling_does_not_perturb_virtual_time() {
    // The profiler charges zero interposition overhead, so the simulated
    // schedule is identical with and without it installed.
    let body = |mut rank: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let comm = rank.comm_world();
            let right = (rank.rank() + 1) % rank.nranks();
            let left = (rank.rank() + rank.nranks() - 1) % rank.nranks();
            rank.sendrecv(&comm, right, 3, 1024, left, 3, 1024).await;
            rank.allreduce(&comm, 64).await;
            rank
        })
    };
    let bare = World::new(machine(), 4).run(body);
    let prof = SimProfiler::new(4, 0);
    let hook: Arc<dyn PmpiHook> = prof.clone();
    let hooked = World::new(machine(), 4).with_hook(hook).run(body);
    assert_eq!(bare.schedule_hash(), hooked.schedule_hash());
    assert_eq!(bare.elapsed_ns(), hooked.elapsed_ns());
    let report = critical_path(&prof.snapshot());
    assert!(report.span_ns <= hooked.elapsed_ns() + 1e-6);
}
