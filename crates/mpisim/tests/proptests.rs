//! Property-based tests for the event scheduler: random MPI programs.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).
//
// The generator builds *globally ordered* programs: a list of rounds, each
// either a matched point-to-point transfer, a collective over the world
// communicator, a barrier, or a comm_split phase (split → subcomm
// allreduce → free). Every rank walks the same list, playing only its own
// part of each round, so the program is deadlock-free by construction —
// which is exactly the property the scheduler must preserve. Sabotaging
// one receive's tag breaks the matching and must be *diagnosed* as a
// deadlock (`try_run` → `Err`), never hang or panic.

use std::sync::Arc;

use proptest::prelude::*;

use siesta_mpisim::{critical_path, PmpiHook, Rank, RankFut, SimProfiler, World};
use siesta_perfmodel::{platform_b, Machine, MpiFlavor};

/// A tag the generator never produces: poisoning a receive with it
/// guarantees the receive can never match.
const POISON_TAG: i32 = 9_999;

fn machine() -> Machine {
    Machine::new(platform_b(), MpiFlavor::OpenMpi)
}

#[derive(Debug, Clone, Copy)]
enum Round {
    /// One matched transfer `from → to` (`from != to`); both sides
    /// blocking, or both non-blocking with an immediate wait.
    P2p { from: usize, to: usize, tag: i32, bytes: usize, nonblocking: bool },
    /// A collective over the world communicator.
    Coll { kind: CollKind, root: usize, bytes: usize },
    Barrier,
    /// `comm_split(color = rank % modulus)` → allreduce in the subcomm →
    /// free. Exercises matching on freshly derived communicators.
    Split { modulus: usize, bytes: usize },
}

#[derive(Debug, Clone, Copy)]
enum CollKind {
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
    Alltoall,
    Scan,
}

fn round_strategy(nranks: usize) -> impl Strategy<Value = Round> {
    prop_oneof![
        4 => (0..nranks, 0..nranks - 1, 0..8i32, 1usize..32_768, any::<bool>()).prop_map(
            move |(from, offset, tag, bytes, nonblocking)| {
                // `to` is drawn from the other ranks by offset, never self.
                let to = (from + 1 + offset) % nranks;
                Round::P2p { from, to, tag, bytes, nonblocking }
            }
        ),
        3 => (0..6usize, 0..nranks, 1usize..16_384).prop_map(move |(k, root, bytes)| {
            let kind = [
                CollKind::Bcast,
                CollKind::Reduce,
                CollKind::Allreduce,
                CollKind::Allgather,
                CollKind::Alltoall,
                CollKind::Scan,
            ][k];
            Round::Coll { kind, root, bytes }
        }),
        1 => Just(Round::Barrier),
        1 => (2..5usize, 1usize..4_096)
            .prop_map(move |(modulus, bytes)| Round::Split { modulus, bytes }),
    ]
}

fn program_strategy() -> impl Strategy<Value = (usize, Vec<Round>)> {
    (2usize..=8).prop_flat_map(|nranks| {
        prop::collection::vec(round_strategy(nranks), 1..24)
            .prop_map(move |rounds| (nranks, rounds))
    })
}

/// Play one rank's part of the script. `sabotage` poisons the *receive*
/// tag of the round at that index (which must be a `P2p`).
async fn run_rounds(rank: &mut Rank, rounds: &[Round], sabotage: Option<usize>) {
    let comm = rank.comm_world();
    let me = rank.rank();
    for (i, round) in rounds.iter().enumerate() {
        match *round {
            Round::P2p { from, to, tag, bytes, nonblocking } => {
                let recv_tag = if sabotage == Some(i) { POISON_TAG } else { tag };
                if me == from {
                    if nonblocking {
                        let r = rank.isend(&comm, to, tag, bytes);
                        rank.wait(r).await;
                    } else {
                        rank.send(&comm, to, tag, bytes).await;
                    }
                } else if me == to {
                    if nonblocking {
                        let r = rank.irecv(&comm, from, recv_tag, bytes);
                        rank.wait(r).await;
                    } else {
                        rank.recv(&comm, from, recv_tag, bytes).await;
                    }
                }
            }
            Round::Coll { kind, root, bytes } => match kind {
                CollKind::Bcast => rank.bcast(&comm, root, bytes).await,
                CollKind::Reduce => rank.reduce(&comm, root, bytes).await,
                CollKind::Allreduce => rank.allreduce(&comm, bytes).await,
                CollKind::Allgather => rank.allgather(&comm, bytes).await,
                CollKind::Alltoall => rank.alltoall(&comm, bytes).await,
                CollKind::Scan => rank.scan(&comm, bytes).await,
            },
            Round::Barrier => rank.barrier(&comm).await,
            Round::Split { modulus, bytes } => {
                let sub = rank
                    .comm_split(&comm, (me % modulus) as i64, me as i64)
                    .await
                    .expect("non-negative color always yields a communicator");
                rank.allreduce(&sub, bytes).await;
                rank.comm_free(sub);
            }
        }
    }
}

fn body(
    rounds: Arc<Vec<Round>>,
    sabotage: Option<usize>,
) -> impl Fn(Rank) -> RankFut<'static> + Send + Sync {
    move |mut rank: Rank| -> RankFut<'static> {
        let rounds = rounds.clone();
        Box::pin(async move {
            run_rounds(&mut rank, &rounds, sabotage).await;
            rank
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Matched programs never deadlock: every round is either collective
    /// (all ranks participate) or a paired send/recv, so the scheduler
    /// must always drive the world to completion.
    #[test]
    fn matched_programs_complete((nranks, rounds) in program_strategy()) {
        let rounds = Arc::new(rounds);
        let stats = World::new(machine(), nranks)
            .try_run(body(rounds.clone(), None))
            .expect("matched program reported deadlock");
        prop_assert_eq!(stats.per_rank.len(), nranks);
        // Virtual time moved unless the program was a pure no-op for
        // every rank (cannot happen: every round touches all or two ranks
        // and rounds is non-empty — except a P2p in a 2-rank world still
        // involves both, so some rank always advances).
        prop_assert!(stats.elapsed_ns() > 0.0);
    }

    /// Breaking one receive's tag must be *diagnosed*: `try_run` returns
    /// the deadlock report (with the stuck ranks) instead of hanging.
    #[test]
    fn mismatched_programs_are_diagnosed(
        (nranks, rounds) in program_strategy(),
        pick in any::<prop::sample::Index>(),
    ) {
        let p2ps: Vec<usize> = rounds
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Round::P2p { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!p2ps.is_empty());
        let sabotage = p2ps[pick.index(p2ps.len())];
        let rounds = Arc::new(rounds);
        let err = World::new(machine(), nranks)
            .try_run(body(rounds.clone(), Some(sabotage)))
            .expect_err("poisoned receive cannot complete, deadlock must be reported");
        prop_assert_eq!(err.nranks, nranks);
        prop_assert!(!err.ranks.is_empty(), "deadlock report names no ranks");
        prop_assert!(err.ranks.len() <= nranks);
    }

    /// Non-overtaking: two sends on the same (source, dest, comm, tag)
    /// arrive in program order, so a receiver draining K same-tag
    /// messages sees the sender's byte sizes in the exact order sent.
    #[test]
    fn p2p_messages_do_not_overtake(
        sizes in prop::collection::vec(1usize..16_384, 1..16),
        tag in 0..4i32,
        nonblocking in prop::collection::vec(any::<bool>(), 16),
    ) {
        let sizes = Arc::new(sizes);
        let nonblocking = Arc::new(nonblocking);
        let stats = World::new(machine(), 2).run(move |mut rank: Rank| -> RankFut<'static> {
            let sizes = sizes.clone();
            let nonblocking = nonblocking.clone();
            Box::pin(async move {
                let comm = rank.comm_world();
                if rank.rank() == 0 {
                    for (i, &bytes) in sizes.iter().enumerate() {
                        if nonblocking[i] {
                            let r = rank.isend(&comm, 1, tag, bytes);
                            rank.wait(r).await;
                        } else {
                            rank.send(&comm, 1, tag, bytes).await;
                        }
                    }
                } else {
                    let mut got = Vec::new();
                    for i in 0..sizes.len() {
                        // Receive buffer is deliberately the max size: the
                        // status must report the *message* size, and order
                        // must come from posting order alone. The receive
                        // mode is drawn independently of the send mode.
                        let status = if nonblocking[sizes.len() - 1 - i] {
                            let r = rank.irecv(&comm, 0, tag, 16_384);
                            rank.wait(r).await
                        } else {
                            rank.recv(&comm, 0, tag, 16_384).await
                        };
                        got.push(status.bytes);
                    }
                    assert_eq!(
                        got.as_slice(),
                        sizes.as_slice(),
                        "same-tag messages overtook each other"
                    );
                }
                rank
            })
        });
        prop_assert_eq!(stats.per_rank.len(), 2);
    }

    /// The critical path is a *chain* through the run: its span can never
    /// exceed the run's total virtual time, and with every message
    /// matched in-world (this generator has no `Sendrecv`, whose merged
    /// intervals can legitimately truncate the walk) it terminates
    /// without truncation. Blocked wait along the path is *not* bounded
    /// by the span — relay chains block concurrently, so per-node waits
    /// overlap by design.
    #[test]
    fn critical_path_span_is_bounded((nranks, rounds) in program_strategy()) {
        let rounds = Arc::new(rounds);
        let prof = SimProfiler::new(nranks, 0);
        let hook: Arc<dyn PmpiHook> = prof.clone();
        let stats = World::new(machine(), nranks)
            .with_hook(hook)
            .try_run(body(rounds.clone(), None))
            .expect("matched program reported deadlock");
        let report = critical_path(&prof.snapshot());
        prop_assert!(!report.truncated, "happens-before walk revisited a node");
        prop_assert!(
            report.span_ns <= stats.elapsed_ns() + 1e-6,
            "critical path span {} exceeds elapsed {}",
            report.span_ns, stats.elapsed_ns()
        );
        prop_assert!(report.span_ns >= 0.0);
        prop_assert!(report.ranks_visited >= 1);
    }

    /// The profiler's artifacts are pure functions of the simulated
    /// program: the rendered critical-path report is byte-identical at
    /// any scheduler pool width.
    #[test]
    fn critical_path_report_is_width_invariant((nranks, rounds) in program_strategy()) {
        let rounds = Arc::new(rounds);
        let report_at = |width: usize| {
            siesta_par::with_threads(width, || {
                let prof = SimProfiler::new(nranks, 0);
                let hook: Arc<dyn PmpiHook> = prof.clone();
                World::new(machine(), nranks)
                    .with_hook(hook)
                    .run(body(rounds.clone(), None));
                critical_path(&prof.snapshot()).render()
            })
        };
        let baseline = report_at(1);
        for width in [2usize, 4] {
            prop_assert_eq!(
                &baseline, &report_at(width),
                "critical-path report diverges at {} threads", width
            );
        }
    }

    /// Run-to-run determinism: the event-schedule hash (per-call virtual
    /// completion clocks folded per rank) is identical across repeated
    /// runs and across scheduler pool widths.
    #[test]
    fn schedule_hash_is_deterministic((nranks, rounds) in program_strategy()) {
        let rounds = Arc::new(rounds);
        let run_at = |width: usize| {
            siesta_par::with_threads(width, || {
                World::new(machine(), nranks).run(body(rounds.clone(), None))
            })
        };
        let baseline = run_at(1);
        let again = run_at(1);
        prop_assert_eq!(baseline.schedule_hash(), again.schedule_hash());
        prop_assert_eq!(
            baseline.elapsed_ns().to_bits(),
            again.elapsed_ns().to_bits()
        );
        for width in [2usize, 4] {
            let wide = run_at(width);
            prop_assert_eq!(
                baseline.schedule_hash(),
                wide.schedule_hash(),
                "schedule hash diverges at {} threads", width
            );
            prop_assert_eq!(
                baseline.elapsed_ns().to_bits(),
                wide.elapsed_ns().to_bits(),
                "virtual time diverges at {} threads", width
            );
        }
    }
}
