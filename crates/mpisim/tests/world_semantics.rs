//! End-to-end semantics of the virtual-time MPI runtime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use siesta_mpisim::{HookCtx, MpiCall, PmpiHook, Rank, RankFut, World};
use siesta_perfmodel::{
    platform_a, platform_b, platform_c, KernelDesc, Machine, MpiFlavor,
};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

/// A ring exchange where every rank sends then receives (even/odd ordering
/// avoids deadlock), followed by a barrier.
fn ring_program(mut rank: Rank) -> RankFut<'static> {
    Box::pin(async move {
        let comm = rank.comm_world();
        let p = rank.nranks();
        let right = (rank.rank() + 1) % p;
        let left = (rank.rank() + p - 1) % p;
        rank.compute(&KernelDesc::stencil(5_000.0, 4.0, 65536.0));
        if rank.rank().is_multiple_of(2) {
            rank.send(&comm, right, 7, 4096).await;
            rank.recv(&comm, left, 7, 4096).await;
        } else {
            rank.recv(&comm, left, 7, 4096).await;
            rank.send(&comm, right, 7, 4096).await;
        }
        rank.barrier(&comm).await;
        rank
    })
}

#[test]
fn runs_are_deterministic() {
    let a = World::new(machine(), 8).run(ring_program);
    let b = World::new(machine(), 8).run(ring_program);
    for (x, y) in a.per_rank.iter().zip(&b.per_rank) {
        assert_eq!(x.finish_ns, y.finish_ns, "rank {} time differs", x.rank);
        assert_eq!(x.counters, y.counters);
        assert_eq!(x.sched_hash, y.sched_hash);
    }
    assert_eq!(a.schedule_hash(), b.schedule_hash());
}

#[test]
fn schedule_hash_is_stable_across_worker_counts() {
    // The whole-run schedule fingerprint must not depend on how many host
    // workers drive the event scheduler.
    let baseline = World::new(machine(), 8).run(ring_program).schedule_hash();
    for threads in [1, 2, 8] {
        let prev = siesta_par::threads();
        siesta_par::set_threads(threads);
        let h = World::new(machine(), 8).run(ring_program).schedule_hash();
        siesta_par::set_threads(prev);
        assert_eq!(h, baseline, "schedule hash drifted at {threads} workers");
    }
}

#[test]
fn barrier_synchronizes_finish_times() {
    // Ranks do very unequal compute, then barrier: finish times converge.
    let stats = World::new(machine(), 6).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let work = (rank.rank() + 1) as f64 * 20_000.0;
            rank.compute(&KernelDesc::stencil(work, 4.0, 65536.0));
            rank.barrier(&comm).await;
            rank
        })
    });
    let max = stats.elapsed_ns();
    for r in &stats.per_rank {
        // Everyone leaves the barrier within a few microseconds of the max.
        assert!(max - r.finish_ns < 50_000.0, "rank {} lags {}", r.rank, max - r.finish_ns);
    }
}

#[test]
fn blocking_send_recv_moves_time_forward() {
    let stats = World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            if rank.rank() == 0 {
                rank.send(&comm, 1, 0, 1 << 20).await; // rendezvous-sized
            } else {
                rank.compute(&KernelDesc::stencil(100_000.0, 4.0, 65536.0));
                let st = rank.recv(&comm, 0, 0, 1 << 20).await;
                assert_eq!(st.source, 0);
                assert_eq!(st.bytes, 1 << 20);
            }
            rank
        })
    });
    // The rendezvous sender must have waited for the late receiver.
    let t0 = stats.per_rank[0].finish_ns;
    let t1 = stats.per_rank[1].finish_ns;
    assert!(t0 > 0.0 && t1 > t0 * 0.5);
}

#[test]
fn nonblocking_overlap_beats_blocking_order() {
    // Exchange with isend/irecv completes in about one transfer time,
    // not two, because the transfers overlap.
    let bytes = 1 << 20;
    let blocking = World::new(machine(), 2).run(move |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let peer = 1 - rank.rank();
            if rank.rank() == 0 {
                rank.send(&comm, peer, 0, bytes).await;
                rank.recv(&comm, peer, 1, bytes).await;
            } else {
                rank.recv(&comm, peer, 0, bytes).await;
                rank.send(&comm, peer, 1, bytes).await;
            }
            rank
        })
    });
    let overlapped = World::new(machine(), 2).run(move |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let peer = 1 - rank.rank();
            let r = rank.irecv(&comm, peer, rank.rank() as i32, bytes);
            let s = rank.isend(&comm, peer, peer as i32, bytes);
            rank.waitall(&[r, s]).await;
            rank
        })
    });
    assert!(
        overlapped.elapsed_ns() < blocking.elapsed_ns(),
        "overlap {} >= blocking {}",
        overlapped.elapsed_ns(),
        blocking.elapsed_ns()
    );
}

#[test]
fn sendrecv_is_deadlock_free_for_large_messages() {
    let stats = World::new(machine(), 4).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let p = rank.nranks();
            let right = (rank.rank() + 1) % p;
            let left = (rank.rank() + p - 1) % p;
            // All ranks sendrecv simultaneously with rendezvous-sized payloads.
            rank.sendrecv(&comm, right, 3, 1 << 20, left, 3, 1 << 20).await;
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
}

#[test]
fn collectives_complete_and_cost_grows_with_size() {
    for p in [4, 7, 16] {
        let small = World::new(machine(), p).run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                rank.allreduce(&comm, 64).await;
                rank
            })
        });
        let large = World::new(machine(), p).run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                rank.allreduce(&comm, 1 << 22).await;
                rank
            })
        });
        assert!(
            large.elapsed_ns() > small.elapsed_ns(),
            "p={p}: large {} <= small {}",
            large.elapsed_ns(),
            small.elapsed_ns()
        );
    }
}

#[test]
fn all_collectives_run_on_non_power_of_two() {
    let stats = World::new(machine(), 6).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.bcast(&comm, 0, 4096).await;
            rank.bcast(&comm, 2, 1 << 20).await; // large → ring under openmpi
            rank.reduce(&comm, 0, 4096).await;
            rank.reduce(&comm, 1, 1 << 20).await;
            rank.allreduce(&comm, 4096).await;
            rank.allreduce(&comm, 1 << 20).await;
            rank.allgather(&comm, 4096).await;
            rank.alltoall(&comm, 256).await;
            rank.alltoall(&comm, 1 << 16).await;
            let sc = vec![100usize; 6];
            rank.alltoallv(&comm, &sc, &sc).await;
            rank.gather(&comm, 0, 4096).await;
            rank.gather(&comm, 3, 4096).await;
            rank.scatter(&comm, 0, 4096).await;
            rank.barrier(&comm).await;
            rank
        })
    });
    assert_eq!(stats.per_rank.len(), 6);
    assert!(stats.elapsed_ns() > 0.0);
    // Everyone made the same number of app-level calls (SPMD).
    let calls = stats.per_rank[0].app_calls;
    assert!(stats.per_rank.iter().all(|r| r.app_calls == calls));
}

#[test]
fn comm_split_partitions_and_communicates() {
    let stats = World::new(machine(), 8).run(|mut rank| {
        Box::pin(async move {
            let world = rank.comm_world();
            let color = (rank.rank() % 2) as i64;
            let sub = rank.comm_split(&world, color, rank.rank() as i64).await.unwrap();
            assert_eq!(sub.size(), 4);
            // Ring within the sub-communicator.
            let right = (sub.rank() + 1) % sub.size();
            let left = (sub.rank() + sub.size() - 1) % sub.size();
            if sub.rank().is_multiple_of(2) {
                rank.send(&sub, right, 1, 512).await;
                rank.recv(&sub, left, 1, 512).await;
            } else {
                rank.recv(&sub, left, 1, 512).await;
                rank.send(&sub, right, 1, 512).await;
            }
            rank.allreduce(&sub, 1024).await;
            rank.comm_free(sub);
            rank.barrier(&world).await;
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
}

#[test]
fn comm_dup_creates_independent_matching_space() {
    let stats = World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let world = rank.comm_world();
            let dup = rank.comm_dup(&world).await;
            assert_ne!(dup.id, world.id);
            let peer = 1 - rank.rank();
            // Same tag on two communicators: messages must not cross.
            if rank.rank() == 0 {
                rank.send(&world, peer, 5, 100).await;
                rank.send(&dup, peer, 5, 200).await;
            } else {
                // Receive in the opposite order: dup first.
                let a = rank.recv(&dup, peer, 5, 4096).await;
                let b = rank.recv(&world, peer, 5, 4096).await;
                assert_eq!(a.bytes, 200);
                assert_eq!(b.bytes, 100);
            }
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
}

#[test]
fn flavors_change_execution_time() {
    let run = |flavor: MpiFlavor| {
        World::new(Machine::new(platform_a(), flavor), 8).run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                for _ in 0..20 {
                    rank.alltoall(&comm, 2048).await;
                    rank.allreduce(&comm, 64 * 1024).await;
                }
                rank
            })
        })
    };
    let t: Vec<f64> = MpiFlavor::ALL.iter().map(|f| run(*f).elapsed_ns()).collect();
    assert!(t[0] != t[1] && t[1] != t[2], "flavors indistinguishable: {t:?}");
}

#[test]
fn knl_platform_is_slower_for_compute_bound_work() {
    let program = |mut rank: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.compute(&KernelDesc::stencil(2_000_000.0, 8.0, 4.0 * 1024.0 * 1024.0));
            rank.barrier(&comm).await;
            rank
        })
    };
    let ta = World::new(Machine::new(platform_a(), MpiFlavor::OpenMpi), 4)
        .run(program)
        .elapsed_ns();
    let tb = World::new(Machine::new(platform_b(), MpiFlavor::OpenMpi), 4)
        .run(program)
        .elapsed_ns();
    assert!(tb > 1.5 * ta, "KNL should be much slower: A={ta} B={tb}");
}

#[test]
fn single_node_platform_rejects_oversubscription() {
    let result = std::panic::catch_unwind(|| {
        World::new(Machine::new(platform_c(), MpiFlavor::OpenMpi), 64)
    });
    assert!(result.is_err());
    // 16 ranks fit fine.
    let stats = World::new(Machine::new(platform_c(), MpiFlavor::OpenMpi), 16)
        .run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                rank.allreduce(&comm, 4096).await;
                rank
            })
        });
    assert!(stats.elapsed_ns() > 0.0);
}

/// Hook that counts calls and records per-call names.
struct CountingHook {
    pre_calls: AtomicU64,
    post_calls: AtomicU64,
    overhead: f64,
}

impl PmpiHook for CountingHook {
    fn pre(&self, _ctx: &HookCtx, _call: &MpiCall) {
        self.pre_calls.fetch_add(1, Ordering::Relaxed);
    }
    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        self.post_calls.fetch_add(1, Ordering::Relaxed);
        // Counters in the context are computation-only.
        assert!(ctx.counters.is_valid());
        let _ = call.func_name();
    }
    fn overhead_ns(&self) -> f64 {
        self.overhead
    }
}

#[test]
fn hook_sees_every_app_call_and_charges_overhead() {
    let hook = Arc::new(CountingHook {
        pre_calls: AtomicU64::new(0),
        post_calls: AtomicU64::new(0),
        overhead: 500.0,
    });
    let base = World::new(machine(), 4).run(ring_program);
    let hooked = World::new(machine(), 4)
        .with_hook(hook.clone())
        .run(ring_program);
    let pre = hook.pre_calls.load(Ordering::Relaxed);
    let post = hook.post_calls.load(Ordering::Relaxed);
    assert_eq!(pre, post);
    // 4 ranks × 3 calls each (send+recv+barrier).
    assert_eq!(pre, 12);
    // Overhead slows the run but only slightly.
    assert!(hooked.elapsed_ns() > base.elapsed_ns());
    let rel = (hooked.elapsed_ns() - base.elapsed_ns()) / base.elapsed_ns();
    assert!(rel < 0.30, "tracing overhead too large: {rel}");
}

#[test]
fn hook_is_not_called_for_collective_plumbing() {
    let hook = Arc::new(CountingHook {
        pre_calls: AtomicU64::new(0),
        post_calls: AtomicU64::new(0),
        overhead: 0.0,
    });
    World::new(machine(), 8).with_hook(hook.clone()).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.allreduce(&comm, 1 << 20).await; // many internal messages
            rank
        })
    });
    // Exactly one call per rank, regardless of internal rounds.
    assert_eq!(hook.pre_calls.load(Ordering::Relaxed), 8);
}

#[test]
fn compute_accumulates_counters_not_mpi() {
    let stats = World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.compute(&KernelDesc::stencil(10_000.0, 4.0, 65536.0));
            rank.allreduce(&comm, 1 << 16).await;
            rank.compute(&KernelDesc::stencil(10_000.0, 4.0, 65536.0));
            rank
        })
    });
    for r in &stats.per_rank {
        assert_eq!(r.compute_events, 2);
        // Counter totals reflect two stencils, nothing from the allreduce.
        let one = machine().platform.cpu.counters(&KernelDesc::stencil(10_000.0, 4.0, 65536.0));
        let rel = (r.counters.ins - 2.0 * one.ins).abs() / (2.0 * one.ins);
        assert!(rel < 0.05, "INS off by {rel}");
        assert!(r.mpi_ns > 0.0 && r.compute_ns > 0.0);
    }
}

#[test]
fn request_ids_are_recycled_like_real_handles() {
    World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let peer = 1 - rank.rank();
            for _ in 0..5 {
                let r = if rank.rank() == 0 {
                    rank.isend(&comm, peer, 0, 64)
                } else {
                    rank.irecv(&comm, peer, 0, 64)
                };
                // Always slot 0: freed and reallocated each iteration.
                assert_eq!(r.0, 0);
                rank.wait(r).await;
            }
            assert_eq!(rank.outstanding_requests(), 0);
            rank
        })
    });
}

#[test]
fn test_polls_until_complete() {
    // Deterministic, sleep-free: rank 0 cannot send its payload before it
    // receives the go-message, and rank 1 only sends the go-message after
    // one guaranteed-unsuccessful poll. Each failed `test` yields to the
    // scheduler instead of sleeping real time.
    World::new(machine(), 2).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            if rank.rank() == 0 {
                rank.recv(&comm, 1, 9, 8).await; // the "go" message
                rank.send(&comm, 1, 0, 128).await;
            } else {
                let r = rank.irecv(&comm, 0, 0, 128);
                let mut polls = 0;
                assert!(rank.test(r).await.is_none(), "payload cannot be here yet");
                polls += 1;
                rank.send(&comm, 0, 9, 8).await; // release rank 0
                let status = loop {
                    if let Some(st) = rank.test(r).await {
                        break st;
                    }
                    polls += 1;
                };
                assert_eq!(status.bytes, 128);
                assert!(polls > 0, "expected at least one unsuccessful poll");
            }
            rank
        })
    });
}

#[test]
fn larger_worlds_make_collectives_slower() {
    let time = |p: usize| {
        World::new(machine(), p)
            .run(|mut rank| {
                Box::pin(async move {
                    let comm = rank.comm_world();
                    for _ in 0..10 {
                        rank.allreduce(&comm, 8192).await;
                    }
                    rank
                })
            })
            .elapsed_ns()
    };
    let t8 = time(8);
    let t64 = time(64);
    assert!(t64 > t8, "allreduce over 64 ranks not slower than 8: {t64} vs {t8}");
}

#[test]
fn scan_completes_and_costs_grow_with_payload() {
    let run = |bytes: usize| {
        World::new(machine(), 8).run(move |mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                for _ in 0..10 {
                    rank.scan(&comm, bytes).await;
                }
                rank
            })
        })
    };
    let small = run(64);
    let large = run(1 << 20);
    assert!(small.elapsed_ns() > 0.0);
    assert!(large.elapsed_ns() > small.elapsed_ns());
    // Later ranks wait on the prefix chain: rank p−1 cannot finish before
    // rank 0's round-one contribution is available.
    assert!(small.per_rank[7].finish_ns >= small.per_rank[0].finish_ns);
}

#[test]
fn gatherv_handles_asymmetric_counts() {
    let stats = World::new(machine(), 6).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            // Wildly different contributions, including zero.
            let counts = vec![0usize, 100, 50_000, 7, 1 << 20, 64];
            rank.gatherv(&comm, 2, &counts).await;
            rank.scatterv(&comm, 2, &counts).await;
            rank.barrier(&comm).await;
            rank
        })
    });
    assert!(stats.elapsed_ns() > 0.0);
    // SPMD symmetry of call counts.
    let c0 = stats.per_rank[0].app_calls;
    assert!(stats.per_rank.iter().all(|r| r.app_calls == c0));
}

#[test]
fn reduce_scatter_block_costs_like_the_ring_phase() {
    // The ring reduce-scatter moves (p−1)·bytes_per_rank per rank — more
    // data ⇒ more time, and it must beat a full allreduce of p·bytes.
    let p = 8;
    let bytes_per_rank = 1 << 16;
    let rs = World::new(machine(), p).run(move |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.reduce_scatter_block(&comm, bytes_per_rank).await;
            rank
        })
    });
    let ar = World::new(machine(), p).run(move |mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.allreduce(&comm, bytes_per_rank * p).await;
            rank
        })
    });
    assert!(rs.elapsed_ns() > 0.0);
    assert!(
        rs.elapsed_ns() < ar.elapsed_ns(),
        "reduce_scatter {} not cheaper than allreduce {}",
        rs.elapsed_ns(),
        ar.elapsed_ns()
    );
}

#[test]
fn extended_collectives_are_hooked_once_each() {
    let hook = Arc::new(CountingHook {
        pre_calls: AtomicU64::new(0),
        post_calls: AtomicU64::new(0),
        overhead: 0.0,
    });
    World::new(machine(), 4).with_hook(hook.clone()).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.scan(&comm, 1024).await;
            rank.reduce_scatter_block(&comm, 1024).await;
            rank.gatherv(&comm, 0, &[8, 16, 24, 32]).await;
            rank.scatterv(&comm, 1, &[8, 16, 24, 32]).await;
            rank
        })
    });
    // 4 ranks × 4 calls, regardless of internal plumbing rounds.
    assert_eq!(hook.pre_calls.load(Ordering::Relaxed), 16);
}

#[test]
fn paper_scale_worlds_run() {
    // The paper's largest configuration is 529 ranks (SP). A rank state
    // machine must schedule, synchronize, and tear down cleanly at that
    // scale.
    let stats = World::new(machine(), 529).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            rank.compute(&KernelDesc::stencil(2_000.0, 4.0, 65536.0));
            rank.allreduce(&comm, 1024).await;
            rank.barrier(&comm).await;
            rank
        })
    });
    assert_eq!(stats.per_rank.len(), 529);
    assert!(stats.elapsed_ns() > 0.0);
    let calls = stats.per_rank[0].app_calls;
    assert!(stats.per_rank.iter().all(|r| r.app_calls == calls));
}

#[test]
fn deadlock_is_reported_with_blocked_ranks() {
    // Rank 0 receives from rank 1, which never sends: the event scheduler
    // must go quiescent and name the blocked rank instead of hanging.
    let err = World::new(machine(), 2)
        .try_run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                if rank.rank() == 0 {
                    rank.recv(&comm, 1, 0, 64).await;
                }
                rank
            })
        })
        .unwrap_err();
    assert_eq!(err.ranks.len(), 1);
    assert_eq!(err.ranks[0].0, 0);
    assert!(err.ranks[0].1.contains("rank 1"), "diagnosis: {}", err.ranks[0].1);
    let shown = format!("{err}");
    assert!(shown.contains("deadlock"), "{shown}");
}

#[test]
fn wtime_is_monotone_within_a_rank() {
    World::new(machine(), 4).run(|mut rank| {
        Box::pin(async move {
            let comm = rank.comm_world();
            let mut last = rank.wtime();
            for i in 0..20 {
                match i % 4 {
                    0 => rank.compute(&KernelDesc::bookkeeping(5_000.0)),
                    1 => rank.allreduce(&comm, 256).await,
                    2 => {
                        let p = rank.nranks();
                        let right = (rank.rank() + 1) % p;
                        let left = (rank.rank() + p - 1) % p;
                        rank.sendrecv(&comm, right, 5, 2048, left, 5, 2048).await;
                    }
                    _ => rank.barrier(&comm).await,
                }
                let now = rank.wtime();
                assert!(now >= last, "clock went backwards: {now} < {last}");
                last = now;
            }
            rank
        })
    });
}
