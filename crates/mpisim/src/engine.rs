//! The message-matching engine: per-rank mailboxes with MPI matching
//! semantics and virtual-time completion computation.
//!
//! One mailbox per rank holds an *unexpected-message* queue and a
//! *posted-receive* list, exactly like a real MPI progress engine. Matching
//! happens at whichever side arrives second:
//!
//! * a send that finds a matching posted receive completes it immediately;
//! * a receive that finds a matching unexpected message completes itself.
//!
//! All completion *times* are pure functions of the virtual timestamps
//! carried in the envelope and the posted receive, so results do not depend
//! on real thread scheduling. Non-overtaking order is preserved because each
//! sender state machine enqueues its messages in program order and matching
//! always scans queues front to back filtered by exact source.
//!
//! Waiting is event-driven: a rank blocked in [`Engine::wait`] registers a
//! [`Waker`] with its own mailbox and is woken by the send that completes
//! its receive — no condvars, no parked OS threads.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

use siesta_perfmodel::Machine;

use crate::message::{Channel, Envelope, MatchKey, WireProtocol};

/// Outcome of a matched receive, before receiver-side overhead is applied.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Sender's rank within the message's communicator.
    pub src_comm_rank: usize,
    /// Channel the message arrived on (carries the concrete tag).
    pub channel: Channel,
    pub bytes: usize,
    /// Virtual time the payload is fully available at the receiver.
    pub data_avail: f64,
}

#[derive(Debug)]
struct Posted {
    id: u64,
    key: MatchKey,
    post_time: f64,
}

#[derive(Default)]
struct MailboxInner {
    unexpected: VecDeque<Envelope>,
    posted: Vec<Posted>,
    completions: HashMap<u64, Completion>,
    next_recv_id: u64,
    /// The mailbox owner, if currently blocked in [`Engine::wait`]: the
    /// receive id it needs and how to resume it. Only the owning rank ever
    /// waits on its own mailbox, and on one receive at a time.
    waiter: Option<(u64, Waker)>,
}

#[derive(Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
}

/// Shared matching state for a whole world.
pub struct Engine {
    mailboxes: Vec<Mailbox>,
    machine: Machine,
}

impl Engine {
    pub fn new(machine: Machine, nranks: usize) -> Engine {
        Engine {
            mailboxes: (0..nranks).map(|_| Mailbox::default()).collect(),
            machine,
        }
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Deliver `env` to `dst_global`'s mailbox, completing a posted receive
    /// if one matches — and waking the owner if it was blocked on it.
    pub fn send(&self, dst_global: usize, env: Envelope) {
        let mb = &self.mailboxes[dst_global];
        let wake = {
            let mut inner = mb.inner.lock().unwrap();
            // First posted receive that matches, in post order.
            if let Some(pos) = inner.posted.iter().position(|p| p.key.matches(&env)) {
                let posted = inner.posted.remove(pos);
                let completion = self.complete(&env, posted.post_time, dst_global);
                inner.completions.insert(posted.id, completion);
                match &inner.waiter {
                    Some((id, _)) if inner.completions.contains_key(id) => {
                        inner.waiter.take().map(|(_, w)| w)
                    }
                    _ => None,
                }
            } else {
                inner.unexpected.push_back(env);
                None
            }
        };
        if let Some(w) = wake {
            w.wake();
        }
    }

    /// Post a receive for rank `me`. If an unexpected message already
    /// matches, the receive completes immediately. Returns a receive id to
    /// pass to [`Engine::wait`] / [`Engine::test`].
    pub fn post_recv(&self, me: usize, key: MatchKey, post_time: f64) -> u64 {
        let mb = &self.mailboxes[me];
        let mut inner = mb.inner.lock().unwrap();
        let id = inner.next_recv_id;
        inner.next_recv_id += 1;
        if let Some(pos) = inner.unexpected.iter().position(|e| key.matches(e)) {
            let env = inner.unexpected.remove(pos).expect("position exists");
            let completion = self.complete(&env, post_time, me);
            inner.completions.insert(id, completion);
        } else {
            inner.posted.push(Posted { id, key, post_time });
        }
        id
    }

    /// Resolve when the receive `id` posted by `me` completes. The returned
    /// future registers `me` as the mailbox's waiter and is woken by the
    /// matching [`Engine::send`].
    pub fn wait(&self, me: usize, id: u64) -> WaitRecv<'_> {
        WaitRecv { engine: self, me, id }
    }

    /// Non-blocking completion check.
    pub fn test(&self, me: usize, id: u64) -> Option<Completion> {
        let mut inner = self.mailboxes[me].inner.lock().unwrap();
        inner.completions.remove(&id)
    }

    /// Count of messages sitting in `me`'s unexpected queue (diagnostics).
    pub fn unexpected_len(&self, me: usize) -> usize {
        self.mailboxes[me].inner.lock().unwrap().unexpected.len()
    }

    /// Resolve an envelope against a posted receive: compute when the data
    /// is available at the receiver and, for rendezvous transfers, tell the
    /// sender when it is allowed to complete.
    fn complete(&self, env: &Envelope, post_time: f64, dst_global: usize) -> Completion {
        let same_node = self.machine.platform.same_node(env.src_global, dst_global);
        let net = &self.machine.net;
        let data_avail = match env.protocol {
            WireProtocol::Eager { avail } => avail,
            WireProtocol::Rendezvous { rts_avail } => {
                // The transfer cannot start before both the ready-to-send
                // arrives and the receive is posted; then a handshake and
                // the bulk transfer follow.
                let start = rts_avail.max(post_time) + net.rendezvous_extra_ns;
                let sender_done = start + env.bytes as f64 / net.bandwidth(same_node);
                if let Some(ack) = &env.ack {
                    // Waking the blocked sender happens inside `set` — in
                    // the event executor that is a queue push, never a park.
                    ack.set(sender_done);
                }
                sender_done + net.latency(same_node)
            }
        };
        Completion {
            src_comm_rank: env.src_comm_rank,
            channel: env.channel,
            bytes: env.bytes,
            data_avail,
        }
    }
}

/// Future for [`Engine::wait`].
pub struct WaitRecv<'e> {
    engine: &'e Engine,
    me: usize,
    id: u64,
}

impl Future for WaitRecv<'_> {
    type Output = Completion;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Completion> {
        let mut inner = self.engine.mailboxes[self.me].inner.lock().unwrap();
        if let Some(c) = inner.completions.remove(&self.id) {
            inner.waiter = None;
            Poll::Ready(c)
        } else {
            inner.waiter = Some((self.id, cx.waker().clone()));
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;
    use crate::message::{AckCell, Channel, ANY_TAG};
    use std::sync::Arc;
    use std::task::Wake;
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn engine(n: usize) -> Engine {
        Engine::new(Machine::new(platform_a(), MpiFlavor::OpenMpi), n)
    }

    fn eager_env(src: usize, tag: i32, bytes: usize, avail: f64) -> Envelope {
        Envelope {
            src_global: src,
            src_comm_rank: src,
            comm: CommId::WORLD,
            channel: Channel::App { tag },
            bytes,
            protocol: WireProtocol::Eager { avail },
            ack: None,
        }
    }

    fn key(src: usize, tag: i32) -> MatchKey {
        MatchKey {
            src_global: src,
            comm: CommId::WORLD,
            channel: Channel::App { tag },
        }
    }

    /// A waker that records whether it fired — lets the tests drive
    /// `WaitRecv` by hand, deterministically, with no threads or sleeps.
    struct FlagWaker(std::sync::atomic::AtomicBool);
    impl Wake for FlagWaker {
        fn wake(self: Arc<Self>) {
            self.0.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn poll_wait(e: &Engine, me: usize, id: u64) -> Poll<Completion> {
        let flag = Arc::new(FlagWaker(std::sync::atomic::AtomicBool::new(false)));
        let waker = std::task::Waker::from(flag);
        let mut cx = Context::from_waker(&waker);
        Pin::new(&mut e.wait(me, id)).poll(&mut cx)
    }

    /// Wait that must already be complete (all pure-matching tests are).
    fn wait_now(e: &Engine, me: usize, id: u64) -> Completion {
        match poll_wait(e, me, id) {
            Poll::Ready(c) => c,
            Poll::Pending => panic!("receive {id} not complete"),
        }
    }

    #[test]
    fn send_then_recv_matches_unexpected() {
        let e = engine(2);
        e.send(1, eager_env(0, 5, 64, 100.0));
        let id = e.post_recv(1, key(0, 5), 50.0);
        let c = wait_now(&e, 1, id);
        assert_eq!(c.bytes, 64);
        assert_eq!(c.data_avail, 100.0);
        assert_eq!(c.src_comm_rank, 0);
    }

    #[test]
    fn recv_then_send_matches_posted() {
        let e = engine(2);
        let id = e.post_recv(1, key(0, 5), 50.0);
        assert!(e.test(1, id).is_none());
        e.send(1, eager_env(0, 5, 64, 100.0));
        let c = e.test(1, id).expect("completed");
        assert_eq!(c.data_avail, 100.0);
    }

    #[test]
    fn non_overtaking_same_source_same_tag() {
        let e = engine(2);
        e.send(1, eager_env(0, 5, 1, 10.0));
        e.send(1, eager_env(0, 5, 2, 20.0));
        let id1 = e.post_recv(1, key(0, 5), 0.0);
        let id2 = e.post_recv(1, key(0, 5), 0.0);
        assert_eq!(wait_now(&e, 1, id1).bytes, 1);
        assert_eq!(wait_now(&e, 1, id2).bytes, 2);
    }

    #[test]
    fn tag_selectivity_skips_non_matching() {
        let e = engine(2);
        e.send(1, eager_env(0, 7, 1, 10.0));
        e.send(1, eager_env(0, 5, 2, 20.0));
        // Receive for tag 5 must take the second message.
        let id = e.post_recv(1, key(0, 5), 0.0);
        assert_eq!(wait_now(&e, 1, id).bytes, 2);
        // Tag-7 message is still queued.
        assert_eq!(e.unexpected_len(1), 1);
        let id7 = e.post_recv(1, key(0, 7), 0.0);
        assert_eq!(wait_now(&e, 1, id7).bytes, 1);
    }

    #[test]
    fn any_tag_takes_first_arrival_order() {
        let e = engine(2);
        e.send(1, eager_env(0, 7, 1, 10.0));
        e.send(1, eager_env(0, 5, 2, 20.0));
        let id = e.post_recv(1, key(0, ANY_TAG), 0.0);
        let c = wait_now(&e, 1, id);
        assert_eq!(c.bytes, 1);
        assert_eq!(c.channel, Channel::App { tag: 7 });
    }

    #[test]
    fn posted_receives_match_in_post_order() {
        let e = engine(2);
        let id1 = e.post_recv(1, key(0, 5), 10.0);
        let id2 = e.post_recv(1, key(0, 5), 20.0);
        e.send(1, eager_env(0, 5, 1, 30.0));
        e.send(1, eager_env(0, 5, 2, 40.0));
        assert_eq!(wait_now(&e, 1, id1).bytes, 1);
        assert_eq!(wait_now(&e, 1, id2).bytes, 2);
    }

    #[test]
    fn rendezvous_acks_sender_and_times_transfer() {
        let e = engine(80); // two nodes on platform A (40 cores/node)
        let ack = Arc::new(AckCell::default());
        let bytes = 1 << 20;
        let env = Envelope {
            src_global: 0,
            src_comm_rank: 0,
            comm: CommId::WORLD,
            channel: Channel::App { tag: 1 },
            bytes,
            protocol: WireProtocol::Rendezvous { rts_avail: 100.0 },
            ack: Some(ack.clone()),
        };
        e.send(50, env); // cross-node
        // Receive posted *later* than the RTS arrival: transfer waits for it.
        let post_time = 5_000.0;
        let id = e.post_recv(50, key(0, 1), post_time);
        let c = wait_now(&e, 50, id);
        let sender_done = ack.try_get().expect("ack delivered");
        let net = e.machine().net;
        let expected_start = post_time + net.rendezvous_extra_ns;
        let expected_sender_done = expected_start + bytes as f64 / net.bandwidth(false);
        assert!((sender_done - expected_sender_done).abs() < 1e-6);
        assert!((c.data_avail - (expected_sender_done + net.latency(false))).abs() < 1e-6);
    }

    #[test]
    fn blocked_wait_is_woken_by_matching_send() {
        // The event-driven replacement for the old sleep-synchronized
        // cross-thread test: post a receive, observe the wait future park a
        // waker, deliver the send, and check the waker fired and the next
        // poll completes — all on one thread, in deterministic virtual time.
        let e = engine(2);
        let id = e.post_recv(1, key(0, 3), 0.0);

        let flag = Arc::new(FlagWaker(std::sync::atomic::AtomicBool::new(false)));
        let waker = std::task::Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        let mut wait = e.wait(1, id);
        assert!(Pin::new(&mut wait).poll(&mut cx).is_pending());
        assert!(!flag.0.load(std::sync::atomic::Ordering::SeqCst));

        e.send(1, eager_env(0, 3, 8, 42.0));
        assert!(flag.0.load(std::sync::atomic::Ordering::SeqCst), "send wakes the waiter");
        match Pin::new(&mut wait).poll(&mut cx) {
            Poll::Ready(c) => assert_eq!(c.data_avail, 42.0),
            Poll::Pending => panic!("woken wait must complete"),
        }
    }

    #[test]
    fn non_matching_send_does_not_wake_waiter() {
        let e = engine(2);
        let id = e.post_recv(1, key(0, 3), 0.0);
        let flag = Arc::new(FlagWaker(std::sync::atomic::AtomicBool::new(false)));
        let waker = std::task::Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        let mut wait = e.wait(1, id);
        assert!(Pin::new(&mut wait).poll(&mut cx).is_pending());
        // Different tag: lands in the unexpected queue, no wake.
        e.send(1, eager_env(0, 9, 8, 42.0));
        assert!(!flag.0.load(std::sync::atomic::Ordering::SeqCst));
        assert!(Pin::new(&mut wait).poll(&mut cx).is_pending());
    }
}
