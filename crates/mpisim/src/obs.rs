//! Observability interposers: an [`ObsHook`] that feeds the `siesta-obs`
//! metrics registry from the PMPI stream, and a [`FanoutHook`] that lets it
//! stack underneath the trace recorder (real PMPI tools chain the same way).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use siesta_obs::metrics::{counter, histogram, Counter, Histogram};

use crate::comm_matrix;
use crate::hook::{HookCtx, MpiCall, PmpiHook, NUM_CALL_CLASSES};

/// Broadcasts every hook event to each inner hook, in order. Per-call
/// overhead charged to the virtual clock is the sum of the inner overheads.
pub struct FanoutHook {
    hooks: Vec<Arc<dyn PmpiHook>>,
}

impl FanoutHook {
    pub fn new(hooks: Vec<Arc<dyn PmpiHook>>) -> FanoutHook {
        FanoutHook { hooks }
    }
}

impl PmpiHook for FanoutHook {
    fn pre(&self, ctx: &HookCtx, call: &MpiCall) {
        for h in &self.hooks {
            h.pre(ctx, call);
        }
    }

    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        for h in &self.hooks {
            h.post(ctx, call);
        }
    }

    fn overhead_ns(&self) -> f64 {
        self.hooks.iter().map(|h| h.overhead_ns()).sum()
    }
}

/// Metric names follow `mpi.calls.<MPI function>` (see DESIGN.md), one
/// per [`MpiCall`] variant, indexed by [`MpiCall::class_index`]. The hook
/// resolves all of them once at construction: the per-call hot path must
/// not take the metrics-registry lock (this hook runs on every MPI call
/// of every rank thread, and is what the <5% `--profile` overhead budget
/// is spent on).
const CALL_COUNTER_NAMES: [&str; NUM_CALL_CLASSES] = [
    "mpi.calls.MPI_Send",
    "mpi.calls.MPI_Recv",
    "mpi.calls.MPI_Isend",
    "mpi.calls.MPI_Irecv",
    "mpi.calls.MPI_Wait",
    "mpi.calls.MPI_Waitall",
    "mpi.calls.MPI_Sendrecv",
    "mpi.calls.MPI_Barrier",
    "mpi.calls.MPI_Bcast",
    "mpi.calls.MPI_Reduce",
    "mpi.calls.MPI_Allreduce",
    "mpi.calls.MPI_Allgather",
    "mpi.calls.MPI_Alltoall",
    "mpi.calls.MPI_Alltoallv",
    "mpi.calls.MPI_Gather",
    "mpi.calls.MPI_Scatter",
    "mpi.calls.MPI_Gatherv",
    "mpi.calls.MPI_Scatterv",
    "mpi.calls.MPI_Scan",
    "mpi.calls.MPI_Reduce_scatter_block",
    "mpi.calls.MPI_Comm_split",
    "mpi.calls.MPI_Comm_dup",
    "mpi.calls.MPI_Comm_free",
];

/// Records per-call-type counts, a message-volume histogram, and a
/// queue-depth histogram (outstanding nonblocking requests per rank,
/// sampled at each MPI call). Charges zero virtual overhead: it observes
/// the simulation without perturbing the clocks the paper's Table 3
/// overhead column is computed from.
pub struct ObsHook {
    /// Outstanding Isend/Irecv requests per rank.
    outstanding: Vec<AtomicI64>,
    /// Pre-resolved `mpi.calls.*` counters, indexed by
    /// [`MpiCall::class_index`].
    call_counters: [&'static Counter; NUM_CALL_CLASSES],
    /// Pre-resolved histograms (same reason: no registry lock per call).
    message_bytes: &'static Histogram,
    queue_depth: &'static Histogram,
    /// Per-rank-pair traffic cells, when `--comm-matrix` collection is on
    /// (see [`crate::comm_matrix`]). Shared atomics: still lock-free.
    comm_matrix: Option<Arc<comm_matrix::CommMatrixCells>>,
}

impl ObsHook {
    pub fn new(nranks: usize) -> ObsHook {
        ObsHook {
            outstanding: (0..nranks).map(|_| AtomicI64::new(0)).collect(),
            call_counters: CALL_COUNTER_NAMES.map(counter),
            message_bytes: histogram("mpi.message_bytes"),
            queue_depth: histogram("mpi.queue_depth"),
            comm_matrix: comm_matrix::comm_matrix_enabled()
                .then(|| comm_matrix::install(nranks)),
        }
    }
}

impl PmpiHook for ObsHook {
    fn pre(&self, ctx: &HookCtx, call: &MpiCall) {
        self.call_counters[call.class_index()].inc();
        if let Some(matrix) = &self.comm_matrix {
            matrix.record(ctx, call);
        }
        let bytes = call.payload_bytes();
        if bytes > 0 {
            self.message_bytes.record(bytes as u64);
        }
        if let Some(q) = self.outstanding.get(ctx.rank) {
            self.queue_depth.record(q.load(Ordering::Relaxed).max(0) as u64);
        }
    }

    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        let Some(q) = self.outstanding.get(ctx.rank) else {
            return;
        };
        match call {
            MpiCall::Isend { .. } | MpiCall::Irecv { .. } => {
                q.fetch_add(1, Ordering::Relaxed);
            }
            MpiCall::Wait { .. } => {
                q.fetch_sub(1, Ordering::Relaxed);
            }
            MpiCall::Waitall { reqs } => {
                q.fetch_sub(reqs.len() as i64, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;
    use siesta_perfmodel::CounterVec;

    fn ctx(rank: usize) -> HookCtx {
        HookCtx {
            rank,
            clock_ns: 0.0,
            counters: CounterVec::ZERO,
            comm_rank: rank,
            comm_size: 2,
            call_start_ns: 0.0,
            wait_ns: 0.0,
            call_seq: 0,
        }
    }

    #[test]
    fn counter_names_track_class_names() {
        for (i, name) in CALL_COUNTER_NAMES.iter().enumerate() {
            assert_eq!(*name, format!("mpi.calls.{}", MpiCall::class_name(i)));
        }
    }

    #[test]
    fn obs_hook_counts_calls_and_volume() {
        siesta_obs::reset_metrics();
        let hook = ObsHook::new(2);
        let send = MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 7, bytes: 4096 };
        hook.pre(&ctx(0), &send);
        hook.post(&ctx(0), &send);
        let isend = MpiCall::Isend { comm: CommId::WORLD, dest: 1, tag: 7, bytes: 64, req: 0 };
        hook.pre(&ctx(0), &isend);
        hook.post(&ctx(0), &isend);
        let wait = MpiCall::Wait { req: 0 };
        hook.pre(&ctx(0), &wait);
        hook.post(&ctx(0), &wait);

        assert_eq!(counter("mpi.calls.MPI_Send").get(), 1);
        assert_eq!(counter("mpi.calls.MPI_Isend").get(), 1);
        assert_eq!(counter("mpi.calls.MPI_Wait").get(), 1);
        let vol = histogram("mpi.message_bytes").summary();
        assert_eq!(vol.count, 2);
        assert_eq!(vol.max, 4096);
        // Queue depth sampled three times: 0 before Send, 0 before Isend,
        // 1 before Wait; back to 0 after Wait.
        let depth = histogram("mpi.queue_depth").summary();
        assert_eq!(depth.count, 3);
        assert_eq!(depth.max, 1);
        assert_eq!(hook.outstanding[0].load(Ordering::Relaxed), 0);
        siesta_obs::reset_metrics();
    }

    #[test]
    fn fanout_sums_overhead_and_forwards() {
        struct Fixed(f64);
        impl PmpiHook for Fixed {
            fn pre(&self, _: &HookCtx, _: &MpiCall) {}
            fn post(&self, _: &HookCtx, _: &MpiCall) {}
            fn overhead_ns(&self) -> f64 {
                self.0
            }
        }
        let fan = FanoutHook::new(vec![Arc::new(Fixed(100.0)), Arc::new(Fixed(20.0))]);
        assert_eq!(fan.overhead_ns(), 120.0);
    }
}
