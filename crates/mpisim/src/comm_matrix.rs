//! Per-rank communication-matrix collection.
//!
//! When enabled (the CLI's `--comm-matrix PATH`), [`crate::ObsHook`]
//! feeds a process-global collector with one cell per `(src, dest)`
//! global-rank pair: point-to-point send **counts** and **bytes**, plus
//! per-rank collective contribution bytes (collectives have no single
//! destination, so they get a vector, not matrix cells). This is the
//! communication-pattern view tools like mpiP's sender/receiver
//! histograms and the Caliper/Benchpark studies build their analysis on.
//!
//! The record path is an atomic fetch-add per call — the collector is a
//! flat `Vec<AtomicU64>` shared with the hook via `Arc`, so the
//! simulation's rank threads never take a lock.
//!
//! Only `MPI_COMM_WORLD` point-to-point traffic lands in the matrix: the
//! hook sees communicator-**local** destination ranks (exactly what a
//! PMPI tracer sees), and only for the world communicator is the local
//! rank also the global one. Sends on split/duplicated communicators are
//! tallied in `nonworld_skipped` instead of being misattributed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::comm::CommId;
use crate::hook::{HookCtx, MpiCall};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The collector for the current (most recent) instrumented run.
static CURRENT: Mutex<Option<Arc<CommMatrixCells>>> = Mutex::new(None);

/// Turn comm-matrix collection on or off (off by default). While on,
/// every [`crate::ObsHook`] construction installs a fresh collector
/// sized to its world.
pub fn set_comm_matrix_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is comm-matrix collection enabled?
pub fn comm_matrix_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Shared atomic cells, written by the hook from rank threads.
pub(crate) struct CommMatrixCells {
    nranks: usize,
    /// `src * nranks + dest`, point-to-point send counts.
    counts: Vec<AtomicU64>,
    /// `src * nranks + dest`, point-to-point send bytes.
    bytes: Vec<AtomicU64>,
    /// Per-source-rank collective contribution bytes.
    collective_bytes: Vec<AtomicU64>,
    /// P2p sends on non-world communicators (not attributable to a
    /// global destination rank from the PMPI view).
    nonworld_skipped: AtomicU64,
}

impl CommMatrixCells {
    fn new(nranks: usize) -> CommMatrixCells {
        CommMatrixCells {
            nranks,
            counts: (0..nranks * nranks).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..nranks * nranks).map(|_| AtomicU64::new(0)).collect(),
            collective_bytes: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            nonworld_skipped: AtomicU64::new(0),
        }
    }

    fn add_p2p(&self, src: usize, dest: usize, nbytes: u64) {
        if src < self.nranks && dest < self.nranks {
            let cell = src * self.nranks + dest;
            self.counts[cell].fetch_add(1, Ordering::Relaxed);
            self.bytes[cell].fetch_add(nbytes, Ordering::Relaxed);
        }
    }

    /// Record one `pre`-hook call. Sends only (each message counted once,
    /// at its source); collectives credit the caller's contribution.
    pub(crate) fn record(&self, ctx: &HookCtx, call: &MpiCall) {
        match call {
            MpiCall::Send { comm, dest, bytes, .. }
            | MpiCall::Isend { comm, dest, bytes, .. } => {
                if *comm == CommId::WORLD {
                    self.add_p2p(ctx.rank, *dest, *bytes as u64);
                } else {
                    self.nonworld_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
            MpiCall::Sendrecv { comm, dest, send_bytes, .. } => {
                if *comm == CommId::WORLD {
                    self.add_p2p(ctx.rank, *dest, *send_bytes as u64);
                } else {
                    self.nonworld_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
            MpiCall::Recv { .. }
            | MpiCall::Irecv { .. }
            | MpiCall::Wait { .. }
            | MpiCall::Waitall { .. }
            | MpiCall::CommSplit { .. }
            | MpiCall::CommDup { .. }
            | MpiCall::CommFree { .. }
            | MpiCall::Barrier { .. } => {}
            collective => {
                let contrib = collective.payload_bytes() as u64;
                if contrib > 0 {
                    if let Some(cell) = self.collective_bytes.get(ctx.rank) {
                        cell.fetch_add(contrib, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Install (and return) a fresh collector for a world of `nranks`,
/// replacing any previous one. Called by [`crate::ObsHook::new`] when
/// collection is enabled.
pub(crate) fn install(nranks: usize) -> Arc<CommMatrixCells> {
    let cells = Arc::new(CommMatrixCells::new(nranks));
    *CURRENT.lock().unwrap() = Some(cells.clone());
    cells
}

/// Final tallies of one instrumented run, flattened row-major
/// (`src * nranks + dest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrixSnapshot {
    pub nranks: usize,
    pub counts: Vec<u64>,
    pub bytes: Vec<u64>,
    pub collective_bytes: Vec<u64>,
    pub nonworld_skipped: u64,
}

impl CommMatrixSnapshot {
    pub fn count(&self, src: usize, dest: usize) -> u64 {
        self.counts[src * self.nranks + dest]
    }

    pub fn byte_volume(&self, src: usize, dest: usize) -> u64 {
        self.bytes[src * self.nranks + dest]
    }
}

/// Take the collector installed by the most recent instrumented run,
/// leaving none behind. `None` if collection was never enabled.
pub fn take_comm_matrix() -> Option<CommMatrixSnapshot> {
    let cells = CURRENT.lock().unwrap().take()?;
    Some(CommMatrixSnapshot {
        nranks: cells.nranks,
        counts: cells.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        bytes: cells.bytes.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        collective_bytes: cells
            .collective_bytes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        nonworld_skipped: cells.nonworld_skipped.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::CounterVec;

    fn ctx(rank: usize) -> HookCtx {
        HookCtx { rank, clock_ns: 0.0, counters: CounterVec::ZERO, comm_rank: rank, comm_size: 4 }
    }

    #[test]
    fn p2p_and_collectives_tally_separately() {
        let cells = CommMatrixCells::new(4);
        cells.record(&ctx(0), &MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 0, bytes: 100 });
        cells.record(
            &ctx(0),
            &MpiCall::Isend { comm: CommId::WORLD, dest: 1, tag: 0, bytes: 28, req: 0 },
        );
        cells.record(
            &ctx(2),
            &MpiCall::Sendrecv {
                comm: CommId::WORLD,
                dest: 3,
                send_tag: 0,
                send_bytes: 64,
                src: 3,
                recv_tag: 0,
                recv_bytes: 999,
            },
        );
        // Receives never double-count.
        cells.record(&ctx(1), &MpiCall::Recv { comm: CommId::WORLD, src: 0, tag: 0, bytes: 100 });
        cells.record(&ctx(3), &MpiCall::Allreduce { comm: CommId::WORLD, bytes: 8 });
        // Non-world sends are skipped, not misattributed.
        let sub = CommId(7);
        assert_ne!(sub, CommId::WORLD);
        cells.record(&ctx(1), &MpiCall::Send { comm: sub, dest: 0, tag: 0, bytes: 5 });

        assert_eq!(cells.counts[1].load(Ordering::Relaxed), 2); // 0 -> 1
        assert_eq!(cells.bytes[1].load(Ordering::Relaxed), 128);
        assert_eq!(cells.counts[2 * 4 + 3].load(Ordering::Relaxed), 1);
        assert_eq!(cells.bytes[2 * 4 + 3].load(Ordering::Relaxed), 64);
        assert_eq!(cells.collective_bytes[3].load(Ordering::Relaxed), 8);
        assert_eq!(cells.nonworld_skipped.load(Ordering::Relaxed), 1);
        // Nothing landed in any other cell.
        let total: u64 = cells.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn install_and_take_round_trip() {
        set_comm_matrix_enabled(true);
        let cells = install(2);
        cells.record(&ctx(0), &MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 9, bytes: 11 });
        let snap = take_comm_matrix().expect("collector installed");
        set_comm_matrix_enabled(false);
        assert_eq!(snap.nranks, 2);
        assert_eq!(snap.count(0, 1), 1);
        assert_eq!(snap.byte_volume(0, 1), 11);
        assert_eq!(snap.count(1, 0), 0);
        assert_eq!(snap.nonworld_skipped, 0);
        // Taken means gone.
        assert!(take_comm_matrix().is_none());
    }
}
