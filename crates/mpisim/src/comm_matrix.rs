//! Per-rank communication-matrix collection.
//!
//! When enabled (the CLI's `--comm-matrix PATH`), [`crate::ObsHook`]
//! feeds a process-global collector with one cell per `(src, dest)`
//! global-rank pair: point-to-point send **counts** and **bytes**, plus
//! per-rank collective contribution bytes (collectives have no single
//! destination, so they get a vector, not matrix cells). This is the
//! communication-pattern view tools like mpiP's sender/receiver
//! histograms and the Caliper/Benchpark studies build their analysis on.
//!
//! Storage is **sparse**: one hash row per source rank, holding only the
//! destinations that rank actually sent to. Real MPI communication
//! matrices are overwhelmingly sparse (a 64k-rank halo exchange touches
//! 4 neighbours per rank, not 64k), and the previous dense
//! `nranks² × 2` atomic array was the memory wall that kept
//! `--comm-matrix` from running at scale — 64 GiB of cells at 64k ranks
//! versus a few MiB of occupied entries here. Each row has its own lock,
//! and a row is only ever written while its owning rank is being polled
//! — the scheduler polls a rank on at most one worker at a time — so the
//! lock is uncontended in steady state.
//!
//! Only `MPI_COMM_WORLD` point-to-point traffic lands in the matrix: the
//! hook sees communicator-**local** destination ranks (exactly what a
//! PMPI tracer sees), and only for the world communicator is the local
//! rank also the global one. Sends on split/duplicated communicators are
//! tallied in `nonworld_skipped` instead of being misattributed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use siesta_hash::{fx_map, FxHashMap};

use crate::comm::CommId;
use crate::hook::{HookCtx, MpiCall};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The collector for the current (most recent) instrumented run.
static CURRENT: Mutex<Option<Arc<CommMatrixCells>>> = Mutex::new(None);

/// Turn comm-matrix collection on or off (off by default). While on,
/// every [`crate::ObsHook`] construction installs a fresh collector
/// sized to its world.
pub fn set_comm_matrix_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is comm-matrix collection enabled?
pub fn comm_matrix_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Streaming collector: sparse per-source rows, written by the hook from
/// whichever worker is polling the source rank.
pub(crate) struct CommMatrixCells {
    nranks: usize,
    /// `rows[src][dest] = (count, bytes)` — only touched destinations.
    rows: Vec<Mutex<FxHashMap<u32, (u64, u64)>>>,
    /// Per-source-rank collective contribution bytes.
    collective_bytes: Vec<AtomicU64>,
    /// P2p sends on non-world communicators (not attributable to a
    /// global destination rank from the PMPI view).
    nonworld_skipped: AtomicU64,
}

impl CommMatrixCells {
    fn new(nranks: usize) -> CommMatrixCells {
        CommMatrixCells {
            nranks,
            rows: (0..nranks).map(|_| Mutex::new(fx_map())).collect(),
            collective_bytes: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            nonworld_skipped: AtomicU64::new(0),
        }
    }

    fn add_p2p(&self, src: usize, dest: usize, nbytes: u64) {
        if dest < self.nranks {
            if let Some(row) = self.rows.get(src) {
                let mut row = row.lock().unwrap();
                let cell = row.entry(dest as u32).or_insert((0, 0));
                cell.0 += 1;
                cell.1 += nbytes;
            }
        }
    }

    /// Record one `pre`-hook call. Sends only (each message counted once,
    /// at its source); collectives credit the caller's contribution.
    pub(crate) fn record(&self, ctx: &HookCtx, call: &MpiCall) {
        match call {
            MpiCall::Send { comm, dest, bytes, .. }
            | MpiCall::Isend { comm, dest, bytes, .. } => {
                if *comm == CommId::WORLD {
                    self.add_p2p(ctx.rank, *dest, *bytes as u64);
                } else {
                    self.nonworld_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
            MpiCall::Sendrecv { comm, dest, send_bytes, .. } => {
                if *comm == CommId::WORLD {
                    self.add_p2p(ctx.rank, *dest, *send_bytes as u64);
                } else {
                    self.nonworld_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
            MpiCall::Recv { .. }
            | MpiCall::Irecv { .. }
            | MpiCall::Wait { .. }
            | MpiCall::Waitall { .. }
            | MpiCall::CommSplit { .. }
            | MpiCall::CommDup { .. }
            | MpiCall::CommFree { .. }
            | MpiCall::Barrier { .. } => {}
            collective => {
                let contrib = collective.payload_bytes() as u64;
                if contrib > 0 {
                    if let Some(cell) = self.collective_bytes.get(ctx.rank) {
                        cell.fetch_add(contrib, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Flatten into the sorted sparse snapshot form.
    fn snapshot(&self) -> CommMatrixSnapshot {
        let mut flat: Vec<(u32, u32, u64, u64)> = Vec::new();
        for (src, row) in self.rows.iter().enumerate() {
            let row = row.lock().unwrap();
            let base = flat.len();
            flat.extend(
                row.iter().map(|(&dest, &(count, bytes))| (src as u32, dest, count, bytes)),
            );
            flat[base..].sort_unstable_by_key(|c| c.1);
        }
        CommMatrixSnapshot {
            nranks: self.nranks,
            cells: flat,
            collective_bytes: self
                .collective_bytes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            nonworld_skipped: self.nonworld_skipped.load(Ordering::Relaxed),
        }
    }
}

/// Install (and return) a fresh collector for a world of `nranks`,
/// replacing any previous one. Called by [`crate::ObsHook::new`] when
/// collection is enabled.
pub(crate) fn install(nranks: usize) -> Arc<CommMatrixCells> {
    let cells = Arc::new(CommMatrixCells::new(nranks));
    *CURRENT.lock().unwrap() = Some(cells.clone());
    cells
}

/// Final tallies of one instrumented run: occupied cells only, sorted
/// row-major — memory proportional to the pattern, not to `nranks²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrixSnapshot {
    pub nranks: usize,
    /// `(src, dest, count, bytes)` for every nonzero cell, sorted by
    /// `(src, dest)`.
    pub cells: Vec<(u32, u32, u64, u64)>,
    pub collective_bytes: Vec<u64>,
    pub nonworld_skipped: u64,
}

impl CommMatrixSnapshot {
    fn cell(&self, src: usize, dest: usize) -> Option<&(u32, u32, u64, u64)> {
        self.cells
            .binary_search_by_key(&(src as u32, dest as u32), |c| (c.0, c.1))
            .ok()
            .map(|i| &self.cells[i])
    }

    pub fn count(&self, src: usize, dest: usize) -> u64 {
        self.cell(src, dest).map_or(0, |c| c.2)
    }

    pub fn byte_volume(&self, src: usize, dest: usize) -> u64 {
        self.cell(src, dest).map_or(0, |c| c.3)
    }

    /// Hand-rolled JSON: nonzero point-to-point cells plus per-rank
    /// collective contributions. Deterministic — the simulation is, and
    /// cells are emitted in row-major order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.cells.len() * 48);
        let _ = write!(
            out,
            "{{\n\"nranks\":{},\n\"nonworld_skipped\":{},\n\"p2p\":[",
            self.nranks, self.nonworld_skipped
        );
        for (i, (src, dest, count, bytes)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"src\":{src},\"dest\":{dest},\"count\":{count},\"bytes\":{bytes}}}"
            );
        }
        out.push_str("\n],\n\"collective_bytes\":[");
        for (i, b) in self.collective_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Take the collector installed by the most recent instrumented run,
/// leaving none behind. `None` if collection was never enabled.
pub fn take_comm_matrix() -> Option<CommMatrixSnapshot> {
    let cells = CURRENT.lock().unwrap().take()?;
    Some(cells.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::CounterVec;

    fn ctx(rank: usize) -> HookCtx {
        HookCtx {
            rank,
            clock_ns: 0.0,
            counters: CounterVec::ZERO,
            comm_rank: rank,
            comm_size: 4,
            call_start_ns: 0.0,
            wait_ns: 0.0,
            call_seq: 0,
        }
    }

    #[test]
    fn p2p_and_collectives_tally_separately() {
        let cells = CommMatrixCells::new(4);
        cells.record(&ctx(0), &MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 0, bytes: 100 });
        cells.record(
            &ctx(0),
            &MpiCall::Isend { comm: CommId::WORLD, dest: 1, tag: 0, bytes: 28, req: 0 },
        );
        cells.record(
            &ctx(2),
            &MpiCall::Sendrecv {
                comm: CommId::WORLD,
                dest: 3,
                send_tag: 0,
                send_bytes: 64,
                src: 3,
                recv_tag: 0,
                recv_bytes: 999,
            },
        );
        // Receives never double-count.
        cells.record(&ctx(1), &MpiCall::Recv { comm: CommId::WORLD, src: 0, tag: 0, bytes: 100 });
        cells.record(&ctx(3), &MpiCall::Allreduce { comm: CommId::WORLD, bytes: 8 });
        // Non-world sends are skipped, not misattributed.
        let sub = CommId(7);
        assert_ne!(sub, CommId::WORLD);
        cells.record(&ctx(1), &MpiCall::Send { comm: sub, dest: 0, tag: 0, bytes: 5 });

        let snap = cells.snapshot();
        assert_eq!(snap.count(0, 1), 2);
        assert_eq!(snap.byte_volume(0, 1), 128);
        assert_eq!(snap.count(2, 3), 1);
        assert_eq!(snap.byte_volume(2, 3), 64);
        assert_eq!(snap.collective_bytes[3], 8);
        assert_eq!(snap.nonworld_skipped, 1);
        // Only the two touched cells are stored.
        assert_eq!(snap.cells.len(), 2);
        assert_eq!(snap.count(1, 0), 0);
    }

    #[test]
    fn install_and_take_round_trip() {
        set_comm_matrix_enabled(true);
        let cells = install(2);
        cells.record(&ctx(0), &MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 9, bytes: 11 });
        let snap = take_comm_matrix().expect("collector installed");
        set_comm_matrix_enabled(false);
        assert_eq!(snap.nranks, 2);
        assert_eq!(snap.count(0, 1), 1);
        assert_eq!(snap.byte_volume(0, 1), 11);
        assert_eq!(snap.count(1, 0), 0);
        assert_eq!(snap.nonworld_skipped, 0);
        // Taken means gone.
        assert!(take_comm_matrix().is_none());
    }

    #[test]
    fn json_is_sorted_row_major_and_sparse() {
        let cells = CommMatrixCells::new(3);
        // Insert out of order within a row; snapshot must sort.
        cells.record(&ctx(1), &MpiCall::Send { comm: CommId::WORLD, dest: 2, tag: 0, bytes: 7 });
        cells.record(&ctx(1), &MpiCall::Send { comm: CommId::WORLD, dest: 0, tag: 0, bytes: 3 });
        cells.record(&ctx(0), &MpiCall::Send { comm: CommId::WORLD, dest: 2, tag: 0, bytes: 1 });
        let snap = cells.snapshot();
        assert_eq!(
            snap.cells,
            vec![(0, 2, 1, 1), (1, 0, 1, 3), (1, 2, 1, 7)]
        );
        let json = snap.to_json();
        let p02 = json.find("\"src\":0,\"dest\":2").unwrap();
        let p10 = json.find("\"src\":1,\"dest\":0").unwrap();
        let p12 = json.find("\"src\":1,\"dest\":2").unwrap();
        assert!(p02 < p10 && p10 < p12);
        assert!(json.contains("\"collective_bytes\":[0,0,0]"));
    }
}
