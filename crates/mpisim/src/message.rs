//! Message envelopes and receive matching keys.

use std::future::Future;
use std::pin::Pin;
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

use crate::comm::CommId;

/// Application-level message tag.
pub type Tag = i32;

/// Wildcard tag for receives (`MPI_ANY_TAG`). Source wildcards are *not*
/// supported — see the crate docs on determinism.
pub const ANY_TAG: Tag = -1;

/// Which matching space a message travels in.
///
/// Application messages match on tags like real MPI. Collective-internal
/// plumbing messages match on an exact 64-bit key derived from
/// (communicator, collective sequence number, round), so different
/// collectives can never interfere even across algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    App { tag: Tag },
    Sys { key: u64 },
}

/// Point-to-point wire protocol of an in-flight message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireProtocol {
    /// `avail` = virtual time the payload is available at the receiver.
    Eager { avail: f64 },
    /// `rts_avail` = virtual time the ready-to-send control message reaches
    /// the receiver; the data transfer is scheduled at match time.
    Rendezvous { rts_avail: f64 },
}

/// One-shot cell carrying the sender-side completion time of a rendezvous
/// transfer from the matching engine back to the blocked sender. The
/// engine [`AckCell::set`]s it when the receiver matches; the sender's
/// state machine awaits it via [`AckWait`].
#[derive(Debug, Default)]
pub struct AckCell {
    inner: Mutex<AckInner>,
}

#[derive(Debug, Default)]
struct AckInner {
    value: Option<f64>,
    waker: Option<Waker>,
}

impl AckCell {
    /// Deliver the value, waking the registered waiter if any.
    pub fn set(&self, value: f64) {
        let waker = {
            let mut inner = self.inner.lock().unwrap();
            inner.value = Some(value);
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Non-blocking read (for `test`).
    pub fn try_get(&self) -> Option<f64> {
        self.inner.lock().unwrap().value
    }

    fn poll_value(&self, cx: &mut Context<'_>) -> Poll<f64> {
        let mut inner = self.inner.lock().unwrap();
        match inner.value {
            Some(v) => Poll::Ready(v),
            None => {
                inner.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future resolving to the value of an [`AckCell`].
pub(crate) struct AckWait<'a>(pub &'a AckCell);

impl Future for AckWait<'_> {
    type Output = f64;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<f64> {
        self.0.poll_value(cx)
    }
}

/// An in-flight message: everything the receiver's matching engine needs.
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src_global: usize,
    /// Sender's rank within the message's communicator (what
    /// `MPI_Status.MPI_SOURCE` reports).
    pub src_comm_rank: usize,
    pub comm: CommId,
    pub channel: Channel,
    pub bytes: usize,
    pub protocol: WireProtocol,
    /// For rendezvous messages: where to report the sender-side completion
    /// time once the transfer is scheduled.
    pub ack: Option<std::sync::Arc<AckCell>>,
}

/// What a completed receive reports back to the application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvStatus {
    /// Source rank *within the receive's communicator*.
    pub source: usize,
    pub tag: Tag,
    pub bytes: usize,
    /// Virtual time the receive completed at the receiver.
    pub complete_at: f64,
}

/// Matching key of a posted receive.
#[derive(Debug, Clone, Copy)]
pub struct MatchKey {
    /// Global rank the receive expects data from (already translated from
    /// the communicator-local source).
    pub src_global: usize,
    pub comm: CommId,
    pub channel: Channel,
}

impl MatchKey {
    /// Does `env` satisfy this receive?
    pub fn matches(&self, env: &Envelope) -> bool {
        if env.src_global != self.src_global || env.comm != self.comm {
            return false;
        }
        match (self.channel, env.channel) {
            (Channel::App { tag: want }, Channel::App { tag: got }) => {
                want == ANY_TAG || want == got
            }
            (Channel::Sys { key: want }, Channel::Sys { key: got }) => want == got,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, comm: CommId, channel: Channel) -> Envelope {
        Envelope {
            src_global: src,
            src_comm_rank: src,
            comm,
            channel,
            bytes: 64,
            protocol: WireProtocol::Eager { avail: 1.0 },
            ack: None,
        }
    }

    #[test]
    fn matches_on_src_comm_tag() {
        let key = MatchKey {
            src_global: 3,
            comm: CommId::WORLD,
            channel: Channel::App { tag: 7 },
        };
        assert!(key.matches(&env(3, CommId::WORLD, Channel::App { tag: 7 })));
        assert!(!key.matches(&env(4, CommId::WORLD, Channel::App { tag: 7 })));
        assert!(!key.matches(&env(3, CommId(99), Channel::App { tag: 7 })));
        assert!(!key.matches(&env(3, CommId::WORLD, Channel::App { tag: 8 })));
    }

    #[test]
    fn any_tag_matches_all_app_tags_but_not_sys() {
        let key = MatchKey {
            src_global: 1,
            comm: CommId::WORLD,
            channel: Channel::App { tag: ANY_TAG },
        };
        assert!(key.matches(&env(1, CommId::WORLD, Channel::App { tag: 0 })));
        assert!(key.matches(&env(1, CommId::WORLD, Channel::App { tag: 123 })));
        assert!(!key.matches(&env(1, CommId::WORLD, Channel::Sys { key: 5 })));
    }

    #[test]
    fn sys_channel_needs_exact_key() {
        let key = MatchKey {
            src_global: 2,
            comm: CommId::WORLD,
            channel: Channel::Sys { key: 42 },
        };
        assert!(key.matches(&env(2, CommId::WORLD, Channel::Sys { key: 42 })));
        assert!(!key.matches(&env(2, CommId::WORLD, Channel::Sys { key: 43 })));
        assert!(!key.matches(&env(2, CommId::WORLD, Channel::App { tag: 42 })));
    }

    #[test]
    fn ack_cell_set_then_get() {
        let cell = AckCell::default();
        assert_eq!(cell.try_get(), None);
        cell.set(3.25);
        assert_eq!(cell.try_get(), Some(3.25));
    }
}
