//! Collective operations, built from point-to-point rounds.
//!
//! Every collective is implemented as a real algorithm (binomial trees,
//! recursive doubling, rings, pairwise/Bruck exchanges) over the internal
//! plumbing channel, so its virtual-time cost emerges from the same wire
//! model as application messages — and changes when the MPI flavor selects a
//! different algorithm, which is what the paper's Figure 7 measures.
//! Plumbing messages never touch the PMPI hook: an interposer sees one
//! `MPI_Bcast`, not its internal sends, exactly like real PMPI.

use siesta_perfmodel::noise;
use siesta_perfmodel::CollectiveAlgo;

use crate::comm::{CommId, Communicator};
use crate::hook::MpiCall;
use crate::message::{Channel, RecvStatus};
use crate::rank::Rank;

/// Number of pipeline segments used by ring/chain algorithms for large
/// payloads.
const PIPELINE_SEGMENTS: usize = 8;

impl Rank {
    fn skey(comm: CommId, seq: u32, round: u32) -> u64 {
        noise::combine(&[comm.0, seq as u64, round as u64, 0xC011])
    }

    /// Cycles to combine `bytes` of reduction operands (1 cycle/f64).
    fn reduce_cost_ns(&self, bytes: usize) -> f64 {
        (bytes as f64 / 8.0) / self.machine().cpu().freq_ghz
    }

    async fn plumb_send(&mut self, comm: &Communicator, dst_local: usize, bytes: usize, key: u64) {
        self.p2p_send_blocking(
            comm.global_of(dst_local),
            comm.rank(),
            comm.id,
            Channel::Sys { key },
            bytes,
        )
        .await;
    }

    async fn plumb_recv(&mut self, comm: &Communicator, src_local: usize, key: u64) -> RecvStatus {
        let src_global = comm.global_of(src_local);
        let id = self.post_recv_raw(src_global, comm.id, Channel::Sys { key });
        self.wait_recv_raw(id, src_global).await
    }

    /// Deadlock-free exchange: post the receive before the blocking send.
    async fn plumb_sendrecv(
        &mut self,
        comm: &Communicator,
        dst_local: usize,
        src_local: usize,
        send_bytes: usize,
        recv_bytes: usize,
        key: u64,
    ) {
        let _ = recv_bytes;
        let src_global = comm.global_of(src_local);
        let id = self.post_recv_raw(src_global, comm.id, Channel::Sys { key });
        self.p2p_send_blocking(
            comm.global_of(dst_local),
            comm.rank(),
            comm.id,
            Channel::Sys { key },
            send_bytes,
        )
        .await;
        self.wait_recv_raw(id, src_global).await;
    }

    /// Dissemination barrier over `comm` (plumbing only, no hook).
    pub(crate) async fn plumbing_barrier(&mut self, comm: &Communicator) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let seq = self.next_coll_seq(comm.id);
        let r = comm.rank();
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < p {
            let to = (r + dist) % p;
            let from = (r + p - dist) % p;
            self.plumb_sendrecv(comm, to, from, 0, 0, Self::skey(comm.id, seq, round)).await;
            dist <<= 1;
            round += 1;
        }
    }

    // ------------------------------------------------------------------
    // Public collectives
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub async fn barrier(&mut self, comm: &Communicator) {
        let call = MpiCall::Barrier { comm: comm.id };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        self.plumbing_barrier(comm).await;
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Bcast` of `bytes` from communicator-local `root`.
    pub async fn bcast(&mut self, comm: &Communicator, root: usize, bytes: usize) {
        let call = MpiCall::Bcast { comm: comm.id, root, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.bcast_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        match algo {
            CollectiveAlgo::Ring => self.ring_bcast(comm, root, bytes, seq).await,
            _ => self.binomial_bcast(comm, root, bytes, seq).await,
        }
        self.account_mpi(t0, if comm.rank() == root { bytes } else { 0 });
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Reduce` of `bytes` to communicator-local `root`.
    pub async fn reduce(&mut self, comm: &Communicator, root: usize, bytes: usize) {
        let call = MpiCall::Reduce { comm: comm.id, root, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.reduce_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        match algo {
            CollectiveAlgo::Ring => self.chain_reduce(comm, root, bytes, seq).await,
            _ => self.binomial_reduce(comm, root, bytes, seq).await,
        }
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Allreduce` of `bytes`.
    pub async fn allreduce(&mut self, comm: &Communicator, bytes: usize) {
        let call = MpiCall::Allreduce { comm: comm.id, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.allreduce_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        match algo {
            CollectiveAlgo::Ring => self.ring_allreduce(comm, bytes, seq).await,
            _ => self.rd_allreduce(comm, bytes, seq).await,
        }
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Allgather`: each rank contributes `bytes`.
    pub async fn allgather(&mut self, comm: &Communicator, bytes: usize) {
        let call = MpiCall::Allgather { comm: comm.id, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.allgather_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        if p > 1 {
            match algo {
                CollectiveAlgo::RecursiveDoubling if p.is_power_of_two() => {
                    self.rd_allgather(comm, bytes, seq).await
                }
                _ => self.ring_allgather(comm, bytes, seq).await,
            }
        }
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Alltoall`: each rank sends `bytes_per_peer` to every other rank.
    pub async fn alltoall(&mut self, comm: &Communicator, bytes_per_peer: usize) {
        let call = MpiCall::Alltoall { comm: comm.id, bytes_per_peer };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.alltoall_algo(comm.size(), bytes_per_peer);
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        if p > 1 {
            match algo {
                CollectiveAlgo::Bruck => self.bruck_alltoall(comm, bytes_per_peer, seq).await,
                _ => self.pairwise_alltoall(comm, bytes_per_peer, seq).await,
            }
        }
        // Local block copy.
        self.clock += bytes_per_peer as f64 / self.machine().net.shm_bandwidth_bpns;
        self.account_mpi(t0, bytes_per_peer * p.saturating_sub(1));
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Alltoallv` with per-peer send and receive byte counts (indexed
    /// by communicator-local rank).
    pub async fn alltoallv(
        &mut self,
        comm: &Communicator,
        send_counts: &[usize],
        recv_counts: &[usize],
    ) {
        assert_eq!(send_counts.len(), comm.size());
        assert_eq!(recv_counts.len(), comm.size());
        let call = MpiCall::Alltoallv {
            comm: comm.id,
            send_counts: send_counts.to_vec(),
            recv_counts: recv_counts.to_vec(),
        };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        let r = comm.rank();
        for step in 1..p {
            let dst = (r + step) % p;
            let src = (r + p - step) % p;
            self.plumb_sendrecv(
                comm,
                dst,
                src,
                send_counts[dst],
                recv_counts[src],
                Self::skey(comm.id, seq, step as u32),
            )
            .await;
        }
        // Local block copy.
        self.clock += send_counts[r] as f64 / self.machine().net.shm_bandwidth_bpns;
        let sent: usize = send_counts.iter().enumerate().filter(|(i, _)| *i != r).map(|(_, b)| b).sum();
        self.account_mpi(t0, sent);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Gather` of `bytes` per rank to `root`.
    pub async fn gather(&mut self, comm: &Communicator, root: usize, bytes: usize) {
        let call = MpiCall::Gather { comm: comm.id, root, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.gather_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        match algo {
            CollectiveAlgo::Linear => self.linear_gather(comm, root, bytes, seq).await,
            _ => self.binomial_gather(comm, root, bytes, seq).await,
        }
        self.account_mpi(t0, if comm.rank() == root { 0 } else { bytes });
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Scatter` of `bytes` per rank from `root`.
    pub async fn scatter(&mut self, comm: &Communicator, root: usize, bytes: usize) {
        let call = MpiCall::Scatter { comm: comm.id, root, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let algo = self.machine().flavor.gather_algo(comm.size(), bytes);
        let seq = self.next_coll_seq(comm.id);
        match algo {
            CollectiveAlgo::Linear => self.linear_scatter(comm, root, bytes, seq).await,
            _ => self.binomial_scatter(comm, root, bytes, seq).await,
        }
        self.account_mpi(t0, if comm.rank() == root { bytes * comm.size().saturating_sub(1) } else { 0 });
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Gatherv`: rank `i` contributes `counts[i]` bytes to `root`.
    pub async fn gatherv(&mut self, comm: &Communicator, root: usize, counts: &[usize]) {
        assert_eq!(counts.len(), comm.size());
        let call = MpiCall::Gatherv { comm: comm.id, root, counts: counts.to_vec() };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        if p > 1 {
            // Linear with pre-posted receives: correct for arbitrary
            // per-rank sizes (the binomial variant needs size prefixes).
            if comm.rank() == root {
                let ids: Vec<(u64, usize)> = (0..p)
                    .filter(|&s| s != root)
                    .map(|s| {
                        let src_global = comm.global_of(s);
                        let id = self.post_recv_raw(
                            src_global,
                            comm.id,
                            Channel::Sys { key: Self::skey(comm.id, seq, s as u32) },
                        );
                        (id, src_global)
                    })
                    .collect();
                for (id, src) in ids {
                    self.wait_recv_raw(id, src).await;
                }
            } else {
                let key = Self::skey(comm.id, seq, comm.rank() as u32);
                self.plumb_send(comm, root, counts[comm.rank()], key).await;
            }
        }
        let sent = if comm.rank() == root { 0 } else { counts[comm.rank()] };
        self.account_mpi(t0, sent);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Scatterv`: `root` sends `counts[i]` bytes to rank `i`.
    pub async fn scatterv(&mut self, comm: &Communicator, root: usize, counts: &[usize]) {
        assert_eq!(counts.len(), comm.size());
        let call = MpiCall::Scatterv { comm: comm.id, root, counts: counts.to_vec() };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        if p > 1 {
            if comm.rank() == root {
                #[allow(clippy::needless_range_loop)] // s is a rank, not an index
                for s in 0..p {
                    if s != root {
                        let key = Self::skey(comm.id, seq, s as u32);
                        self.plumb_send(comm, s, counts[s], key).await;
                    }
                }
            } else {
                let key = Self::skey(comm.id, seq, comm.rank() as u32);
                self.plumb_recv(comm, root, key).await;
            }
        }
        let sent: usize = if comm.rank() == root {
            counts.iter().enumerate().filter(|(i, _)| *i != root).map(|(_, c)| c).sum()
        } else {
            0
        };
        self.account_mpi(t0, sent);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Scan` (inclusive prefix reduction) via the Hillis–Steele
    /// doubling schedule: ⌈log₂p⌉ rounds; in round k, rank `r` sends its
    /// partial to `r+2ᵏ` and receives from `r−2ᵏ`.
    pub async fn scan(&mut self, comm: &Communicator, bytes: usize) {
        let call = MpiCall::Scan { comm: comm.id, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        let r = comm.rank();
        let mut d = 1usize;
        let mut round = 0u32;
        while d < p {
            let key = Self::skey(comm.id, seq, round);
            let recv_id = if r >= d {
                let src_global = comm.global_of(r - d);
                Some((self.post_recv_raw(src_global, comm.id, Channel::Sys { key }), src_global))
            } else {
                None
            };
            if r + d < p {
                self.plumb_send(comm, r + d, bytes, key).await;
            }
            if let Some((id, src)) = recv_id {
                self.wait_recv_raw(id, src).await;
                self.clock += self.reduce_cost_ns(bytes);
            }
            d <<= 1;
            round += 1;
        }
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
    }

    /// `MPI_Reduce_scatter_block`: reduce a `p·bytes_per_rank` buffer and
    /// leave block `i` on rank `i` — implemented as the ring reduce-scatter
    /// phase (p−1 chunk exchanges with combining).
    pub async fn reduce_scatter_block(&mut self, comm: &Communicator, bytes_per_rank: usize) {
        let call = MpiCall::ReduceScatterBlock { comm: comm.id, bytes_per_rank };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns;
        let seq = self.next_coll_seq(comm.id);
        let p = comm.size();
        if p > 1 {
            let r = comm.rank();
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            for step in 0..p - 1 {
                self.plumb_sendrecv(
                    comm,
                    right,
                    left,
                    bytes_per_rank,
                    bytes_per_rank,
                    Self::skey(comm.id, seq, step as u32),
                )
                .await;
                self.clock += self.reduce_cost_ns(bytes_per_rank);
            }
        }
        self.account_mpi(t0, bytes_per_rank);
        self.hook_post_c(&call, comm);
    }

    // ------------------------------------------------------------------
    // Algorithms
    // ------------------------------------------------------------------

    async fn binomial_bcast(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (relative - mask + root) % p;
                self.plumb_recv(comm, src, Self::skey(comm.id, seq, 0)).await;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst = (relative + mask + root) % p;
                self.plumb_send(comm, dst, bytes, Self::skey(comm.id, seq, 0)).await;
            }
            mask >>= 1;
        }
    }

    async fn ring_bcast(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let segs = if bytes >= PIPELINE_SEGMENTS * 4096 { PIPELINE_SEGMENTS } else { 2 };
        let seg = bytes / segs;
        let last = bytes - seg * (segs - 1);
        for s in 0..segs {
            let b = if s == segs - 1 { last } else { seg };
            let key = Self::skey(comm.id, seq, s as u32);
            if relative > 0 {
                let src = (relative - 1 + root) % p;
                self.plumb_recv(comm, src, key).await;
            }
            if relative < p - 1 {
                let dst = (relative + 1 + root) % p;
                self.plumb_send(comm, dst, b, key).await;
            }
        }
    }

    async fn binomial_reduce(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            let round = mask.trailing_zeros();
            if relative & mask == 0 {
                let src_rel = relative | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    self.plumb_recv(comm, src, Self::skey(comm.id, seq, round)).await;
                    self.clock += self.reduce_cost_ns(bytes);
                }
            } else {
                let dst = (relative - mask + root) % p;
                self.plumb_send(comm, dst, bytes, Self::skey(comm.id, seq, round)).await;
                break;
            }
            mask <<= 1;
        }
    }

    async fn chain_reduce(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let segs = if bytes >= PIPELINE_SEGMENTS * 4096 { PIPELINE_SEGMENTS } else { 2 };
        let seg = bytes / segs;
        let last = bytes - seg * (segs - 1);
        for s in 0..segs {
            let b = if s == segs - 1 { last } else { seg };
            let key = Self::skey(comm.id, seq, s as u32);
            if relative < p - 1 {
                let src = (relative + 1 + root) % p;
                self.plumb_recv(comm, src, key).await;
                self.clock += self.reduce_cost_ns(b);
            }
            if relative > 0 {
                let dst = (relative - 1 + root) % p;
                self.plumb_send(comm, dst, b, key).await;
            }
        }
    }

    async fn rd_allreduce(&mut self, comm: &Communicator, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let r = comm.rank();
        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        // Fold the remainder ranks onto their odd neighbours.
        let newrank: i64 = if r < 2 * rem {
            if r.is_multiple_of(2) {
                self.plumb_send(comm, r + 1, bytes, Self::skey(comm.id, seq, 900)).await;
                -1
            } else {
                self.plumb_recv(comm, r - 1, Self::skey(comm.id, seq, 900)).await;
                self.clock += self.reduce_cost_ns(bytes);
                (r / 2) as i64
            }
        } else {
            (r - rem) as i64
        };
        if newrank >= 0 {
            let nr = newrank as usize;
            let mut mask = 1usize;
            let mut round = 0u32;
            while mask < pof2 {
                let partner_nr = nr ^ mask;
                let partner =
                    if partner_nr < rem { partner_nr * 2 + 1 } else { partner_nr + rem };
                self.plumb_sendrecv(
                    comm,
                    partner,
                    partner,
                    bytes,
                    bytes,
                    Self::skey(comm.id, seq, round),
                )
                .await;
                self.clock += self.reduce_cost_ns(bytes);
                mask <<= 1;
                round += 1;
            }
        }
        // Deliver the result back to the folded even ranks.
        if r < 2 * rem {
            let key = Self::skey(comm.id, seq, 901);
            if r % 2 == 1 {
                self.plumb_send(comm, r - 1, bytes, key).await;
            } else {
                self.plumb_recv(comm, r + 1, key).await;
            }
        }
    }

    async fn ring_allreduce(&mut self, comm: &Communicator, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let r = comm.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        let chunk = bytes.div_ceil(p);
        // Reduce-scatter phase.
        for step in 0..p - 1 {
            self.plumb_sendrecv(comm, right, left, chunk, chunk, Self::skey(comm.id, seq, step as u32))
                .await;
            self.clock += self.reduce_cost_ns(chunk);
        }
        // Allgather phase.
        for step in 0..p - 1 {
            self.plumb_sendrecv(
                comm,
                right,
                left,
                chunk,
                chunk,
                Self::skey(comm.id, seq, 1000 + step as u32),
            )
            .await;
        }
    }

    async fn rd_allgather(&mut self, comm: &Communicator, bytes: usize, seq: u32) {
        let p = comm.size();
        let r = comm.rank();
        let mut cur = bytes;
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let partner = r ^ mask;
            self.plumb_sendrecv(comm, partner, partner, cur, cur, Self::skey(comm.id, seq, round))
                .await;
            cur *= 2;
            mask <<= 1;
            round += 1;
        }
    }

    async fn ring_allgather(&mut self, comm: &Communicator, bytes: usize, seq: u32) {
        let p = comm.size();
        let r = comm.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        for step in 0..p - 1 {
            self.plumb_sendrecv(comm, right, left, bytes, bytes, Self::skey(comm.id, seq, step as u32))
                .await;
        }
    }

    async fn pairwise_alltoall(&mut self, comm: &Communicator, bytes: usize, seq: u32) {
        let p = comm.size();
        let r = comm.rank();
        for step in 1..p {
            let dst = (r + step) % p;
            let src = (r + p - step) % p;
            self.plumb_sendrecv(comm, dst, src, bytes, bytes, Self::skey(comm.id, seq, step as u32))
                .await;
        }
    }

    async fn bruck_alltoall(&mut self, comm: &Communicator, bytes_per_peer: usize, seq: u32) {
        let p = comm.size();
        let r = comm.rank();
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            // Blocks whose index has this bit set travel this round.
            let blocks = (1..p).filter(|i| i & mask != 0).count();
            let dst = (r + mask) % p;
            let src = (r + p - mask) % p;
            let b = blocks * bytes_per_peer;
            self.plumb_sendrecv(comm, dst, src, b, b, Self::skey(comm.id, seq, round)).await;
            mask <<= 1;
            round += 1;
        }
    }

    async fn linear_gather(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        if comm.rank() == root {
            // Post everything first so rendezvous senders can progress.
            let ids: Vec<(u64, usize)> = (0..p)
                .filter(|&s| s != root)
                .map(|s| {
                    let src_global = comm.global_of(s);
                    let id = self.post_recv_raw(
                        src_global,
                        comm.id,
                        Channel::Sys { key: Self::skey(comm.id, seq, s as u32) },
                    );
                    (id, src_global)
                })
                .collect();
            for (id, src) in ids {
                self.wait_recv_raw(id, src).await;
            }
        } else {
            let key = Self::skey(comm.id, seq, comm.rank() as u32);
            self.plumb_send(comm, root, bytes, key).await;
        }
    }

    async fn binomial_gather(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let mut mask = 1usize;
        let mut my_bytes = bytes;
        while mask < p {
            let round = mask.trailing_zeros();
            if relative & mask == 0 {
                let src_rel = relative + mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let st = self.plumb_recv(comm, src, Self::skey(comm.id, seq, round)).await;
                    my_bytes += st.bytes;
                }
            } else {
                let dst = (relative - mask + root) % p;
                self.plumb_send(comm, dst, my_bytes, Self::skey(comm.id, seq, round)).await;
                break;
            }
            mask <<= 1;
        }
    }

    async fn linear_scatter(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        if comm.rank() == root {
            for s in 0..p {
                if s != root {
                    self.plumb_send(comm, s, bytes, Self::skey(comm.id, seq, s as u32)).await;
                }
            }
        } else {
            let key = Self::skey(comm.id, seq, comm.rank() as u32);
            self.plumb_recv(comm, root, key).await;
        }
    }

    async fn binomial_scatter(&mut self, comm: &Communicator, root: usize, bytes: usize, seq: u32) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let relative = (comm.rank() + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (relative - mask + root) % p;
                self.plumb_recv(comm, src, Self::skey(comm.id, seq, mask.trailing_zeros())).await;
                break;
            }
            mask <<= 1;
        }
        if relative == 0 {
            mask = 1;
            while mask < p {
                mask <<= 1;
            }
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst_rel = relative + mask;
                let subtree = mask.min(p - dst_rel);
                let dst = (dst_rel + root) % p;
                self.plumb_send(
                    comm,
                    dst,
                    subtree * bytes,
                    Self::skey(comm.id, seq, mask.trailing_zeros()),
                )
                .await;
            }
            mask >>= 1;
        }
    }
}

fn prev_pow2(n: usize) -> usize {
    let mut p = 1usize;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    #[test]
    fn prev_pow2_values() {
        use super::prev_pow2;
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(64), 64);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(65), 64);
        assert_eq!(prev_pow2(529), 512);
    }
}
