//! The virtual-time profiler: a [`PmpiHook`] that records every
//! application-level MPI call as a per-rank timeline interval.
//!
//! Each completed call becomes one fixed-size [`SimEvent`] — `(rank,
//! call class, vtime start, vtime end, peer/comm, bytes, blocked wait)`.
//! Recording happens only in the `post` hook: the runtime threads the
//! call's start time and exact blocked-wait total through
//! [`HookCtx::call_start_ns`] / [`HookCtx::wait_ns`].
//!
//! # Storage: per-thread logs, not rank tracks
//!
//! The obvious layout — one buffer per rank — is cache-hostile at scale:
//! the scheduler interleaves ranks, so consecutive events land in
//! different rank buffers and every push is a cold miss plus a possibly
//! migrating mutex line (measured ~150 ns/event at 4 096 ranks, blowing
//! the <5% overhead budget). Instead the default (unbounded) mode appends
//! to a **per-thread log** — the same single-writer chunked-buffer
//! discipline as the span flight recorder (`siesta_obs::span`): each
//! worker registers its own chunk list on first push and then writes
//! lock-free, publishing each event with a release store of the chunk's
//! committed length. The write head stays in that core's L1, so a push
//! is two plain stores; allocation happens once per [`CHUNK`] events and
//! sealed chunks never move. Program order per rank is preserved by
//! [`HookCtx::call_seq`] — the rank's own hooked-call ordinal, counted in
//! state that is already hot in the polling worker — and
//! [`SimProfiler::snapshot`] merges the logs back into per-rank tracks by
//! `(rank, seq)`. (Per-worker `Mutex<Vec>` shards work too, but the
//! uncontended lock and the extra cold line per push are measurable at
//! 64k ranks.)
//!
//! With `SIESTA_SIM_EVT_CAP` set, recording switches to bounded per-rank
//! rings ([`siesta_obs::timeline::Timeline`]) that keep the newest `cap`
//! events per rank with exact drop counts — the flight-recorder
//! discipline; bounded memory is worth the slower scattered writes.
//!
//! The profiler charges **zero** virtual overhead — it observes the
//! simulation without perturbing the clocks, so schedules (and
//! `schedule_hash`) are identical with profiling on or off.
//!
//! Peers are recorded as *global* ranks where the PMPI view permits:
//! communicator-local ranks equal global ranks only on `MPI_COMM_WORLD`,
//! so non-world point-to-point events carry [`NO_PEER`] (they still
//! appear on the timeline; the critical-path extractor counts them as
//! unmatchable instead of guessing).
//!
//! Process-global enable/install/take plumbing mirrors
//! [`crate::comm_matrix`]: the CLI enables collection, hook construction
//! installs a fresh collector per world, and the exporter takes the last
//! snapshot after the command ran.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use siesta_obs::timeline::{Timeline, TrackSnapshot};
use siesta_obs::vtime::{self, ClassRow, VtSpan, VtTraceMeta};

use crate::comm::CommId;
use crate::hook::{HookCtx, MpiCall, PmpiHook, NUM_CALL_CLASSES};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The collector of the current (most recent) profiled run.
static CURRENT: Mutex<Option<Arc<SimProfiler>>> = Mutex::new(None);

/// Turn virtual-time profiling on or off (off by default). While on, the
/// pipeline and the CLI's `simulate` command install a [`SimProfiler`]
/// in the hook chain of every world they run.
pub fn set_sim_profile_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is virtual-time profiling enabled?
pub fn sim_profile_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// "No peer recorded": non-world communicator, or the call has no peer.
pub const NO_PEER: u32 = u32::MAX;

/// Request-id slots inlined per event; `MPI_Waitall` over more requests
/// records [`REQS_OVERFLOW`] instead (counted, never mismatched). Four
/// covers the common stencil waitalls (one request per face) while
/// keeping the event small — recording streams ~100 MB at 64k ranks, so
/// every inline slot is measurable wall time.
pub const MAX_INLINE_REQS: usize = 4;

/// `nreqs` sentinel: the call completed more requests than fit inline.
pub const REQS_OVERFLOW: u8 = u8::MAX;

/// One recorded MPI call interval. Fixed-size and `Copy` so ring-capped
/// tracks stay flat arrays.
#[derive(Debug, Clone, Copy)]
pub struct SimEvent {
    /// [`MpiCall::class_index`] of the call.
    pub class: u16,
    /// Inlined request count in `reqs`, or [`REQS_OVERFLOW`].
    pub nreqs: u8,
    /// Primary tag: send tag for sends, recv tag for receives.
    pub tag: i32,
    /// `MPI_Sendrecv` only: the receive-side tag.
    pub tag2: i32,
    /// Global peer rank — destination for sends, source for receives —
    /// when attributable (world communicator), else [`NO_PEER`].
    pub peer: u32,
    /// `MPI_Sendrecv` only: the receive-side global source.
    pub peer2: u32,
    /// Raw communicator id of the call (0 for comm-less calls).
    pub comm: u64,
    /// Payload bytes ([`MpiCall::payload_bytes`]).
    pub bytes: u64,
    /// Request ids: the allocated id for `Isend`/`Irecv`, the completed
    /// ids for `Wait`/`Waitall`.
    pub reqs: [u32; MAX_INLINE_REQS],
    /// Virtual time entering the call (pre hook).
    pub t0: f64,
    /// Virtual time leaving the call (post hook).
    pub t1: f64,
    /// Blocked-wait portion of `t1 - t0` (see [`HookCtx::wait_ns`]).
    /// Stored `f32` (±2⁻²⁴ relative — sub-percent on any printable wait)
    /// to keep the event at exactly one cache line; the interval bounds
    /// stay `f64` because tests and the critical path compare them
    /// against exact virtual clocks.
    pub wait_ns: f32,
}

impl SimEvent {
    /// Interval length in virtual nanoseconds.
    pub fn dur_ns(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// One `(rank, call_seq, event)` record in a thread log.
type Rec = (u32, u32, SimEvent);

/// Events per storage chunk (~36 KB): big enough to amortize the
/// allocation, small enough that freed chunks recycle through the
/// allocator's ordinary bins across runs. Chunks — unlike one growing
/// `Vec` — never relocate, so appending 100+ MB at 64k ranks costs no
/// doubling memcpys and no fresh page faults on re-runs.
const CHUNK: usize = 512;

/// A fixed-capacity event chunk with a published length. Single writer
/// (the log's owning thread) appends with `recs[len].write(...)` followed
/// by a release store of `len + 1`; any reader that acquire-loads `len`
/// may then read the first `len` records — the standard single-producer
/// publish, same as the span flight recorder's committed counter.
struct LogChunk {
    len: AtomicUsize,
    recs: UnsafeCell<[MaybeUninit<Rec>; CHUNK]>,
}

// SAFETY: `recs` is written only by the owning thread (guaranteed by the
// thread-local slot protocol in `Sharded::push`), and readers only touch
// the prefix published through the release/acquire `len`.
unsafe impl Sync for LogChunk {}

impl LogChunk {
    fn boxed() -> Box<LogChunk> {
        // Only `len` needs initializing: `recs` slots are `MaybeUninit`
        // until published. Avoids materializing 36 KB on the stack.
        let mut chunk = Box::<LogChunk>::new_uninit();
        unsafe {
            std::ptr::addr_of_mut!((*chunk.as_mut_ptr()).len).write(AtomicUsize::new(0));
            chunk.assume_init()
        }
    }
}

/// Chunks parked by dropped profilers, recycled by later ones. At scale
/// the dominant recording cost is not the stores but faulting fresh pages
/// for the event stream (a 64k-rank halo run writes ~190 MB of chunks);
/// a process that simulates more than one world — rep loops, sweeps, the
/// overhead bench itself — would pay that fault storm per run. Parked
/// chunks keep their pages resident, so only the first run is cold.
static CHUNK_POOL: Mutex<Vec<Box<LogChunk>>> = Mutex::new(Vec::new());

/// Upper bound on parked chunks (~300 MB): enough to cover a 64k-rank
/// run's whole stream, small enough that a long-lived host process isn't
/// hoarding arbitrary memory after a huge one-off simulation.
const POOL_CAP: usize = 8192;

/// A chunk from the pool if one is parked, else freshly allocated. The
/// recycled chunk's `len` reset is safe to be relaxed: the caller is the
/// chunk's sole writer, and readers only discover the chunk through the
/// log mutex, which orders the reset before any of their loads.
fn pool_get() -> Box<LogChunk> {
    match CHUNK_POOL.lock().unwrap().pop() {
        Some(chunk) => {
            chunk.len.store(0, Ordering::Relaxed);
            chunk
        }
        None => LogChunk::boxed(),
    }
}

/// Park `chunks` (newest first) until the pool hits [`POOL_CAP`]; the
/// rest free normally.
fn pool_put(chunks: &mut Vec<Box<LogChunk>>) {
    let mut pool = CHUNK_POOL.lock().unwrap();
    while pool.len() < POOL_CAP {
        match chunks.pop() {
            Some(chunk) => pool.push(chunk),
            None => break,
        }
    }
}

/// One thread's append log: sealed chunks plus the write head, all
/// behind a registration mutex the writer takes only once per [`CHUNK`]
/// events (and readers take to enumerate chunks).
#[derive(Default)]
struct ThreadLog {
    chunks: Mutex<Vec<Box<LogChunk>>>,
}

/// Writer-side cache of where the calling thread is appending: which
/// profiler generation the pointers belong to, plus this thread's log
/// and its current head chunk. The head's fill level lives in the chunk
/// itself (`LogChunk::len` — reading back one's own store is L1-hot), so
/// the fast path never writes the TLS cell. One slot per thread: a
/// thread interleaving pushes to two *live* profilers would re-register
/// on every switch — the simulator never does that (one world at a time
/// per thread), and it would only cost memory, never correctness.
#[derive(Clone, Copy)]
struct TlsSlot {
    gen: u64,
    log: *const ThreadLog,
    head: *const LogChunk,
}

thread_local! {
    static SLOT: Cell<TlsSlot> = const {
        Cell::new(TlsSlot { gen: 0, log: std::ptr::null(), head: std::ptr::null() })
    };
}

/// Generation ids for [`TlsSlot`] validity: every profiler instance gets
/// a fresh one, so a stale slot can never alias a new profiler's chunks.
static GEN: AtomicU64 = AtomicU64::new(1);

// The boxes are load-bearing, not redundant heap indirection: [`TlsSlot`]
// caches raw pointers to logs, which must not move when the registry
// vector grows.
#[allow(clippy::vec_box)]
enum Store {
    /// Default (unbounded): lock-free per-thread logs, merged into rank
    /// tracks at snapshot time by the rank's call ordinal. See module docs.
    Sharded { nranks: usize, gen: u64, logs: Mutex<Vec<Box<ThreadLog>>> },
    /// `SIESTA_SIM_EVT_CAP` ring mode: bounded per-rank rings with exact
    /// drop counts.
    Ring(Timeline<SimEvent>),
}

/// The recording hook. Construct per world via [`SimProfiler::install`].
pub struct SimProfiler {
    store: Store,
}

impl SimProfiler {
    /// A free-standing profiler for `nranks` tracks keeping at most
    /// `cap_per_track` events each (`0` = unbounded). Not registered
    /// anywhere: read it back with [`SimProfiler::snapshot`].
    pub fn new(nranks: usize, cap_per_track: usize) -> Arc<SimProfiler> {
        let store = if cap_per_track == 0 {
            Store::Sharded {
                nranks,
                gen: GEN.fetch_add(1, Ordering::Relaxed),
                logs: Mutex::new(Vec::new()),
            }
        } else {
            Store::Ring(Timeline::new(nranks, cap_per_track))
        };
        Arc::new(SimProfiler { store })
    }

    /// Build a profiler for `nranks` tracks and install it as the
    /// process-global "current" collector (replacing any previous one).
    /// Per-rank capacity comes from `SIESTA_SIM_EVT_CAP` (0/unset =
    /// unbounded; at scale, ring mode keeps the newest events per rank
    /// with exact drop counts).
    pub fn install(nranks: usize) -> Arc<SimProfiler> {
        let cap = std::env::var("SIESTA_SIM_EVT_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0usize);
        let p = Self::new(nranks, cap);
        *CURRENT.lock().unwrap() = Some(p.clone());
        p
    }

    fn push(&self, rank: usize, seq: u32, ev: SimEvent) {
        match &self.store {
            Store::Sharded { nranks, gen, logs } => {
                // Out-of-range ranks are ignored (never panic in the
                // simulator's hot path).
                if rank >= *nranks {
                    return;
                }
                let mut slot = SLOT.get();
                // SAFETY (both blocks): `slot.gen == *gen` proves
                // `slot.head` points into this live profiler's chunk
                // list (generations are globally unique and the boxes
                // are stable and retained until the profiler drops), and
                // this thread is the chunk's sole writer — the slot
                // protocol hands each head chunk to exactly one thread,
                // so the relaxed `len` load reads this thread's own last
                // store. The write goes through a raw element pointer
                // (never a reference to the whole array), so it cannot
                // overlap `snapshot`'s reads of already-published
                // elements; the release store then publishes the record
                // for acquire-side readers.
                let mut len = if slot.gen == *gen {
                    unsafe { (*slot.head).len.load(Ordering::Relaxed) }
                } else {
                    CHUNK
                };
                if len == CHUNK {
                    // Slow path (first push from this thread, or head
                    // full): register / seal under the log mutex.
                    slot = self.new_head(slot, *gen, logs);
                    len = 0;
                }
                unsafe {
                    let chunk = &*slot.head;
                    let base: *mut MaybeUninit<Rec> = chunk.recs.get().cast();
                    (*base.add(len)).write((rank as u32, seq, ev));
                    chunk.len.store(len + 1, Ordering::Release);
                }
            }
            Store::Ring(timeline) => timeline.push(rank, ev),
        }
    }

    /// Slow path of the sharded push: give the calling thread a fresh
    /// head chunk — registering its log on the first call — and return
    /// the updated slot (already stored back to the TLS cell).
    #[cold]
    #[allow(clippy::vec_box)] // see `Store::Sharded`
    fn new_head(&self, slot: TlsSlot, gen: u64, logs: &Mutex<Vec<Box<ThreadLog>>>) -> TlsSlot {
        let log: *const ThreadLog = if slot.gen == gen {
            // Same profiler, head just filled up: keep appending chunks
            // to this thread's existing log.
            slot.log
        } else {
            let mut reg = logs.lock().unwrap();
            reg.push(Box::new(ThreadLog::default()));
            &**reg.last().expect("just pushed")
        };
        // SAFETY: `log` came from this profiler's registry (either just
        // pushed above, or via a slot whose generation matches), whose
        // boxes are stable and outlive every push (`&self` keeps the
        // profiler alive).
        let mut chunks = unsafe { &(*log).chunks }.lock().unwrap();
        chunks.push(pool_get());
        let head: *const LogChunk = &**chunks.last().expect("just pushed");
        drop(chunks);
        let fresh = TlsSlot { gen, log, head };
        SLOT.set(fresh);
        fresh
    }

    /// Copy the recorded timelines out (tracks in rank order, events in
    /// program order).
    pub fn snapshot(&self) -> SimProfileSnapshot {
        match &self.store {
            Store::Sharded { nranks, logs, .. } => {
                let mut per_rank: Vec<Vec<(u32, SimEvent)>> = vec![Vec::new(); *nranks];
                for log in logs.lock().unwrap().iter() {
                    for chunk in log.chunks.lock().unwrap().iter() {
                        let n = chunk.len.load(Ordering::Acquire);
                        let base: *const MaybeUninit<Rec> = chunk.recs.get().cast();
                        for i in 0..n {
                            // SAFETY: the acquire load of `len` pairs
                            // with the writer's release store, so the
                            // first `n` records are fully initialized;
                            // reads go through per-element pointers that
                            // never overlap the writer's in-flight slot.
                            let (rank, seq, ev) = unsafe { (*base.add(i)).assume_init() };
                            per_rank[rank as usize].push((seq, ev));
                        }
                    }
                }
                let tracks = per_rank
                    .into_iter()
                    .map(|mut recs| {
                        recs.sort_unstable_by_key(|&(seq, _)| seq);
                        TrackSnapshot {
                            events: recs.into_iter().map(|(_, ev)| ev).collect(),
                            dropped: 0,
                        }
                    })
                    .collect();
                SimProfileSnapshot { nranks: *nranks, tracks }
            }
            Store::Ring(timeline) => SimProfileSnapshot {
                nranks: timeline.ntracks(),
                tracks: timeline.snapshot(),
            },
        }
    }
}

impl Drop for SimProfiler {
    /// Park this profiler's chunks for reuse (see [`CHUNK_POOL`]). Stale
    /// TLS slots pointing at parked chunks are harmless: their generation
    /// can never match a future profiler's, so they are never followed.
    fn drop(&mut self) {
        if let Store::Sharded { logs, .. } = &self.store {
            for log in logs.lock().unwrap().iter() {
                pool_put(&mut log.chunks.lock().unwrap());
            }
        }
    }
}

impl PmpiHook for SimProfiler {
    fn pre(&self, _ctx: &HookCtx, _call: &MpiCall) {}

    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        let mut ev = SimEvent {
            class: call.class_index() as u16,
            nreqs: 0,
            tag: -1,
            tag2: -1,
            peer: NO_PEER,
            peer2: NO_PEER,
            comm: 0,
            bytes: call.payload_bytes() as u64,
            reqs: [0; MAX_INLINE_REQS],
            t0: ctx.call_start_ns,
            t1: ctx.clock_ns,
            wait_ns: ctx.wait_ns as f32,
        };
        // Local == global rank only on the world communicator; elsewhere
        // the PMPI view cannot attribute a global peer.
        let world_peer = |comm: &CommId, local: usize| {
            if *comm == CommId::WORLD { local as u32 } else { NO_PEER }
        };
        match call {
            MpiCall::Send { comm, dest, tag, .. } => {
                ev.comm = comm.0;
                ev.tag = *tag;
                ev.peer = world_peer(comm, *dest);
            }
            MpiCall::Recv { comm, src, tag, .. } => {
                ev.comm = comm.0;
                ev.tag = *tag;
                ev.peer = world_peer(comm, *src);
            }
            MpiCall::Isend { comm, dest, tag, req, .. } => {
                ev.comm = comm.0;
                ev.tag = *tag;
                ev.peer = world_peer(comm, *dest);
                ev.reqs[0] = *req as u32;
                ev.nreqs = 1;
            }
            MpiCall::Irecv { comm, src, tag, req, .. } => {
                ev.comm = comm.0;
                ev.tag = *tag;
                ev.peer = world_peer(comm, *src);
                ev.reqs[0] = *req as u32;
                ev.nreqs = 1;
            }
            MpiCall::Wait { req } => {
                ev.reqs[0] = *req as u32;
                ev.nreqs = 1;
            }
            MpiCall::Waitall { reqs } => {
                if reqs.len() <= MAX_INLINE_REQS {
                    for (slot, r) in ev.reqs.iter_mut().zip(reqs) {
                        *slot = *r as u32;
                    }
                    ev.nreqs = reqs.len() as u8;
                } else {
                    ev.nreqs = REQS_OVERFLOW;
                }
            }
            MpiCall::Sendrecv { comm, dest, send_tag, src, recv_tag, .. } => {
                ev.comm = comm.0;
                ev.tag = *send_tag;
                ev.tag2 = *recv_tag;
                ev.peer = world_peer(comm, *dest);
                ev.peer2 = world_peer(comm, *src);
            }
            MpiCall::CommSplit { parent, .. } | MpiCall::CommDup { parent, .. } => {
                ev.comm = parent.0;
            }
            MpiCall::CommFree { comm }
            | MpiCall::Barrier { comm }
            | MpiCall::Bcast { comm, .. }
            | MpiCall::Reduce { comm, .. }
            | MpiCall::Allreduce { comm, .. }
            | MpiCall::Allgather { comm, .. }
            | MpiCall::Alltoall { comm, .. }
            | MpiCall::Alltoallv { comm, .. }
            | MpiCall::Gather { comm, .. }
            | MpiCall::Scatter { comm, .. }
            | MpiCall::Gatherv { comm, .. }
            | MpiCall::Scatterv { comm, .. }
            | MpiCall::Scan { comm, .. }
            | MpiCall::ReduceScatterBlock { comm, .. } => {
                ev.comm = comm.0;
            }
        }
        self.push(ctx.rank, ctx.call_seq, ev);
    }
}

/// Per-rank timelines of one profiled run, in program order.
#[derive(Debug, Clone)]
pub struct SimProfileSnapshot {
    pub nranks: usize,
    /// One track per rank: events oldest-first plus the exact ring-drop
    /// count (0 unless `SIESTA_SIM_EVT_CAP` bounded the recording).
    pub tracks: Vec<TrackSnapshot<SimEvent>>,
}

impl SimProfileSnapshot {
    /// Events retained across all ranks.
    pub fn events_total(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Events overwritten by ring-capped recording, across all ranks.
    pub fn events_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Export as a Chrome trace in virtual time: one track per rank,
    /// strided to at most `max_tracks` tracks (0 = no cap) so huge worlds
    /// stay loadable. Deterministic: virtual timestamps are a pure
    /// function of the program and tracks export in rank order.
    pub fn chrome_trace_json(&self, max_tracks: usize) -> String {
        let stride = vtime::export_stride(self.nranks, max_tracks);
        let mut spans = Vec::new();
        let mut skipped = 0u64;
        for (rank, track) in self.tracks.iter().enumerate() {
            if rank % stride != 0 {
                skipped += track.events.len() as u64;
                continue;
            }
            for ev in &track.events {
                spans.push(VtSpan {
                    track: rank as u32,
                    name: MpiCall::class_name(ev.class as usize),
                    ts_ns: ev.t0,
                    dur_ns: ev.dur_ns(),
                    wait_ns: ev.wait_ns as f64,
                    bytes: ev.bytes,
                });
            }
        }
        let meta = VtTraceMeta {
            tracks_total: self.nranks,
            tracks_exported: self.nranks.div_ceil(stride),
            events_dropped: self.events_dropped(),
            events_skipped: skipped,
        };
        vtime::chrome_trace_json(&spans, &meta)
    }

    /// Aggregate the per-call-class wait/transfer rows (classes with at
    /// least one call, in class-index order — deterministic).
    pub fn class_breakdown(&self) -> Vec<ClassRow> {
        let mut count = [0u64; NUM_CALL_CLASSES];
        let mut total = [0.0f64; NUM_CALL_CLASSES];
        let mut wait = [0.0f64; NUM_CALL_CLASSES];
        let mut bytes = [0u64; NUM_CALL_CLASSES];
        for track in &self.tracks {
            for ev in &track.events {
                let c = (ev.class as usize).min(NUM_CALL_CLASSES - 1);
                count[c] += 1;
                total[c] += ev.dur_ns();
                wait[c] += ev.wait_ns as f64;
                bytes[c] += ev.bytes;
            }
        }
        (0..NUM_CALL_CLASSES)
            .filter(|&c| count[c] > 0)
            .map(|c| ClassRow {
                name: MpiCall::class_name(c),
                count: count[c],
                total_ns: total[c],
                wait_ns: wait[c],
                bytes: bytes[c],
            })
            .collect()
    }

    /// Render the wait/transfer breakdown table, with a drop-accounting
    /// trailer when ring mode lost events.
    pub fn render_breakdown(&self) -> String {
        let mut out = vtime::render_class_table(&self.class_breakdown());
        let dropped = self.events_dropped();
        if dropped > 0 {
            out.push_str(&format!(
                "(ring-capped: {dropped} events dropped; raise SIESTA_SIM_EVT_CAP for full coverage)\n"
            ));
        }
        out
    }
}

/// Take the snapshot of the most recently installed profiler, leaving
/// none behind. `None` if no profiled world ran.
pub fn take_sim_profile() -> Option<SimProfileSnapshot> {
    let p = CURRENT.lock().unwrap().take()?;
    Some(p.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::CounterVec;

    fn ctx(rank: usize, t0: f64, t1: f64, wait: f64) -> HookCtx {
        HookCtx {
            rank,
            clock_ns: t1,
            counters: CounterVec::ZERO,
            comm_rank: rank,
            comm_size: 2,
            call_start_ns: t0,
            wait_ns: wait,
            // Tests advance t0 per rank, so it doubles as the call ordinal.
            call_seq: t0 as u32,
        }
    }

    #[test]
    fn records_intervals_with_peer_and_wait() {
        let p = SimProfiler::install(2);
        let send = MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 7, bytes: 64 };
        p.post(&ctx(0, 10.0, 30.0, 0.0), &send);
        let recv = MpiCall::Recv { comm: CommId::WORLD, src: 0, tag: 7, bytes: 64 };
        p.post(&ctx(1, 5.0, 40.0, 25.0), &recv);
        // Non-world peers are not attributable.
        let sub = MpiCall::Send { comm: CommId(9), dest: 0, tag: 1, bytes: 8 };
        p.post(&ctx(1, 41.0, 42.0, 0.0), &sub);

        let snap = take_sim_profile().expect("installed");
        assert_eq!(snap.nranks, 2);
        let s = &snap.tracks[0].events[0];
        assert_eq!((s.class, s.peer, s.tag, s.bytes), (0, 1, 7, 64));
        assert_eq!((s.t0, s.t1, s.wait_ns), (10.0, 30.0, 0.0));
        let r = &snap.tracks[1].events[0];
        assert_eq!((r.class, r.peer, r.wait_ns), (1, 0, 25.0));
        assert_eq!(snap.tracks[1].events[1].peer, NO_PEER);
        assert!(take_sim_profile().is_none());
    }

    #[test]
    fn waitall_inlines_small_and_flags_overflow() {
        let p = SimProfiler::install(1);
        p.post(&ctx(0, 0.0, 1.0, 0.0), &MpiCall::Waitall { reqs: vec![3, 1, 2] });
        p.post(&ctx(0, 1.0, 2.0, 0.0), &MpiCall::Waitall { reqs: (0..12).collect() });
        let snap = take_sim_profile().unwrap();
        let small = &snap.tracks[0].events[0];
        assert_eq!(small.nreqs, 3);
        assert_eq!(&small.reqs[..3], &[3, 1, 2]);
        assert_eq!(snap.tracks[0].events[1].nreqs, REQS_OVERFLOW);
    }

    #[test]
    fn breakdown_and_trace_are_deterministic() {
        let p = SimProfiler::install(4);
        for r in 0..4 {
            let call = MpiCall::Allreduce { comm: CommId::WORLD, bytes: 8 };
            p.post(&ctx(r, r as f64, 10.0, 10.0 - r as f64 - 1.0), &call);
        }
        let snap = take_sim_profile().unwrap();
        let rows = snap.class_breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "MPI_Allreduce");
        assert_eq!(rows[0].count, 4);
        let a = snap.chrome_trace_json(2);
        assert_eq!(a, snap.chrome_trace_json(2));
        // Stride 2 keeps ranks 0 and 2, skipping 2 tracks' events.
        assert!(a.contains("\"tracks_exported\":2"));
        assert!(a.contains("\"events_skipped\":2"));
    }
}
