//! Non-blocking operation requests.
//!
//! Request slots are recycled through a free list, so — like real
//! `MPI_Request` values — the integer a program observes for a given logical
//! request depends on allocation history. This is exactly the behaviour the
//! paper's free-number pool normalizes away on the tracing side.

use std::sync::Arc;

use crate::message::{AckCell, Tag};

/// Handle to an outstanding non-blocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub usize);

#[derive(Debug)]
pub(crate) enum ReqState {
    /// Posted receive waiting in the engine.
    RecvPending { recv_id: u64 },
    /// Eager send: completed locally at a known virtual time.
    SendDone { done: f64 },
    /// Rendezvous send: completion time lands in this cell when the
    /// receiver matches.
    SendRendezvous { ack: Arc<AckCell> },
}

/// What kind of call produced a request — used by `MpiCall` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    Send,
    Recv,
}

pub(crate) struct RequestTable {
    slots: Vec<Option<ReqState>>,
    free: Vec<usize>,
    /// Tag originally posted, for status reporting on receives.
    tags: Vec<Tag>,
}

impl RequestTable {
    pub fn new() -> RequestTable {
        RequestTable { slots: Vec::new(), free: Vec::new(), tags: Vec::new() }
    }

    pub fn alloc(&mut self, state: ReqState, tag: Tag) -> Request {
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = Some(state);
            self.tags[idx] = tag;
            Request(idx)
        } else {
            self.slots.push(Some(state));
            self.tags.push(tag);
            Request(self.slots.len() - 1)
        }
    }

    /// Take the state out, releasing the slot for reuse.
    pub fn take(&mut self, req: Request) -> (ReqState, Tag) {
        let state = self.slots[req.0]
            .take()
            .expect("request already completed or never allocated");
        self.free.push(req.0);
        (state, self.tags[req.0])
    }

    /// Peek without consuming (for `test`).
    pub fn get(&self, req: Request) -> Option<&ReqState> {
        self.slots.get(req.0).and_then(|s| s.as_ref())
    }

    pub fn outstanding(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_recycled_lifo() {
        let mut t = RequestTable::new();
        let a = t.alloc(ReqState::SendDone { done: 1.0 }, 0);
        let b = t.alloc(ReqState::SendDone { done: 2.0 }, 0);
        assert_eq!((a.0, b.0), (0, 1));
        t.take(a);
        let c = t.alloc(ReqState::SendDone { done: 3.0 }, 0);
        assert_eq!(c.0, 0, "freed slot is reused");
        assert_eq!(t.outstanding(), 2);
        t.take(b);
        t.take(c);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "already completed")]
    fn double_take_panics() {
        let mut t = RequestTable::new();
        let a = t.alloc(ReqState::SendDone { done: 1.0 }, 0);
        t.take(a);
        t.take(a);
    }

    #[test]
    fn tags_are_remembered() {
        let mut t = RequestTable::new();
        let a = t.alloc(ReqState::SendDone { done: 1.0 }, 17);
        let (_, tag) = t.take(a);
        assert_eq!(tag, 17);
    }
}
