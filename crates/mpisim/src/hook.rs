//! PMPI-style interposition.
//!
//! Real Siesta builds on mpiP, which builds on PMPI: every `MPI_Xxx` call is
//! wrapped so profiling code runs before and after `PMPI_Xxx`. Here the
//! runtime plays the MPI library and a [`PmpiHook`] plays the interposer:
//! the runtime invokes `pre`/`post` around every application-level MPI call
//! with a complete call record. The hook also declares its per-call cost,
//! which the runtime charges to the rank's virtual clock — that is how the
//! Table 3 "overhead" column is reproduced.

use siesta_perfmodel::CounterVec;

use crate::comm::CommId;
use crate::message::Tag;

/// Number of [`MpiCall`] variants; the range of [`MpiCall::class_index`].
pub const NUM_CALL_CLASSES: usize = 23;

/// A fully-parameterized MPI call, as a PMPI wrapper would observe it.
///
/// Ranks in the records are **communicator-local** (what the application
/// passes), matching what a real tracer sees. Request ids are the runtime's
/// raw slot numbers — allocation-history-dependent, like real handles.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiCall {
    Send { comm: CommId, dest: usize, tag: Tag, bytes: usize },
    Recv { comm: CommId, src: usize, tag: Tag, bytes: usize },
    Isend { comm: CommId, dest: usize, tag: Tag, bytes: usize, req: usize },
    Irecv { comm: CommId, src: usize, tag: Tag, bytes: usize, req: usize },
    Wait { req: usize },
    Waitall { reqs: Vec<usize> },
    Sendrecv {
        comm: CommId,
        dest: usize,
        send_tag: Tag,
        send_bytes: usize,
        src: usize,
        recv_tag: Tag,
        recv_bytes: usize,
    },
    Barrier { comm: CommId },
    Bcast { comm: CommId, root: usize, bytes: usize },
    Reduce { comm: CommId, root: usize, bytes: usize },
    Allreduce { comm: CommId, bytes: usize },
    Allgather { comm: CommId, bytes: usize },
    Alltoall { comm: CommId, bytes_per_peer: usize },
    Alltoallv { comm: CommId, send_counts: Vec<usize>, recv_counts: Vec<usize> },
    Gather { comm: CommId, root: usize, bytes: usize },
    Scatter { comm: CommId, root: usize, bytes: usize },
    Gatherv { comm: CommId, root: usize, counts: Vec<usize> },
    Scatterv { comm: CommId, root: usize, counts: Vec<usize> },
    Scan { comm: CommId, bytes: usize },
    ReduceScatterBlock { comm: CommId, bytes_per_rank: usize },
    /// `result` is `None` in the `pre` hook and the created communicator
    /// (or `None` for `MPI_UNDEFINED` colors) in the `post` hook.
    CommSplit { parent: CommId, color: i64, key: i64, result: Option<CommId> },
    CommDup { parent: CommId, result: Option<CommId> },
    CommFree { comm: CommId },
}

impl MpiCall {
    /// MPI function name, as it would appear in a textual trace.
    pub fn func_name(&self) -> &'static str {
        match self {
            MpiCall::Send { .. } => "MPI_Send",
            MpiCall::Recv { .. } => "MPI_Recv",
            MpiCall::Isend { .. } => "MPI_Isend",
            MpiCall::Irecv { .. } => "MPI_Irecv",
            MpiCall::Wait { .. } => "MPI_Wait",
            MpiCall::Waitall { .. } => "MPI_Waitall",
            MpiCall::Sendrecv { .. } => "MPI_Sendrecv",
            MpiCall::Barrier { .. } => "MPI_Barrier",
            MpiCall::Bcast { .. } => "MPI_Bcast",
            MpiCall::Reduce { .. } => "MPI_Reduce",
            MpiCall::Allreduce { .. } => "MPI_Allreduce",
            MpiCall::Allgather { .. } => "MPI_Allgather",
            MpiCall::Alltoall { .. } => "MPI_Alltoall",
            MpiCall::Alltoallv { .. } => "MPI_Alltoallv",
            MpiCall::Gather { .. } => "MPI_Gather",
            MpiCall::Scatter { .. } => "MPI_Scatter",
            MpiCall::Gatherv { .. } => "MPI_Gatherv",
            MpiCall::Scatterv { .. } => "MPI_Scatterv",
            MpiCall::Scan { .. } => "MPI_Scan",
            MpiCall::ReduceScatterBlock { .. } => "MPI_Reduce_scatter_block",
            MpiCall::CommSplit { .. } => "MPI_Comm_split",
            MpiCall::CommDup { .. } => "MPI_Comm_dup",
            MpiCall::CommFree { .. } => "MPI_Comm_free",
        }
    }

    /// Dense per-variant index in `0..NUM_CALL_CLASSES`, stable across
    /// releases (new variants append). Metric tables, the virtual-time
    /// profiler, and the critical-path extractor all key on it.
    pub fn class_index(&self) -> usize {
        match self {
            MpiCall::Send { .. } => 0,
            MpiCall::Recv { .. } => 1,
            MpiCall::Isend { .. } => 2,
            MpiCall::Irecv { .. } => 3,
            MpiCall::Wait { .. } => 4,
            MpiCall::Waitall { .. } => 5,
            MpiCall::Sendrecv { .. } => 6,
            MpiCall::Barrier { .. } => 7,
            MpiCall::Bcast { .. } => 8,
            MpiCall::Reduce { .. } => 9,
            MpiCall::Allreduce { .. } => 10,
            MpiCall::Allgather { .. } => 11,
            MpiCall::Alltoall { .. } => 12,
            MpiCall::Alltoallv { .. } => 13,
            MpiCall::Gather { .. } => 14,
            MpiCall::Scatter { .. } => 15,
            MpiCall::Gatherv { .. } => 16,
            MpiCall::Scatterv { .. } => 17,
            MpiCall::Scan { .. } => 18,
            MpiCall::ReduceScatterBlock { .. } => 19,
            MpiCall::CommSplit { .. } => 20,
            MpiCall::CommDup { .. } => 21,
            MpiCall::CommFree { .. } => 22,
        }
    }

    /// MPI function name for a class index produced by
    /// [`MpiCall::class_index`].
    pub fn class_name(idx: usize) -> &'static str {
        const NAMES: [&str; NUM_CALL_CLASSES] = [
            "MPI_Send",
            "MPI_Recv",
            "MPI_Isend",
            "MPI_Irecv",
            "MPI_Wait",
            "MPI_Waitall",
            "MPI_Sendrecv",
            "MPI_Barrier",
            "MPI_Bcast",
            "MPI_Reduce",
            "MPI_Allreduce",
            "MPI_Allgather",
            "MPI_Alltoall",
            "MPI_Alltoallv",
            "MPI_Gather",
            "MPI_Scatter",
            "MPI_Gatherv",
            "MPI_Scatterv",
            "MPI_Scan",
            "MPI_Reduce_scatter_block",
            "MPI_Comm_split",
            "MPI_Comm_dup",
            "MPI_Comm_free",
        ];
        NAMES.get(idx).copied().unwrap_or("MPI_?")
    }

    /// Application payload bytes moved by this single call (sends count
    /// outgoing volume; collectives count this rank's contribution).
    pub fn payload_bytes(&self) -> usize {
        match self {
            MpiCall::Send { bytes, .. }
            | MpiCall::Isend { bytes, .. }
            | MpiCall::Recv { bytes, .. }
            | MpiCall::Irecv { bytes, .. }
            | MpiCall::Bcast { bytes, .. }
            | MpiCall::Reduce { bytes, .. }
            | MpiCall::Allreduce { bytes, .. }
            | MpiCall::Allgather { bytes, .. }
            | MpiCall::Gather { bytes, .. }
            | MpiCall::Scatter { bytes, .. } => *bytes,
            MpiCall::Sendrecv { send_bytes, recv_bytes, .. } => send_bytes + recv_bytes,
            MpiCall::Alltoall { bytes_per_peer, .. } => *bytes_per_peer,
            MpiCall::Alltoallv { send_counts, .. } => send_counts.iter().sum(),
            MpiCall::Gatherv { counts, .. } | MpiCall::Scatterv { counts, .. } => {
                counts.iter().sum()
            }
            MpiCall::Scan { bytes, .. } => *bytes,
            MpiCall::ReduceScatterBlock { bytes_per_rank, .. } => *bytes_per_rank,
            _ => 0,
        }
    }
}

/// Execution context handed to hooks alongside the call record.
#[derive(Debug, Clone, Copy)]
pub struct HookCtx {
    /// Global rank of the calling process.
    pub rank: usize,
    /// Virtual clock at the hook invocation, nanoseconds.
    pub clock_ns: f64,
    /// Cumulative *computation* counters of this rank (advanced only by
    /// `Rank::compute`, never by MPI-internal work — this is what a PAPI
    /// read between MPI calls observes).
    pub counters: CounterVec,
    /// This process's rank within the call's communicator (what a tracer
    /// gets from `MPI_Comm_rank` on the handle). Equals the global rank for
    /// calls without a communicator argument (`MPI_Wait`, ...).
    pub comm_rank: usize,
    /// Size of the call's communicator; world size for comm-less calls.
    pub comm_size: usize,
    /// Virtual clock at the matching `pre` hook of this call (equals
    /// `clock_ns` in the `pre` hook itself). Lets a `post`-only profiler
    /// reconstruct the call interval without per-call state of its own.
    pub call_start_ns: f64,
    /// Virtual nanoseconds this call has spent *blocked* so far: clock
    /// jumps to completion times produced by peers (message arrival,
    /// rendezvous ack, collective quorum, split rendezvous). Always `0.0`
    /// in `pre`; in `post` it is the call's exact blocked-wait total, so
    /// `(clock_ns - call_start_ns) - wait_ns` is local transfer/overhead.
    pub wait_ns: f64,
    /// Zero-based index of this call in the rank's own hooked-call
    /// sequence (same value in `pre` and `post`). Gives recorders a
    /// per-rank program-order key without maintaining per-rank state of
    /// their own — the rank counts its calls anyway.
    pub call_seq: u32,
}

/// A PMPI interposer.
///
/// Implementations are shared across all rank threads; use per-rank interior
/// mutability (e.g. a `Vec<Mutex<_>>` indexed by rank) for trace state.
pub trait PmpiHook: Send + Sync {
    /// Invoked before the MPI operation starts.
    fn pre(&self, ctx: &HookCtx, call: &MpiCall);
    /// Invoked after the MPI operation completes (clock reflects completion).
    fn post(&self, ctx: &HookCtx, call: &MpiCall);
    /// Virtual nanoseconds of tracer work to charge per hooked call (split
    /// across pre+post). Models the instrumentation overhead of Table 3.
    fn overhead_ns(&self) -> f64 {
        0.0
    }
}

/// A hook that does nothing (the un-instrumented run).
pub struct NullHook;

impl PmpiHook for NullHook {
    fn pre(&self, _: &HookCtx, _: &MpiCall) {}
    fn post(&self, _: &HookCtx, _: &MpiCall) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_names() {
        let c = MpiCall::Send { comm: CommId::WORLD, dest: 1, tag: 0, bytes: 8 };
        assert_eq!(c.func_name(), "MPI_Send");
        let b = MpiCall::Barrier { comm: CommId::WORLD };
        assert_eq!(b.func_name(), "MPI_Barrier");
    }

    #[test]
    fn payload_accounting() {
        assert_eq!(
            MpiCall::Alltoallv {
                comm: CommId::WORLD,
                send_counts: vec![1, 2, 3],
                recv_counts: vec![3, 2, 1],
            }
            .payload_bytes(),
            6
        );
        assert_eq!(
            MpiCall::Sendrecv {
                comm: CommId::WORLD,
                dest: 0,
                send_tag: 0,
                send_bytes: 10,
                src: 0,
                recv_tag: 0,
                recv_bytes: 20,
            }
            .payload_bytes(),
            30
        );
        assert_eq!(MpiCall::Wait { req: 0 }.payload_bytes(), 0);
    }
}
