//! Communicators.
//!
//! A communicator is a named, ordered group of global ranks. Its identity
//! (`CommId`) must agree across all members without central coordination, so
//! derived communicators get *deterministic* ids hashed from the parent id,
//! the per-rank derivation sequence number, and (for splits) the color. Since
//! MPI requires every member of a communicator to perform communicator
//! operations in the same order, all members compute the same id — the same
//! reasoning the paper uses when it replaces runtime-random `MPI_Comm`
//! values with pool-allocated numbers.

use std::sync::Arc;

use siesta_perfmodel::noise;

/// Globally unique identity of one communicator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

impl CommId {
    /// `MPI_COMM_WORLD`.
    pub const WORLD: CommId = CommId(1);

    /// Identity of a communicator derived from `self`.
    pub fn derive(self, seq: u32, color: i64) -> CommId {
        CommId(noise::combine(&[self.0, seq as u64, color as u64, 0x5e57a]))
    }
}

/// The ordered member list of a communicator.
///
/// The world group of a P-rank job is always `0..P`; storing it as a range
/// keeps per-rank communicator state O(1), which is what lets a
/// million-rank world fit in memory (a million explicit `Vec<usize>` world
/// groups would need terabytes). Derived communicators store their members
/// explicitly behind an `Arc` so clones stay cheap.
#[derive(Debug, Clone, Eq)]
pub enum CommGroup {
    /// Global ranks `0..n` in order (the world group).
    Range(usize),
    /// Arbitrary ordered member list (split/derived communicators).
    Explicit(Arc<Vec<usize>>),
}

impl CommGroup {
    pub fn len(&self) -> usize {
        match self {
            CommGroup::Range(n) => *n,
            CommGroup::Explicit(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global rank of local rank `i`.
    pub fn get(&self, i: usize) -> usize {
        match self {
            CommGroup::Range(n) => {
                assert!(i < *n, "local rank {i} out of range for world of {n}");
                i
            }
            CommGroup::Explicit(v) => v[i],
        }
    }

    /// Local rank of a global rank, if it is a member.
    pub fn position(&self, global: usize) -> Option<usize> {
        match self {
            CommGroup::Range(n) => (global < *n).then_some(global),
            CommGroup::Explicit(v) => v.iter().position(|&g| g == global),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materialize the member list (diagnostics and tests only).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

// Semantic equality: Range(n) equals an Explicit list holding 0..n.
impl PartialEq for CommGroup {
    fn eq(&self, other: &CommGroup) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// An ordered process group with a shared [`CommId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    pub id: CommId,
    pub group: CommGroup,
    /// This process's rank *within* the communicator.
    pub local_rank: usize,
}

impl Communicator {
    /// The world communicator for a job of `nranks` processes, viewed from
    /// global rank `me`.
    pub fn world(nranks: usize, me: usize) -> Communicator {
        Communicator {
            id: CommId::WORLD,
            group: CommGroup::Range(nranks),
            local_rank: me,
        }
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Global rank of communicator-local rank `local`.
    pub fn global_of(&self, local: usize) -> usize {
        self.group.get(local)
    }

    /// Communicator-local rank of a global rank, if it is a member.
    pub fn local_of(&self, global: usize) -> Option<usize> {
        self.group.position(global)
    }

    /// Build the split communicator containing this process, given every
    /// member's `(color, key)` contribution, indexed by parent-local rank.
    /// Returns `None` when this process passed a negative color
    /// (`MPI_UNDEFINED`).
    pub fn split_from(
        &self,
        contributions: &[(i64, i64)],
        seq: u32,
        my_global: usize,
    ) -> Option<Communicator> {
        assert_eq!(contributions.len(), self.size());
        let my_color = contributions[self.local_rank].0;
        if my_color < 0 {
            return None;
        }
        // Members of my color, ordered by (key, parent rank) per MPI semantics.
        let mut members: Vec<(i64, usize, usize)> = contributions
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *c == my_color)
            .map(|(local, (_, k))| (*k, local, self.group.get(local)))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|&(_, _, g)| g).collect();
        let local_rank = group
            .iter()
            .position(|&g| g == my_global)
            .expect("split member must contain the caller");
        Some(Communicator {
            id: self.id.derive(seq, my_color),
            group: CommGroup::Explicit(Arc::new(group)),
            local_rank,
        })
    }

    /// Build the duplicate of this communicator (same group, fresh id).
    pub fn dup_from(&self, seq: u32) -> Communicator {
        Communicator {
            id: self.id.derive(seq, -1),
            group: self.group.clone(),
            local_rank: self.local_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_layout() {
        let c = Communicator::world(8, 3);
        assert_eq!(c.size(), 8);
        assert_eq!(c.rank(), 3);
        assert_eq!(c.global_of(5), 5);
        assert_eq!(c.local_of(7), Some(7));
        assert_eq!(c.local_of(9), None);
        assert_eq!(c.id, CommId::WORLD);
    }

    #[test]
    fn world_group_is_constant_size() {
        // The world group must not materialize its member list: million-rank
        // worlds depend on it.
        let c = Communicator::world(1 << 20, 12345);
        assert!(matches!(c.group, CommGroup::Range(n) if n == 1 << 20));
        assert_eq!(c.global_of(999_999), 999_999);
        assert_eq!(c.local_of(1 << 20), None);
    }

    #[test]
    fn range_and_explicit_groups_compare_semantically() {
        let range = CommGroup::Range(3);
        let explicit = CommGroup::Explicit(Arc::new(vec![0, 1, 2]));
        assert_eq!(range, explicit);
        assert_ne!(range, CommGroup::Explicit(Arc::new(vec![0, 2, 1])));
        assert_ne!(range, CommGroup::Range(4));
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = CommId::WORLD.derive(0, 0);
        let b = CommId::WORLD.derive(0, 0);
        assert_eq!(a, b);
        assert_ne!(a, CommId::WORLD.derive(0, 1));
        assert_ne!(a, CommId::WORLD.derive(1, 0));
        assert_ne!(a, CommId::WORLD);
    }

    #[test]
    fn split_groups_by_color_sorted_by_key() {
        // 6 ranks; even ranks color 0, odd ranks color 1; key reverses order.
        let parent = Communicator::world(6, 4);
        let contributions: Vec<(i64, i64)> =
            (0..6).map(|r| ((r % 2) as i64, -(r as i64))).collect();
        let c = parent.split_from(&contributions, 0, 4).unwrap();
        // Color 0 members are globals {0,2,4}; key = -rank reverses: [4,2,0].
        assert_eq!(c.group.to_vec(), vec![4, 2, 0]);
        assert_eq!(c.rank(), 0);
        // Same call from rank 2's perspective yields the same id and group.
        let parent2 = Communicator::world(6, 2);
        let c2 = parent2.split_from(&contributions, 0, 2).unwrap();
        assert_eq!(c2.id, c.id);
        assert_eq!(c2.group, c.group);
        assert_eq!(c2.rank(), 1);
    }

    #[test]
    fn split_with_negative_color_returns_none() {
        let parent = Communicator::world(4, 1);
        let contributions = vec![(0, 0), (-1, 0), (0, 0), (0, 0)];
        assert!(parent.split_from(&contributions, 0, 1).is_none());
    }

    #[test]
    fn split_ids_differ_across_colors_and_seqs() {
        let parent = Communicator::world(4, 0);
        let contributions = vec![(0, 0), (1, 0), (0, 0), (1, 0)];
        let c0 = parent.split_from(&contributions, 0, 0).unwrap();
        let parent1 = Communicator::world(4, 1);
        let c1 = parent1.split_from(&contributions, 0, 1).unwrap();
        assert_ne!(c0.id, c1.id);
        let c0_again = parent.split_from(&contributions, 1, 0).unwrap();
        assert_ne!(c0.id, c0_again.id);
    }

    #[test]
    fn dup_keeps_group_changes_id() {
        let parent = Communicator::world(5, 2);
        let d = parent.dup_from(3);
        assert_eq!(d.group, parent.group);
        assert_eq!(d.rank(), 2);
        assert_ne!(d.id, parent.id);
    }
}
