//! A deterministic **virtual-time MPI runtime**.
//!
//! The Siesta paper traces and replays real MPI programs on real clusters.
//! This crate is the reproduction's substitute for both the MPI library and
//! the cluster: MPI ranks run as *resumable state machines* on a
//! discrete-event scheduler, every MPI operation advances a per-rank
//! *virtual clock* through the LogGP-style cost models of
//! [`siesta_perfmodel`], and message matching follows real MPI semantics
//! (communicators, tags, non-overtaking order, eager/rendezvous protocols,
//! blocking and non-blocking operations, collective algorithms built from
//! point-to-point rounds).
//!
//! Why this preserves what the paper measures:
//!
//! * **Traces are structurally real.** A program written against [`Rank`]
//!   produces exactly the sequence of MPI calls, parameters, and matching
//!   behaviour a real PMPI interposer would observe — including request and
//!   communicator handles whose runtime values are arbitrary, which is what
//!   Siesta's free-number pools exist to normalize.
//! * **Times are comparable.** The virtual clock is a pure function of the
//!   program and the [`Machine`](siesta_perfmodel::Machine) (platform × MPI
//!   flavor); replaying a synthesized proxy under a *different* machine moves
//!   its execution time the same way the original moves — the property
//!   Figures 7–9 evaluate.
//! * **Everything is deterministic.** All completion times are functions of
//!   virtual timestamps, never of real scheduling order, so experiments
//!   reproduce bit-for-bit at any worker count (provided programs use
//!   fully-specified receive sources; `ANY_SOURCE`-style wildcards are
//!   intentionally unsupported).
//! * **Scale is decoupled from the host.** A rank costs one small heap
//!   future plus a mailbox, not an OS thread, so worlds of 10⁴–10⁶ virtual
//!   ranks simulate on a laptop; see `World::run`.
//!
//! # Interposition (the PMPI substitute)
//!
//! Install a [`PmpiHook`] on the [`World`]; the runtime calls it before and
//! after every *application-level* MPI call with the full call record
//! ([`MpiCall`]) and a context carrying the rank's virtual clock and
//! cumulative computation counters. Collective-internal plumbing messages do
//! not hit the hook, exactly as PMPI sees `MPI_Bcast` once rather than its
//! internal sends.
//!
//! # Example
//!
//! Rank bodies take the [`Rank`] by value, `.await` blocking MPI calls (each
//! is a continuation point for the scheduler), and return the rank:
//!
//! ```
//! use siesta_mpisim::World;
//! use siesta_perfmodel::{Machine, KernelDesc};
//!
//! let world = World::new(Machine::default_eval(), 4);
//! let stats = world.run(|mut rank| Box::pin(async move {
//!     // Each rank computes, then everyone exchanges a ring message.
//!     rank.compute(&KernelDesc::stencil(1000.0, 4.0, 65536.0));
//!     let right = (rank.rank() + 1) % rank.nranks();
//!     let left = (rank.rank() + rank.nranks() - 1) % rank.nranks();
//!     let world_comm = rank.comm_world();
//!     if rank.rank() % 2 == 0 {
//!         rank.send(&world_comm, right, 99, 1024).await;
//!         rank.recv(&world_comm, left, 99, 1024).await;
//!     } else {
//!         rank.recv(&world_comm, left, 99, 1024).await;
//!         rank.send(&world_comm, right, 99, 1024).await;
//!     }
//!     rank.barrier(&world_comm).await;
//!     rank
//! }));
//! assert_eq!(stats.per_rank.len(), 4);
//! assert!(stats.elapsed_ns() > 0.0);
//! ```

pub mod collectives;
pub mod comm;
pub mod comm_matrix;
pub mod critical;
pub mod engine;
pub mod exec;
pub mod hook;
pub mod message;
pub mod obs;
pub mod profiler;
pub mod rank;
pub mod request;
pub mod world;

pub use comm::{CommGroup, CommId, Communicator};
pub use comm_matrix::{
    comm_matrix_enabled, set_comm_matrix_enabled, take_comm_matrix, CommMatrixSnapshot,
};
pub use critical::{critical_path, CriticalPathReport, PathStep, RankBreakdown};
pub use hook::{HookCtx, MpiCall, PmpiHook};
pub use message::{RecvStatus, Tag, ANY_TAG};
pub use obs::{FanoutHook, ObsHook};
pub use profiler::{
    set_sim_profile_enabled, sim_profile_enabled, take_sim_profile, SimEvent, SimProfileSnapshot,
    SimProfiler,
};
pub use rank::Rank;
pub use request::Request;
pub use world::{Deadlock, RankFut, RankStats, RunStats, World};
