//! Critical-path extraction over a recorded virtual-time profile.
//!
//! Given the per-rank timelines of a [`SimProfileSnapshot`], this module
//! reconstructs the happens-before edges the simulator actually enforced
//! — send→recv matches, collective joins, wait completions — and walks
//! them backward from the last event to finish, yielding the longest
//! chain of virtual-time dependencies: the *critical path*. The report
//! answers the profiler's headline question ("which calls does the job's
//! completion time actually hinge on?") plus a per-rank blocked/busy
//! breakdown.
//!
//! # Edge reconstruction
//!
//! The profile records *call intervals*, not engine internals, so edges
//! are rebuilt from MPI semantics the same way an offline trace analyzer
//! would:
//!
//! * **Point-to-point** — the engine matches in FIFO posting order per
//!   `(comm, src, dst, tag)` stream (no `ANY_SOURCE`, non-overtaking
//!   channels), so the k-th send on a stream pairs with the k-th posted
//!   receive. A blocking `Recv` (and the receive half of `Sendrecv`)
//!   both posts and completes at its own event; an `Irecv` posts at its
//!   event and completes at the `Wait`/`Waitall` that retires its
//!   request id.
//! * **Collectives** — members of the i-th collective on a communicator
//!   join on the last-arriving member (the one with the greatest entry
//!   time `t0`).
//! * **Unmatchable events are counted, never guessed.** Non-world
//!   point-to-point (no global peer in the PMPI view), wildcard-tag
//!   receives, `Waitall` request-list overflow, and ring-dropped
//!   history all fall back to the rank's own program order and bump
//!   `unmatched`.
//!
//! The walk chooses a remote predecessor only when the event actually
//! *blocked* (`wait_ns > 0`); a call satisfied locally depends only on
//! its own rank's previous event. All tie-breaks are by `(rank, idx)`,
//! and every input is a pure function of the simulated program, so the
//! report is byte-identical at any `--threads` width.

use siesta_hash::{fx_map, FxHashMap, FxHashSet};
use std::fmt::Write as _;

use crate::profiler::{SimEvent, SimProfileSnapshot, MAX_INLINE_REQS, NO_PEER, REQS_OVERFLOW};

/// Class-index range of calls that join a communicator-wide instance
/// (`MPI_Barrier` .. `MPI_Comm_dup`; `MPI_Comm_free` is local).
fn is_collective(class: u16) -> bool {
    (7..=21).contains(&class)
}

/// A node on the critical path: `idx` is the event's position in rank
/// `rank`'s retained timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    pub rank: usize,
    pub idx: usize,
    pub class: u16,
    pub t0: f64,
    pub t1: f64,
    pub wait_ns: f64,
}

/// Per-rank virtual-time budget split derived from the profile.
#[derive(Debug, Clone, Copy)]
pub struct RankBreakdown {
    pub rank: usize,
    /// Virtual time inside MPI calls.
    pub mpi_ns: f64,
    /// Blocked-wait portion of `mpi_ns`.
    pub wait_ns: f64,
    /// Everything outside MPI up to the rank's last recorded completion
    /// (compute and local gaps).
    pub other_ns: f64,
    /// Completion time of the rank's last recorded event.
    pub last_t1: f64,
}

/// Aggregate of one call class along the critical path.
#[derive(Debug, Clone, Copy)]
pub struct PathClassTotal {
    pub class: u16,
    pub count: u64,
    pub total_ns: f64,
    pub wait_ns: f64,
}

/// The extracted critical path and its supporting breakdowns.
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// Virtual time spanned by the path: last step's `t1` − first step's
    /// `t0`. Bounded by the job's elapsed virtual time.
    pub span_ns: f64,
    /// Steps in chronological (walk-reversed) order.
    pub path: Vec<PathStep>,
    /// Blocked wait summed along the path.
    pub wait_ns: f64,
    /// Call time (`t1 − t0`) summed along the path.
    pub mpi_ns: f64,
    /// Distinct ranks the path visits.
    pub ranks_visited: usize,
    /// Per-class totals along the path, heaviest first.
    pub class_totals: Vec<PathClassTotal>,
    /// Blocked events whose remote producer could not be reconstructed
    /// (non-world peers, wildcard tags, overflowed request lists,
    /// ring-dropped history); they fell back to program order.
    pub unmatched: u64,
    /// The backward walk revisited a node (possible only through
    /// fallback edges on partial profiles) and stopped early.
    pub truncated: bool,
    /// Per-rank blocked/busy split for the whole run.
    pub per_rank: Vec<RankBreakdown>,
}

/// A posted receive on a `(comm, src, dst, tag)` stream.
struct RecvPost {
    /// Node at which the matching wait completes; `None` until the
    /// request is retired (never, for an abandoned `Irecv`).
    completion: Option<(usize, usize)>,
}

enum Pending {
    /// Index into `recv_posts` to complete when the request retires.
    Irecv(usize),
    /// Sender-side request: retiring it needs no edge (the rendezvous
    /// ack's reverse dependency is approximated by program order).
    Isend,
}

/// Extract the critical path from a recorded profile. Works on partial
/// (ring-capped) profiles — missing history shows up as `unmatched` and
/// possibly `truncated`, never as a wrong edge.
pub fn critical_path(snap: &SimProfileSnapshot) -> CriticalPathReport {
    let tracks = &snap.tracks;

    // ---- Pass 1: per-rank scans reconstruct matching state. ----------
    // A `(rank, idx)` timeline node.
    type Node = (usize, usize);
    // A collective member: `(t0, rank, idx)`.
    type Member = (f64, usize, usize);
    // A `(comm, src, dst, tag)` point-to-point stream key.
    type StreamKey = (u64, u32, u32, i32);
    // Collective instances: (comm, per-comm ordinal) → members.
    let mut coll: FxHashMap<(u64, u64), Vec<Member>> = fx_map();
    // P2P streams: FIFO send nodes / recv posts per stream.
    let mut send_q: FxHashMap<StreamKey, Vec<Node>> = fx_map();
    let mut recv_q: FxHashMap<StreamKey, Vec<usize>> = fx_map();
    let mut recv_posts: Vec<RecvPost> = Vec::new();
    let mut unmatched = 0u64;

    for (rank, track) in tracks.iter().enumerate() {
        let mut coll_ord: FxHashMap<u64, u64> = fx_map();
        let mut pending: FxHashMap<u32, Pending> = fx_map();
        // Ring-dropped history means request ids and stream ordinals from
        // before the window are unknown; count the loss once per rank.
        unmatched += track.dropped.min(1);
        for (idx, ev) in track.events.iter().enumerate() {
            let class = ev.class;
            if is_collective(class) {
                let ord = coll_ord.entry(ev.comm).or_insert(0);
                coll.entry((ev.comm, *ord)).or_default().push((ev.t0, rank, idx));
                *ord += 1;
                continue;
            }
            match class {
                // Send / Isend: enqueue the event as the producing node.
                0 | 2 => {
                    if ev.peer != NO_PEER {
                        send_q
                            .entry((ev.comm, rank as u32, ev.peer, ev.tag))
                            .or_default()
                            .push((rank, idx));
                    } else {
                        unmatched += 1;
                    }
                    if class == 2 {
                        pending.insert(ev.reqs[0], Pending::Isend);
                    }
                }
                // Recv: posts and completes here.
                1 => {
                    if ev.peer != NO_PEER && ev.tag != crate::message::ANY_TAG {
                        let post = recv_posts.len();
                        recv_posts.push(RecvPost { completion: Some((rank, idx)) });
                        recv_q.entry((ev.comm, ev.peer, rank as u32, ev.tag)).or_default().push(post);
                    } else {
                        unmatched += 1;
                    }
                }
                // Irecv: posts here, completes at the retiring wait.
                3 => {
                    if ev.peer != NO_PEER && ev.tag != crate::message::ANY_TAG {
                        let post = recv_posts.len();
                        recv_posts.push(RecvPost { completion: None });
                        recv_q.entry((ev.comm, ev.peer, rank as u32, ev.tag)).or_default().push(post);
                        pending.insert(ev.reqs[0], Pending::Irecv(post));
                    } else {
                        unmatched += 1;
                        pending.insert(ev.reqs[0], Pending::Isend); // peer unknown: no edge
                    }
                }
                // Wait / Waitall: retire requests.
                4 | 5 => {
                    if ev.nreqs == REQS_OVERFLOW {
                        unmatched += 1;
                    } else {
                        for &req in &ev.reqs[..(ev.nreqs as usize).min(MAX_INLINE_REQS)] {
                            match pending.remove(&req) {
                                Some(Pending::Irecv(post)) => {
                                    recv_posts[post].completion = Some((rank, idx));
                                }
                                Some(Pending::Isend) => {}
                                None => unmatched += 1,
                            }
                        }
                    }
                }
                // Sendrecv: send half + immediately-completing recv half.
                6 => {
                    if ev.peer != NO_PEER {
                        send_q
                            .entry((ev.comm, rank as u32, ev.peer, ev.tag))
                            .or_default()
                            .push((rank, idx));
                    } else {
                        unmatched += 1;
                    }
                    if ev.peer2 != NO_PEER && ev.tag2 != crate::message::ANY_TAG {
                        let post = recv_posts.len();
                        recv_posts.push(RecvPost { completion: Some((rank, idx)) });
                        recv_q.entry((ev.comm, ev.peer2, rank as u32, ev.tag2)).or_default().push(post);
                    } else {
                        unmatched += 1;
                    }
                }
                // CommFree and anything else: purely local.
                _ => {}
            }
        }
    }

    // ---- Pass 2: zip FIFO streams into completion → producer edges. --
    // remote_pred[v] = the send node whose message v's wait consumed; a
    // Waitall retiring several receives keeps the latest-finishing send.
    let mut remote_pred: FxHashMap<(usize, usize), (usize, usize)> = fx_map();
    let event = |node: (usize, usize)| -> &SimEvent { &tracks[node.0].events[node.1] };
    for (key, sends) in &send_q {
        let posts = recv_q.get(key).map(Vec::as_slice).unwrap_or(&[]);
        if sends.len() != posts.len() {
            unmatched += sends.len().abs_diff(posts.len()) as u64;
        }
        for (&snode, &post) in sends.iter().zip(posts) {
            let Some(cnode) = recv_posts[post].completion else {
                unmatched += 1;
                continue;
            };
            let better = match remote_pred.get(&cnode) {
                None => true,
                Some(&old) => {
                    let (a, b) = (event(snode), event(old));
                    a.t1 > b.t1 || (a.t1 == b.t1 && snode < old)
                }
            };
            if better {
                remote_pred.insert(cnode, snode);
            }
        }
    }

    // ---- Pass 3: backward walk from the last event to finish. --------
    //
    // One subtlety keeps the walk acyclic on symmetric exchanges: after
    // following a remote edge to the producing call, only the producer's
    // *entry* lies on the chain (the message left once the sender reached
    // the call), so the next hop is its program predecessor — never its
    // own wait edge. Without this, two ranks blocked on each other's
    // `MPI_Sendrecv` are each other's remote predecessor and the walk
    // would 2-cycle immediately.
    let mut path: Vec<PathStep> = Vec::new();
    let mut wait_on_path = 0.0f64;
    let mut truncated = false;
    let mut via_remote = false;
    let mut cur: Option<(usize, usize)> = {
        let mut best: Option<((usize, usize), f64)> = None;
        for (rank, track) in tracks.iter().enumerate() {
            if let Some(ev) = track.events.last() {
                let node = (rank, track.events.len() - 1);
                if best.is_none_or(|(_, t)| ev.t1 > t) {
                    best = Some((node, ev.t1));
                }
            }
        }
        best.map(|(n, _)| n)
    };
    let mut visited: FxHashSet<(usize, usize)> = FxHashSet::default();
    while let Some(node) = cur {
        if !visited.insert(node) {
            truncated = true;
            break;
        }
        let ev = event(node);
        path.push(PathStep {
            rank: node.0,
            idx: node.1,
            class: ev.class,
            t0: ev.t0,
            t1: ev.t1,
            wait_ns: ev.wait_ns as f64,
        });
        let program_pred =
            |node: (usize, usize)| if node.1 > 0 { Some((node.0, node.1 - 1)) } else { None };
        if via_remote {
            // Entered as a producer: only its entry time is on the chain.
            via_remote = false;
            cur = program_pred(node);
            continue;
        }
        wait_on_path += ev.wait_ns as f64;
        cur = if ev.wait_ns > 0.0 {
            if let Some(&producer) = remote_pred.get(&node) {
                via_remote = true;
                Some(producer)
            } else if is_collective(ev.class) {
                // Hop to the last-arriving member of the same instance.
                let ord = tracks[node.0].events[..node.1]
                    .iter()
                    .filter(|e| is_collective(e.class) && e.comm == ev.comm)
                    .count() as u64;
                let last = coll.get(&(ev.comm, ord)).and_then(|members| {
                    members
                        .iter()
                        .copied()
                        .reduce(|a, b| {
                            // Max t0; ties lowest (rank, idx).
                            if b.0 > a.0 || (b.0 == a.0 && (b.1, b.2) < (a.1, a.2)) {
                                b
                            } else {
                                a
                            }
                        })
                        .map(|(_, r, i)| (r, i))
                });
                match last {
                    Some(m) if m != node => {
                        via_remote = true;
                        Some(m)
                    }
                    _ => program_pred(node),
                }
            } else {
                // Blocked with no reconstructable producer (rendezvous
                // ack, unmatched stream): fall back to program order.
                program_pred(node)
            }
        } else {
            program_pred(node)
        };
    }
    path.reverse();

    // ---- Aggregates. -------------------------------------------------
    let span_ns = match (path.first(), path.last()) {
        (Some(a), Some(b)) => b.t1 - a.t0,
        _ => 0.0,
    };
    let wait_ns = wait_on_path;
    let mpi_ns: f64 = path.iter().map(|s| s.t1 - s.t0).sum();
    let ranks_visited = path.iter().map(|s| s.rank).collect::<FxHashSet<_>>().len();

    let mut by_class: FxHashMap<u16, PathClassTotal> = fx_map();
    for s in &path {
        let e = by_class.entry(s.class).or_insert(PathClassTotal {
            class: s.class,
            count: 0,
            total_ns: 0.0,
            wait_ns: 0.0,
        });
        e.count += 1;
        e.total_ns += s.t1 - s.t0;
        e.wait_ns += s.wait_ns;
    }
    let mut class_totals: Vec<PathClassTotal> = by_class.into_values().collect();
    class_totals.sort_by(|a, b| {
        b.total_ns.partial_cmp(&a.total_ns).unwrap().then(a.class.cmp(&b.class))
    });

    let per_rank = tracks
        .iter()
        .enumerate()
        .map(|(rank, track)| {
            let mpi: f64 = track.events.iter().map(|e| e.t1 - e.t0).sum();
            let wait: f64 = track.events.iter().map(|e| e.wait_ns as f64).sum();
            let last_t1 = track.events.last().map_or(0.0, |e| e.t1);
            RankBreakdown { rank, mpi_ns: mpi, wait_ns: wait, other_ns: last_t1 - mpi, last_t1 }
        })
        .collect();

    CriticalPathReport {
        span_ns,
        path,
        wait_ns,
        mpi_ns,
        ranks_visited,
        class_totals,
        unmatched,
        truncated,
        per_rank,
    }
}

impl CriticalPathReport {
    /// Render the report as a deterministic text table (part of the
    /// profiler's canonical artifacts — byte-identical at any width).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.3} ms over {} calls on {} ranks ({:.3} ms blocked, {:.3} ms in-call)",
            self.span_ns / 1e6,
            self.path.len(),
            self.ranks_visited,
            self.wait_ns / 1e6,
            self.mpi_ns / 1e6,
        );
        if self.truncated {
            out.push_str("  (walk truncated: revisited a node on a partial profile)\n");
        }
        if self.unmatched > 0 {
            let _ = writeln!(
                out,
                "  ({} blocked events lacked a reconstructable producer; program-order fallback)",
                self.unmatched
            );
        }
        out.push_str("dominant call classes on the path:\n");
        for c in self.class_totals.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<24} {:>7} calls {:>11.3} ms total {:>11.3} ms blocked",
                crate::hook::MpiCall::class_name(c.class as usize),
                c.count,
                c.total_ns / 1e6,
                c.wait_ns / 1e6,
            );
        }
        // Whole-run blocked/busy split: aggregate plus the most-blocked ranks.
        let n = self.per_rank.len().max(1) as f64;
        let tot_wait: f64 = self.per_rank.iter().map(|r| r.wait_ns).sum();
        let tot_mpi: f64 = self.per_rank.iter().map(|r| r.mpi_ns).sum();
        let _ = writeln!(
            out,
            "per-rank budget: mean {:.3} ms MPI ({:.3} ms blocked) per rank across {} ranks",
            tot_mpi / n / 1e6,
            tot_wait / n / 1e6,
            self.per_rank.len(),
        );
        let mut worst: Vec<&RankBreakdown> = self.per_rank.iter().collect();
        worst.sort_by(|a, b| b.wait_ns.partial_cmp(&a.wait_ns).unwrap().then(a.rank.cmp(&b.rank)));
        out.push_str("most-blocked ranks:\n");
        for r in worst.iter().take(5) {
            let _ = writeln!(
                out,
                "  rank {:<8} {:>11.3} ms blocked {:>11.3} ms mpi {:>11.3} ms other",
                r.rank,
                r.wait_ns / 1e6,
                r.mpi_ns / 1e6,
                r.other_ns / 1e6,
            );
        }
        out
    }
}
