//! Executors that drive rank futures.
//!
//! The default executor is a discrete-event scheduler: every rank is a
//! resumable state machine (a boxed future), and the scheduler polls
//! runnable ranks in deterministic batches on the `siesta-par` pool. A
//! rank that blocks (unmatched recv, rendezvous ack, collective quorum,
//! split rendezvous) registers a [`std::task::Waker`] with the engine and
//! returns `Pending`; the peer that completes the condition wakes it.
//! This decouples rank count from thread count: a million virtual ranks
//! need a million small heap objects, not a million OS threads.
//!
//! Determinism: each scheduling round drains the wake queue, sorts it by
//! rank index, and polls the batch via [`siesta_par::run_tasks`] (which
//! assigns tasks to workers by index, never by arrival). Simulated time
//! is virtual — per-rank clocks advanced by the performance model — so
//! the set of wakes produced by a batch does not depend on host thread
//! interleaving, and the composition of rounds is a pure function of the
//! program. Output artifacts are byte-identical at any `--threads`.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use siesta_obs::metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};

/// Scheduler introspection metrics, resolved once per run. All names
/// carry the `obs.` prefix: wake and round tallies depend on host thread
/// interleaving (a wake landing while its target is RUNNING versus
/// already-polled changes who enqueues), so they are real observability
/// data but must stay out of the canonical (width-invariant) report.
struct SchedMetrics {
    rounds: &'static Counter,
    wakes: &'static Counter,
    quiescence_checks: &'static Counter,
    batch_size: &'static Histogram,
    wakes_per_rank: &'static Histogram,
    queue_depth: &'static Gauge,
}

impl SchedMetrics {
    fn resolve() -> SchedMetrics {
        SchedMetrics {
            rounds: counter("obs.sim.sched.rounds"),
            wakes: counter("obs.sim.sched.wakes"),
            quiescence_checks: counter("obs.sim.sched.quiescence_checks"),
            batch_size: histogram("obs.sim.sched.batch_size"),
            wakes_per_rank: histogram("obs.sim.sched.wakes_per_rank"),
            queue_depth: gauge("obs.sim.sched.queue_depth"),
        }
    }
}

/// The boxed resumable state machine of one rank. Rank bodies receive a
/// [`crate::Rank`] by value and return it when done (so the world can
/// collect per-rank statistics); `'env` lets the body borrow data owned
/// by the caller of [`crate::World::run`].
pub type RankFut<'env, T> = Pin<Box<dyn Future<Output = T> + Send + 'env>>;

// Rank scheduling states. IDLE: blocked, waiting for a wake. QUEUED: in
// the wake queue for the next batch. RUNNING: being polled right now.
// DONE: future completed.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DONE: u8 = 3;

/// Shared scheduler state the wakers point at.
struct ExecShared {
    status: Vec<AtomicU8>,
    /// Set when a wake arrives while the rank is mid-poll; the poller
    /// re-queues the rank after storing `IDLE` so the wake is not lost.
    pending: Vec<AtomicBool>,
    /// Ranks runnable in the next batch. Drained, sorted, and polled as
    /// one `run_tasks` region per scheduling round.
    queue: Mutex<Vec<usize>>,
    /// Per-rank wake tallies, allocated only when introspection is on
    /// (the hot path must stay one branch when profiling is off).
    wake_counts: Option<Vec<AtomicU64>>,
}

impl ExecShared {
    fn new(n: usize, instrument: bool) -> ExecShared {
        ExecShared {
            status: (0..n).map(|_| AtomicU8::new(QUEUED)).collect(),
            pending: (0..n).map(|_| AtomicBool::new(false)).collect(),
            queue: Mutex::new((0..n).collect()),
            wake_counts: instrument.then(|| (0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Tally one wake enqueue for `rank` (introspection only).
    fn note_wake(&self, rank: usize) {
        if let Some(counts) = &self.wake_counts {
            counts[rank].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Make `rank` runnable. Safe to call from any thread, including the
    /// thread currently polling `rank`.
    fn wake_rank(&self, rank: usize) {
        loop {
            match self.status[rank].load(Ordering::Acquire) {
                IDLE => {
                    if self.status[rank]
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.queue.lock().unwrap().push(rank);
                        self.note_wake(rank);
                        return;
                    }
                    // Lost the race with another waker or the poller; retry.
                }
                RUNNING => {
                    self.pending[rank].store(true, Ordering::Release);
                    // The poller may have stored IDLE just before our flag
                    // landed; re-check, and if it already consumed the flag
                    // someone queued the rank for us.
                    if self.status[rank].load(Ordering::Acquire) == RUNNING {
                        return;
                    }
                    if !self.pending[rank].swap(false, Ordering::AcqRel) {
                        return;
                    }
                    // We took the flag back; loop and enqueue ourselves.
                }
                // QUEUED or DONE: nothing to do.
                _ => return,
            }
        }
    }
}

struct RankWaker {
    exec: Arc<ExecShared>,
    rank: usize,
}

impl Wake for RankWaker {
    fn wake(self: Arc<Self>) {
        self.exec.wake_rank(self.rank);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.exec.wake_rank(self.rank);
    }
}

struct Slot<'env, T> {
    fut: Option<RankFut<'env, T>>,
    out: Option<T>,
}

/// Drive all rank futures to completion on the event scheduler.
///
/// Returns `Err(blocked_ranks)` if the simulation deadlocks: no rank is
/// runnable but some have not finished. Between batches no rank is
/// executing, so an empty wake queue with unfinished ranks is a true
/// quiescent deadlock, never a race.
pub(crate) fn run_event<'env, T: Send>(
    futs: Vec<RankFut<'env, T>>,
) -> Result<Vec<T>, Vec<usize>> {
    let n = futs.len();
    let metrics = (siesta_obs::profiling_enabled() || crate::profiler::sim_profile_enabled())
        .then(SchedMetrics::resolve);
    let exec = Arc::new(ExecShared::new(n, metrics.is_some()));
    let wakers: Vec<Waker> = (0..n)
        .map(|rank| Waker::from(Arc::new(RankWaker { exec: exec.clone(), rank })))
        .collect();
    let slots: Vec<Mutex<Slot<'env, T>>> = futs
        .into_iter()
        .map(|f| Mutex::new(Slot { fut: Some(f), out: None }))
        .collect();

    let mut unfinished = n;
    while unfinished > 0 {
        let mut batch = std::mem::take(&mut *exec.queue.lock().unwrap());
        if let Some(m) = &metrics {
            m.queue_depth.set(batch.len() as i64);
        }
        if batch.is_empty() {
            // Quiescent with work left: deadlock. Report who is stuck.
            if let Some(m) = &metrics {
                m.quiescence_checks.inc();
            }
            let blocked: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.lock().unwrap().fut.is_some())
                .map(|(r, _)| r)
                .collect();
            return Err(blocked);
        }
        // Deterministic batch order: rank index, not wake arrival.
        batch.sort_unstable();
        if let Some(m) = &metrics {
            m.rounds.inc();
            m.batch_size.record(batch.len() as u64);
        }
        let width = siesta_par::threads().min(batch.len());
        let finished = siesta_par::run_tasks(batch.len(), width, |i| {
            let rank = batch[i];
            let mut slot = slots[rank].lock().unwrap();
            exec.status[rank].store(RUNNING, Ordering::Release);
            let fut = slot.fut.as_mut().expect("queued rank has a live future");
            let mut cx = Context::from_waker(&wakers[rank]);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(out) => {
                    slot.fut = None;
                    slot.out = Some(out);
                    exec.status[rank].store(DONE, Ordering::Release);
                    true
                }
                Poll::Pending => {
                    exec.status[rank].store(IDLE, Ordering::Release);
                    // A wake that landed mid-poll parked itself in
                    // `pending`; convert it into a queue entry now.
                    if exec.pending[rank].swap(false, Ordering::AcqRel)
                        && exec.status[rank]
                            .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        exec.queue.lock().unwrap().push(rank);
                        exec.note_wake(rank);
                    }
                    false
                }
            }
        });
        unfinished -= finished.iter().filter(|&&done| done).count();
    }

    if let (Some(m), Some(counts)) = (&metrics, &exec.wake_counts) {
        let mut total = 0u64;
        for c in counts {
            let v = c.load(Ordering::Relaxed);
            total += v;
            m.wakes_per_rank.record(v);
        }
        m.wakes.add(total);
        m.queue_depth.set(0);
    }

    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().out.expect("finished rank has output"))
        .collect())
}

/// Cooperatively yield once: wake self, return `Pending` a single time.
/// Used by [`crate::Rank::test`] so a test-poll loop cannot livelock the
/// cooperative scheduler.
pub(crate) struct YieldNow {
    yielded: bool,
}

impl YieldNow {
    pub(crate) fn new() -> YieldNow {
        YieldNow { yielded: false }
    }
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_executor_runs_independent_futures() {
        let futs: Vec<RankFut<'_, usize>> =
            (0..64usize).map(|i| Box::pin(async move { i * 2 }) as RankFut<'_, usize>).collect();
        let out = run_event(futs).expect("no deadlock");
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn yield_now_resumes_in_a_later_batch() {
        let futs: Vec<RankFut<'_, u32>> = (0..4u32)
            .map(|i| {
                Box::pin(async move {
                    YieldNow::new().await;
                    YieldNow::new().await;
                    i
                }) as RankFut<'_, u32>
            })
            .collect();
        assert_eq!(run_event(futs).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn never_woken_future_reports_deadlock() {
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let futs: Vec<RankFut<'_, ()>> = vec![
            Box::pin(async {}),
            Box::pin(async {
                Never.await;
            }),
        ];
        assert_eq!(run_event(futs).unwrap_err(), vec![1]);
    }

    #[test]
    fn cross_rank_wakes_are_not_lost() {
        // Rank 1 blocks on a one-shot cell; rank 0 fills it. Exercises the
        // waker CAS protocol (wake may land while the target is RUNNING).
        use crate::message::AckCell;
        let cell = Arc::new(AckCell::default());
        let c0 = cell.clone();
        let c1 = cell.clone();
        let futs: Vec<RankFut<'_, f64>> = vec![
            Box::pin(async move {
                YieldNow::new().await;
                c0.set(7.5);
                0.0
            }),
            Box::pin(async move {
                let cell = c1;
                crate::message::AckWait(&cell).await
            }),
        ];
        assert_eq!(run_event(futs).unwrap(), vec![0.0, 7.5]);
    }
}
