//! World setup, the run entry points, and run statistics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use siesta_perfmodel::{CounterVec, Machine};

use crate::engine::Engine;
use crate::hook::PmpiHook;
use crate::rank::{blocked, Rank, Shared, SplitRegistry};

/// The boxed resumable state machine of one rank: what a rank body returns.
/// `'env` is the lifetime of whatever the body closure borrows (trace
/// buffers, proxy programs, …) — bodies that own their data use `'static`.
pub type RankFut<'env> =
    std::pin::Pin<Box<dyn std::future::Future<Output = Rank> + Send + 'env>>;

/// Configuration for one simulated MPI job.
pub struct World {
    machine: Machine,
    nranks: usize,
    hook: Option<Arc<dyn PmpiHook>>,
    seed: u64,
}

impl World {
    /// A world of `nranks` processes on `machine`, no instrumentation.
    pub fn new(machine: Machine, nranks: usize) -> World {
        assert!(nranks >= 1, "world needs at least one rank");
        if let Some(max) = machine.platform.max_ranks() {
            assert!(
                nranks <= max,
                "platform {} hosts at most {max} ranks (requested {nranks})",
                machine.platform.name
            );
        }
        World { machine, nranks, hook: None, seed: 0x51e57a }
    }

    /// Install a PMPI interposer (the tracing side of Siesta).
    pub fn with_hook(mut self, hook: Arc<dyn PmpiHook>) -> World {
        self.hook = Some(hook);
        self
    }

    /// Set the measurement-noise seed (defaults to a fixed constant).
    pub fn with_seed(mut self, seed: u64) -> World {
        self.seed = seed;
        self
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `body` once per rank and collect statistics. Ranks 0..n-1 execute
    /// the same function (SPMD), branching internally as MPI programs do.
    ///
    /// The body receives its [`Rank`] by value and must return it (the
    /// idiomatic shape is `|mut rank| Box::pin(async move { …; rank })`).
    /// Ranks run as resumable state machines on a discrete-event scheduler:
    /// only *runnable* ranks occupy a worker, so worlds of a million ranks
    /// need a million small futures, not a million OS threads.
    ///
    /// Panics with a per-rank diagnosis if the program deadlocks (every
    /// unfinished rank blocked with nothing in flight to wake it).
    pub fn run<'env, F>(&self, body: F) -> RunStats
    where
        F: Fn(Rank) -> RankFut<'env> + Send + Sync,
    {
        match self.try_run(body) {
            Ok(stats) => stats,
            Err(deadlock) => panic!("{deadlock}"),
        }
    }

    /// Like [`World::run`], but reports deadlock as an error instead of
    /// panicking.
    pub fn try_run<'env, F>(&self, body: F) -> Result<RunStats, Deadlock>
    where
        F: Fn(Rank) -> RankFut<'env> + Send + Sync,
    {
        siesta_obs::debug!(
            "mpisim: running {} ranks on {}{}",
            self.nranks,
            self.machine.label(),
            if self.hook.is_some() { " (hooked)" } else { "" }
        );
        let shared = Arc::new(Shared {
            engine: Engine::new(self.machine, self.nranks),
            hook: self.hook.clone(),
            splits: SplitRegistry::new(),
            seed: self.seed,
            nranks: self.nranks,
            blocked: (0..self.nranks).map(|_| AtomicU64::new(blocked::NONE)).collect(),
        });
        let futs: Vec<RankFut<'env>> =
            (0..self.nranks).map(|r| body(Rank::new(shared.clone(), r))).collect();
        match crate::exec::run_event(futs) {
            Ok(ranks) => {
                // The executor returns results in slot order == rank order.
                Ok(RunStats { per_rank: ranks.into_iter().map(Rank::into_stats).collect() })
            }
            Err(stuck) => Err(Deadlock {
                nranks: self.nranks,
                ranks: stuck
                    .into_iter()
                    .map(|r| (r, blocked::describe(shared.blocked[r].load(Ordering::Relaxed))))
                    .collect(),
            }),
        }
    }

}

/// A detected simulation deadlock: the scheduler went quiescent with
/// unfinished ranks. Carries a per-rank diagnosis of what each blocked rank
/// was waiting for.
#[derive(Debug)]
pub struct Deadlock {
    pub nranks: usize,
    /// `(global rank, reason)` for every blocked rank.
    pub ranks: Vec<(usize, String)>,
}

impl fmt::Display for Deadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation deadlock: {} of {} ranks blocked with no message in flight to wake them",
            self.ranks.len(),
            self.nranks
        )?;
        const SHOWN: usize = 16;
        for (r, why) in self.ranks.iter().take(SHOWN) {
            writeln!(f, "  rank {r}: {why}")?;
        }
        if self.ranks.len() > SHOWN {
            writeln!(f, "  … and {} more", self.ranks.len() - SHOWN)?;
        }
        Ok(())
    }
}

impl std::error::Error for Deadlock {}

/// Final accounting for one rank.
#[derive(Debug, Clone, Copy)]
pub struct RankStats {
    pub rank: usize,
    /// Virtual time at which this rank finished, nanoseconds.
    pub finish_ns: f64,
    /// Cumulative computation counters.
    pub counters: CounterVec,
    /// Virtual time spent in application computation.
    pub compute_ns: f64,
    /// Virtual time spent inside MPI calls.
    pub mpi_ns: f64,
    /// Portion of `mpi_ns` spent *blocked* waiting on peers: clock jumps to
    /// externally-produced completion times (message arrival, rendezvous
    /// ack, collective quorum). The remainder is local transfer/overhead.
    pub wait_ns: f64,
    /// Application-level MPI calls made.
    pub app_calls: u64,
    /// Application payload bytes sent (outgoing contributions).
    pub bytes_sent: u64,
    /// Number of `compute` invocations.
    pub compute_events: u64,
    /// Fingerprint of this rank's event schedule in virtual time (rolling
    /// hash over every accounted MPI call's completion clock). Equal hashes
    /// ⇒ the rank made the same calls completing at the same virtual times.
    pub sched_hash: u64,
}

/// Statistics for a whole run.
#[derive(Debug, Clone)]
pub struct RunStats {
    pub per_rank: Vec<RankStats>,
}

impl RunStats {
    /// Job completion time: the slowest rank's finish time, nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.per_rank.iter().map(|r| r.finish_ns).fold(0.0, f64::max)
    }

    /// Job completion time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() / 1e6
    }

    /// Total application MPI calls across ranks.
    pub fn total_calls(&self) -> u64 {
        self.per_rank.iter().map(|r| r.app_calls).sum()
    }

    /// Total application payload bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total virtual time ranks spent blocked inside MPI waiting on peers.
    pub fn total_wait_ns(&self) -> f64 {
        self.per_rank.iter().map(|r| r.wait_ns).sum()
    }

    /// Whole-run schedule fingerprint: per-rank schedule hashes folded in
    /// rank order. Byte-identical schedules — across worker counts and
    /// across the threaded/event executors — produce equal hashes.
    pub fn schedule_hash(&self) -> u64 {
        self.per_rank.iter().fold(0x5c4ed01eu64, |acc, r| {
            siesta_perfmodel::noise::combine(&[acc, r.rank as u64, r.sched_hash])
        })
    }

    /// Sum of computation counters over all ranks.
    pub fn total_counters(&self) -> CounterVec {
        self.per_rank
            .iter()
            .fold(CounterVec::ZERO, |acc, r| acc + r.counters)
    }

    /// Mean over ranks of the per-rank mean relative counter error against
    /// a reference run — the paper's Table 3 "Error" aggregation (averaged
    /// "across all the metrics and processes"). Metrics below the hardware
    /// measurement floor are skipped: their relative errors are noise.
    pub fn mean_counter_error(&self, reference: &RunStats) -> f64 {
        assert_eq!(self.per_rank.len(), reference.per_rank.len());
        let n = self.per_rank.len() as f64;
        self.per_rank
            .iter()
            .zip(&reference.per_rank)
            .map(|(a, b)| {
                a.counters.mean_relative_error_floored(
                    &b.counters,
                    siesta_perfmodel::MEASUREMENT_FLOOR,
                )
            })
            .sum::<f64>()
            / n
    }

    /// Relative execution-time error against a reference run
    /// (`|T_gen − T_app| / T_app`, the Figs 6–9 metric).
    pub fn time_error(&self, reference: &RunStats) -> f64 {
        let t_ref = reference.elapsed_ns();
        if t_ref == 0.0 {
            return 0.0;
        }
        (self.elapsed_ns() - t_ref).abs() / t_ref
    }
}
