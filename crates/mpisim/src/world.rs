//! World setup and run statistics.

use std::sync::Arc;

use siesta_perfmodel::{CounterVec, Machine};

use crate::engine::Engine;
use crate::hook::PmpiHook;
use crate::rank::{Rank, Shared, SplitRegistry};

/// Configuration for one simulated MPI job.
pub struct World {
    machine: Machine,
    nranks: usize,
    hook: Option<Arc<dyn PmpiHook>>,
    seed: u64,
}

impl World {
    /// A world of `nranks` processes on `machine`, no instrumentation.
    pub fn new(machine: Machine, nranks: usize) -> World {
        assert!(nranks >= 1, "world needs at least one rank");
        if let Some(max) = machine.platform.max_ranks() {
            assert!(
                nranks <= max,
                "platform {} hosts at most {max} ranks (requested {nranks})",
                machine.platform.name
            );
        }
        World { machine, nranks, hook: None, seed: 0x51e57a }
    }

    /// Install a PMPI interposer (the tracing side of Siesta).
    pub fn with_hook(mut self, hook: Arc<dyn PmpiHook>) -> World {
        self.hook = Some(hook);
        self
    }

    /// Set the measurement-noise seed (defaults to a fixed constant).
    pub fn with_seed(mut self, seed: u64) -> World {
        self.seed = seed;
        self
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `body` once per rank, each on its own thread, and collect
    /// statistics. `body` receives the rank handle; rank 0..n-1 execute the
    /// same function (SPMD), branching internally as MPI programs do.
    pub fn run<F>(&self, body: F) -> RunStats
    where
        F: Fn(&mut Rank) + Send + Sync,
    {
        siesta_obs::debug!(
            "mpisim: running {} ranks on {}{}",
            self.nranks,
            self.machine.label(),
            if self.hook.is_some() { " (hooked)" } else { "" }
        );
        let shared = Shared {
            engine: Engine::new(self.machine, self.nranks),
            hook: self.hook.clone(),
            splits: SplitRegistry::new(),
            seed: self.seed,
            nranks: self.nranks,
        };
        let body = &body;
        let shared_ref = &shared;
        let per_rank: Vec<RankStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nranks)
                .map(|r| {
                    scope.spawn(move || {
                        let mut rank = Rank::new(shared_ref, r);
                        body(&mut rank);
                        rank.into_stats()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });
        RunStats { per_rank }
    }
}

/// Final accounting for one rank.
#[derive(Debug, Clone, Copy)]
pub struct RankStats {
    pub rank: usize,
    /// Virtual time at which this rank finished, nanoseconds.
    pub finish_ns: f64,
    /// Cumulative computation counters.
    pub counters: CounterVec,
    /// Virtual time spent in application computation.
    pub compute_ns: f64,
    /// Virtual time spent inside MPI calls.
    pub mpi_ns: f64,
    /// Application-level MPI calls made.
    pub app_calls: u64,
    /// Application payload bytes sent (outgoing contributions).
    pub bytes_sent: u64,
    /// Number of `compute` invocations.
    pub compute_events: u64,
}

/// Statistics for a whole run.
#[derive(Debug, Clone)]
pub struct RunStats {
    pub per_rank: Vec<RankStats>,
}

impl RunStats {
    /// Job completion time: the slowest rank's finish time, nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.per_rank.iter().map(|r| r.finish_ns).fold(0.0, f64::max)
    }

    /// Job completion time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() / 1e6
    }

    /// Total application MPI calls across ranks.
    pub fn total_calls(&self) -> u64 {
        self.per_rank.iter().map(|r| r.app_calls).sum()
    }

    /// Total application payload bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Sum of computation counters over all ranks.
    pub fn total_counters(&self) -> CounterVec {
        self.per_rank
            .iter()
            .fold(CounterVec::ZERO, |acc, r| acc + r.counters)
    }

    /// Mean over ranks of the per-rank mean relative counter error against
    /// a reference run — the paper's Table 3 "Error" aggregation (averaged
    /// "across all the metrics and processes"). Metrics below the hardware
    /// measurement floor are skipped: their relative errors are noise.
    pub fn mean_counter_error(&self, reference: &RunStats) -> f64 {
        assert_eq!(self.per_rank.len(), reference.per_rank.len());
        let n = self.per_rank.len() as f64;
        self.per_rank
            .iter()
            .zip(&reference.per_rank)
            .map(|(a, b)| {
                a.counters.mean_relative_error_floored(
                    &b.counters,
                    siesta_perfmodel::MEASUREMENT_FLOOR,
                )
            })
            .sum::<f64>()
            / n
    }

    /// Relative execution-time error against a reference run
    /// (`|T_gen − T_app| / T_app`, the Figs 6–9 metric).
    pub fn time_error(&self, reference: &RunStats) -> f64 {
        let t_ref = reference.elapsed_ns();
        if t_ref == 0.0 {
            return 0.0;
        }
        (self.elapsed_ns() - t_ref).abs() / t_ref
    }
}
