//! The per-process MPI handle: point-to-point operations, computation,
//! communicator management, and the virtual clock.
//!
//! A `Rank` is the state a rank's resumable state machine threads through
//! its body. Blocking MPI calls are `async`: each is an explicit
//! continuation point where the state machine may return `Pending` to the
//! event scheduler (registering a waker with the matching engine, a
//! rendezvous ack cell, or the split registry) instead of parking an OS
//! thread. Non-blocking calls (`isend`, `irecv`) remain plain methods.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use siesta_perfmodel::net::Protocol;
use siesta_perfmodel::{CounterVec, KernelDesc, Machine};

use crate::comm::{CommId, Communicator};
use crate::engine::{Completion, Engine};
use crate::hook::{HookCtx, MpiCall, PmpiHook};
use crate::message::{AckCell, AckWait, Channel, Envelope, MatchKey, RecvStatus, Tag, WireProtocol};
use crate::request::{ReqState, Request, RequestTable};
use crate::world::RankStats;

/// State shared by every rank of one world run.
pub(crate) struct Shared {
    pub engine: Engine,
    pub hook: Option<Arc<dyn PmpiHook>>,
    pub splits: SplitRegistry,
    pub seed: u64,
    pub nranks: usize,
    /// Per-rank "why am I blocked" hints, written before every blocking
    /// await and cleared after. The scheduler reads them to build a
    /// per-rank diagnosis when the simulation deadlocks.
    pub blocked: Vec<AtomicU64>,
}

/// Encoding of the per-rank blocked-reason hints: kind in the top byte,
/// peer global rank (or `u32::MAX` for unknown) in the low 32 bits.
pub(crate) mod blocked {
    pub const NONE: u64 = 0;
    const RECV: u64 = 1;
    const ACK: u64 = 2;
    const SPLIT: u64 = 3;

    fn pack(kind: u64, peer: usize) -> u64 {
        (kind << 56) | (peer as u64 & 0xFFFF_FFFF)
    }

    pub fn recv(src_global: usize) -> u64 {
        pack(RECV, src_global)
    }

    pub fn ack(dst_global: usize) -> u64 {
        pack(ACK, dst_global)
    }

    pub fn split() -> u64 {
        pack(SPLIT, u32::MAX as usize)
    }

    pub fn describe(hint: u64) -> String {
        let peer = (hint & 0xFFFF_FFFF) as u32;
        let peer = if peer == u32::MAX { "?".to_string() } else { peer.to_string() };
        match hint >> 56 {
            RECV => format!("waiting for a message from global rank {peer}"),
            ACK => format!("waiting for rendezvous ack from global rank {peer}"),
            SPLIT => "waiting for comm_split contributions".to_string(),
            _ => "blocked".to_string(),
        }
    }
}

/// Rendezvous point for `MPI_Comm_split` contributions. Data moves through
/// this registry; *time* is charged by an allgather-shaped cost model over
/// the contributors' entry clocks, so the result is still a pure function of
/// virtual timestamps.
pub(crate) struct SplitRegistry {
    inner: Mutex<HashMap<(u64, u32), SplitSlot>>,
}

struct SplitSlot {
    contributions: Vec<Option<(i64, i64, f64)>>,
    filled: usize,
    readers: usize,
    /// Wakers of members blocked waiting for the slot to fill, keyed by
    /// parent-local rank (each member waits at most once per slot).
    wakers: Vec<(usize, Waker)>,
}

impl SplitRegistry {
    pub fn new() -> SplitRegistry {
        SplitRegistry { inner: Mutex::new(HashMap::new()) }
    }
}

/// Future of one rank's participation in a split exchange: deposits the
/// `(color, key, entry_clock)` contribution on first poll and resolves once
/// every member of the parent communicator has contributed.
struct SplitWait<'a> {
    reg: &'a SplitRegistry,
    slot_key: (u64, u32),
    local_rank: usize,
    size: usize,
    value: (i64, i64, f64),
    deposited: bool,
}

impl std::future::Future for SplitWait<'_> {
    type Output = Vec<(i64, i64, f64)>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut map = this.reg.inner.lock().unwrap();
        let slot = map.entry(this.slot_key).or_insert_with(|| SplitSlot {
            contributions: vec![None; this.size],
            filled: 0,
            readers: 0,
            wakers: Vec::new(),
        });
        if !this.deposited {
            assert!(
                slot.contributions[this.local_rank].is_none(),
                "rank {} contributed twice to the same split",
                this.local_rank
            );
            slot.contributions[this.local_rank] = Some(this.value);
            slot.filled += 1;
            this.deposited = true;
            if slot.filled == this.size {
                for (_, w) in slot.wakers.drain(..) {
                    w.wake();
                }
            }
        }
        if slot.filled == this.size {
            let out: Vec<(i64, i64, f64)> =
                slot.contributions.iter().map(|c| c.expect("filled")).collect();
            slot.readers += 1;
            if slot.readers == this.size {
                map.remove(&this.slot_key);
            }
            Poll::Ready(out)
        } else {
            match slot.wakers.iter_mut().find(|(r, _)| *r == this.local_rank) {
                Some(entry) => entry.1 = cx.waker().clone(),
                None => slot.wakers.push((this.local_rank, cx.waker().clone())),
            }
            Poll::Pending
        }
    }
}

/// One MPI process within a running [`crate::World`].
///
/// All methods mirror their MPI namesakes; ranks and tags follow MPI
/// conventions (communicator-local ranks, non-negative application tags).
/// Rank bodies receive the `Rank` by value and must return it so the world
/// can collect statistics.
pub struct Rank {
    pub(crate) shared: Arc<Shared>,
    pub(crate) rank: usize,
    pub(crate) clock: f64,
    pub(crate) counters: CounterVec,
    pub(crate) requests: RequestTable,
    /// Per-communicator derivation counters (split/dup ids).
    pub(crate) derive_seq: HashMap<u64, u32>,
    /// Per-communicator collective sequence numbers (plumbing keys).
    pub(crate) coll_seq: HashMap<u64, u32>,
    pub(crate) compute_ns: f64,
    pub(crate) mpi_ns: f64,
    /// Total blocked-wait time (see [`Rank::note_wait`]).
    pub(crate) wait_ns_total: f64,
    /// Blocked-wait accumulated inside the current hooked call; reset by
    /// `hook_pre_raw`, reported through `HookCtx::wait_ns` in the post hook.
    pub(crate) cur_wait_ns: f64,
    /// Virtual clock at the current call's pre hook (`HookCtx::call_start_ns`).
    pub(crate) cur_call_t0: f64,
    /// Hooked calls completed so far: feeds [`HookCtx::call_seq`].
    pub(crate) hooked_calls: u32,
    pub(crate) app_calls: u64,
    pub(crate) bytes_sent: u64,
    pub(crate) compute_events: u64,
    pub(crate) event_seq: u64,
    /// Rolling hash over (clock, call count) at every accounted MPI call —
    /// a fingerprint of this rank's event schedule in virtual time.
    pub(crate) sched_hash: u64,
}

impl Rank {
    pub(crate) fn new(shared: Arc<Shared>, rank: usize) -> Rank {
        Rank {
            shared,
            rank,
            clock: 0.0,
            counters: CounterVec::ZERO,
            requests: RequestTable::new(),
            derive_seq: HashMap::new(),
            coll_seq: HashMap::new(),
            compute_ns: 0.0,
            mpi_ns: 0.0,
            wait_ns_total: 0.0,
            cur_wait_ns: 0.0,
            cur_call_t0: 0.0,
            hooked_calls: 0,
            app_calls: 0,
            bytes_sent: 0,
            compute_events: 0,
            event_seq: 0,
            sched_hash: 0,
        }
    }

    /// Global rank of this process.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total processes in the world.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// The world communicator.
    pub fn comm_world(&self) -> Communicator {
        Communicator::world(self.shared.nranks, self.rank)
    }

    /// Current virtual time in nanoseconds (`MPI_Wtime` analogue).
    pub fn wtime(&self) -> f64 {
        self.clock
    }

    /// Cumulative computation counters (what PAPI would report).
    pub fn counters(&self) -> CounterVec {
        self.counters
    }

    /// The execution environment.
    pub fn machine(&self) -> &Machine {
        self.shared.engine.machine()
    }

    /// Number of live non-blocking requests (diagnostics; a correct program
    /// ends with zero).
    pub fn outstanding_requests(&self) -> usize {
        self.requests.outstanding()
    }

    // ------------------------------------------------------------------
    // Computation
    // ------------------------------------------------------------------

    /// Execute application computation: advances the virtual clock and the
    /// computation counters through the platform's CPU model (with
    /// deterministic measurement noise). Not an MPI call; not hooked.
    pub fn compute(&mut self, kernel: &KernelDesc) {
        let seed = siesta_perfmodel::noise::combine(&[
            self.shared.seed,
            self.rank as u64,
            self.event_seq,
        ]);
        self.event_seq += 1;
        let c = self.machine().cpu().counters_noisy(kernel, seed);
        let dt = self.machine().cpu().time_ns(&c);
        self.counters += c;
        self.clock += dt;
        self.compute_ns += dt;
        self.compute_events += 1;
    }

    /// Execute computation specified directly as a counter vector (used by
    /// proxy replay, where the work is a sum of block signatures rather
    /// than a single kernel). Observed with measurement noise like
    /// [`Rank::compute`]; not an MPI call; not hooked.
    pub fn compute_counters(&mut self, exact: &CounterVec) {
        let seed = siesta_perfmodel::noise::combine(&[
            self.shared.seed ^ 0xC0DE,
            self.rank as u64,
            self.event_seq,
        ]);
        self.event_seq += 1;
        let c = self.machine().cpu().observe(exact, seed);
        let dt = self.machine().cpu().time_ns(&c);
        self.counters += c;
        self.clock += dt;
        self.compute_ns += dt;
        self.compute_events += 1;
    }

    /// Advance the virtual clock by a fixed interval without touching the
    /// counters — the "sleep" primitive that time-interval replay tools
    /// (ScalaBench and friends) use in place of real computation.
    pub fn sleep_ns(&mut self, ns: f64) {
        if ns > 0.0 {
            self.clock += ns;
            self.compute_ns += ns;
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`).
    pub async fn send(&mut self, comm: &Communicator, dest: usize, tag: Tag, bytes: usize) {
        let call = MpiCall::Send { comm: comm.id, dest, tag, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.p2p_send_blocking(
            comm.global_of(dest),
            comm.rank(),
            comm.id,
            Channel::App { tag },
            bytes,
        )
        .await;
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
    }

    /// Blocking receive (`MPI_Recv`). `bytes` is the receive buffer size;
    /// the returned status reports the actual message size.
    pub async fn recv(
        &mut self,
        comm: &Communicator,
        src: usize,
        tag: Tag,
        bytes: usize,
    ) -> RecvStatus {
        let call = MpiCall::Recv { comm: comm.id, src, tag, bytes };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        let src_global = comm.global_of(src);
        let id = self.post_recv_raw(src_global, comm.id, Channel::App { tag });
        let status = self.wait_recv_raw(id, src_global).await;
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, comm);
        status
    }

    /// Non-blocking send (`MPI_Isend`).
    pub fn isend(&mut self, comm: &Communicator, dest: usize, tag: Tag, bytes: usize) -> Request {
        let (state, clock_advance) = self.p2p_isend_state(
            comm.global_of(dest),
            comm.rank(),
            comm.id,
            Channel::App { tag },
            bytes,
        );
        let req = self.requests.alloc(state, tag);
        let call = MpiCall::Isend { comm: comm.id, dest, tag, bytes, req: req.0 };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        self.clock += clock_advance;
        self.account_mpi(t0, bytes);
        self.hook_post_c(&call, comm);
        req
    }

    /// Non-blocking receive (`MPI_Irecv`).
    pub fn irecv(&mut self, comm: &Communicator, src: usize, tag: Tag, bytes: usize) -> Request {
        // Post first so the request id in the call record is real.
        let id = self.post_recv_raw(comm.global_of(src), comm.id, Channel::App { tag });
        let req = self.requests.alloc(ReqState::RecvPending { recv_id: id }, tag);
        let call = MpiCall::Irecv { comm: comm.id, src, tag, bytes, req: req.0 };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        // Posting a receive costs a fraction of the receive overhead.
        self.clock += self.machine().net.recv_overhead_ns * 0.25;
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, comm);
        req
    }

    /// Block until a request completes (`MPI_Wait`).
    pub async fn wait(&mut self, req: Request) -> RecvStatus {
        let call = MpiCall::Wait { req: req.0 };
        self.hook_pre(&call);
        let t0 = self.clock;
        let status = self.complete_request(req).await;
        self.account_mpi(t0, 0);
        self.hook_post(&call);
        status
    }

    /// Block until all requests complete (`MPI_Waitall`).
    pub async fn waitall(&mut self, reqs: &[Request]) -> Vec<RecvStatus> {
        let call = MpiCall::Waitall { reqs: reqs.iter().map(|r| r.0).collect() };
        self.hook_pre(&call);
        let t0 = self.clock;
        let mut statuses = Vec::with_capacity(reqs.len());
        for r in reqs {
            statuses.push(self.complete_request(*r).await);
        }
        self.account_mpi(t0, 0);
        self.hook_post(&call);
        statuses
    }

    /// Non-blocking completion test (`MPI_Test`). Completes and consumes
    /// the request on success; on failure it *yields* once to the scheduler
    /// so a test-poll loop cannot livelock cooperative execution. Poll
    /// counts (and thus the clock cost of a polling loop) depend on
    /// scheduling, so `test` is excluded from the byte-identical-schedule
    /// contract — real MPI makes the same non-guarantee.
    pub async fn test(&mut self, req: Request) -> Option<RecvStatus> {
        let ready = match self.requests.get(req) {
            Some(ReqState::RecvPending { recv_id, .. }) => {
                let recv_id = *recv_id;
                if let Some(c) = self.shared.engine.test(self.rank, recv_id) {
                    let status = self.finish_recv(&c);
                    Some(status)
                } else {
                    None
                }
            }
            Some(ReqState::SendDone { done }) => {
                let done = *done;
                self.note_wait(done - self.clock);
                self.clock = self.clock.max(done);
                Some(self.dummy_send_status())
            }
            Some(ReqState::SendRendezvous { ack }) => match ack.try_get() {
                Some(done) => {
                    self.note_wait(done - self.clock);
                    self.clock = self.clock.max(done);
                    Some(self.dummy_send_status())
                }
                None => None,
            },
            None => panic!("test on inactive request"),
        };
        // Polling costs a little software time either way.
        self.clock += self.machine().net.recv_overhead_ns * 0.1;
        if ready.is_some() {
            // Consume the slot; state was already acted upon above.
            let _ = self.requests.take(req);
        } else {
            crate::exec::YieldNow::new().await;
        }
        ready
    }

    /// Combined blocking exchange (`MPI_Sendrecv`), deadlock-free under
    /// rendezvous because the receive is posted before the send blocks.
    #[allow(clippy::too_many_arguments)]
    pub async fn sendrecv(
        &mut self,
        comm: &Communicator,
        dest: usize,
        send_tag: Tag,
        send_bytes: usize,
        src: usize,
        recv_tag: Tag,
        recv_bytes: usize,
    ) -> RecvStatus {
        let call = MpiCall::Sendrecv {
            comm: comm.id,
            dest,
            send_tag,
            send_bytes,
            src,
            recv_tag,
            recv_bytes,
        };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        let src_global = comm.global_of(src);
        let id = self.post_recv_raw(src_global, comm.id, Channel::App { tag: recv_tag });
        self.p2p_send_blocking(
            comm.global_of(dest),
            comm.rank(),
            comm.id,
            Channel::App { tag: send_tag },
            send_bytes,
        )
        .await;
        let status = self.wait_recv_raw(id, src_global).await;
        self.account_mpi(t0, send_bytes);
        self.hook_post_c(&call, comm);
        status
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_split`: collective over `comm`; returns the new
    /// communicator containing this process, or `None` for negative colors.
    pub async fn comm_split(
        &mut self,
        comm: &Communicator,
        color: i64,
        key: i64,
    ) -> Option<Communicator> {
        let mut call = MpiCall::CommSplit { parent: comm.id, color, key, result: None };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        let seq = self.next_derive_seq(comm.id);
        self.set_blocked(blocked::split());
        let contributions = SplitWait {
            reg: &self.shared.splits,
            slot_key: (comm.id.0, seq),
            local_rank: comm.rank(),
            size: comm.size(),
            value: (color, key, self.clock),
            deposited: false,
        }
        .await;
        self.clear_blocked();
        // Allgather-shaped completion: everyone leaves at the same time.
        let t_all = contributions.iter().map(|c| c.2).fold(0.0f64, f64::max);
        let net = &self.machine().net;
        let p = comm.size();
        let span_nodes = !self
            .machine()
            .platform
            .same_node(comm.group.get(0), comm.group.get(p - 1));
        let rounds = (p as f64).log2().ceil().max(1.0);
        let cost = net.collective_overhead_ns
            + rounds * net.latency(!span_nodes)
            + (p * 16) as f64 / net.bandwidth(!span_nodes);
        self.note_wait(t_all + cost - self.clock);
        self.clock = self.clock.max(t_all + cost);
        let pairs: Vec<(i64, i64)> = contributions.iter().map(|c| (c.0, c.1)).collect();
        let result = comm.split_from(&pairs, seq, self.rank);
        if let MpiCall::CommSplit { result: r, .. } = &mut call {
            *r = result.as_ref().map(|c| c.id);
        }
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, comm);
        result
    }

    /// `MPI_Comm_dup`: collective duplicate of `comm`.
    pub async fn comm_dup(&mut self, comm: &Communicator) -> Communicator {
        let mut call = MpiCall::CommDup { parent: comm.id, result: None };
        self.hook_pre_c(&call, comm);
        let t0 = self.clock;
        let seq = self.next_derive_seq(comm.id);
        self.plumbing_barrier(comm).await;
        let result = comm.dup_from(seq);
        if let MpiCall::CommDup { result: r, .. } = &mut call {
            *r = Some(result.id);
        }
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, comm);
        result
    }

    /// `MPI_Comm_free`: local bookkeeping only.
    pub fn comm_free(&mut self, comm: Communicator) {
        let call = MpiCall::CommFree { comm: comm.id };
        self.hook_pre_c(&call, &comm);
        let t0 = self.clock;
        self.clock += self.machine().net.collective_overhead_ns * 0.1;
        self.account_mpi(t0, 0);
        self.hook_post_c(&call, &comm);
    }

    // ------------------------------------------------------------------
    // Internals shared with the collectives module
    // ------------------------------------------------------------------

    fn set_blocked(&self, hint: u64) {
        self.shared.blocked[self.rank].store(hint, Ordering::Relaxed);
    }

    fn clear_blocked(&self) {
        self.shared.blocked[self.rank].store(blocked::NONE, Ordering::Relaxed);
    }

    pub(crate) fn hook_pre(&mut self, call: &MpiCall) {
        self.hook_pre_raw(call, self.rank, self.shared.nranks);
    }

    pub(crate) fn hook_post(&mut self, call: &MpiCall) {
        self.hook_post_raw(call, self.rank, self.shared.nranks);
    }

    pub(crate) fn hook_pre_c(&mut self, call: &MpiCall, comm: &Communicator) {
        self.hook_pre_raw(call, comm.rank(), comm.size());
    }

    pub(crate) fn hook_post_c(&mut self, call: &MpiCall, comm: &Communicator) {
        self.hook_post_raw(call, comm.rank(), comm.size());
    }

    fn hook_pre_raw(&mut self, call: &MpiCall, comm_rank: usize, comm_size: usize) {
        // Hooked calls never nest (collective plumbing bypasses the hooks),
        // so one pre-slot per rank suffices for the per-call wait total.
        self.cur_call_t0 = self.clock;
        self.cur_wait_ns = 0.0;
        if let Some(hook) = &self.shared.hook {
            let ctx = HookCtx {
                rank: self.rank,
                clock_ns: self.clock,
                counters: self.counters,
                comm_rank,
                comm_size,
                call_start_ns: self.clock,
                wait_ns: 0.0,
                call_seq: self.hooked_calls,
            };
            hook.pre(&ctx, call);
            self.clock += hook.overhead_ns() * 0.5;
        }
    }

    fn hook_post_raw(&mut self, call: &MpiCall, comm_rank: usize, comm_size: usize) {
        if let Some(hook) = &self.shared.hook {
            let ctx = HookCtx {
                rank: self.rank,
                clock_ns: self.clock,
                counters: self.counters,
                comm_rank,
                comm_size,
                call_start_ns: self.cur_call_t0,
                wait_ns: self.cur_wait_ns,
                call_seq: self.hooked_calls,
            };
            hook.post(&ctx, call);
            self.clock += hook.overhead_ns() * 0.5;
            self.hooked_calls = self.hooked_calls.wrapping_add(1);
        }
    }

    /// Record virtual time the rank is about to sit blocked: the clock is
    /// jumping forward to a completion time produced by a *peer* (message
    /// arrival, rendezvous ack, collective quorum, split fill). Negative or
    /// zero deltas mean the completion was already in the past — no wait.
    pub(crate) fn note_wait(&mut self, delta_ns: f64) {
        if delta_ns > 0.0 {
            self.cur_wait_ns += delta_ns;
            self.wait_ns_total += delta_ns;
        }
    }

    pub(crate) fn account_mpi(&mut self, t0: f64, sent_bytes: usize) {
        self.mpi_ns += self.clock - t0;
        self.app_calls += 1;
        self.bytes_sent += sent_bytes as u64;
        // Fold the virtual completion time of this call into the schedule
        // hash: two runs with identical hashes made the same calls at the
        // same virtual times, regardless of host threads or executor.
        self.sched_hash = siesta_perfmodel::noise::combine(&[
            self.sched_hash,
            self.clock.to_bits(),
            self.app_calls,
        ]);
    }

    fn next_derive_seq(&mut self, comm: CommId) -> u32 {
        let seq = self.derive_seq.entry(comm.0).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    pub(crate) fn next_coll_seq(&mut self, comm: CommId) -> u32 {
        let seq = self.coll_seq.entry(comm.0).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// Post a receive in the matching engine (no clock change).
    pub(crate) fn post_recv_raw(
        &mut self,
        src_global: usize,
        comm: CommId,
        channel: Channel,
    ) -> u64 {
        let key = MatchKey { src_global, comm, channel };
        self.shared.engine.post_recv(self.rank, key, self.clock)
    }

    /// Apply receiver-side completion: advance the clock past data arrival
    /// plus receive overhead, and build the status.
    pub(crate) fn finish_recv(&mut self, c: &Completion) -> RecvStatus {
        let done = c.data_avail + self.machine().net.recv_overhead_ns;
        self.note_wait(done - self.clock);
        self.clock = self.clock.max(done);
        RecvStatus {
            source: c.src_comm_rank,
            tag: match c.channel {
                Channel::App { tag } => tag,
                Channel::Sys { .. } => -2,
            },
            bytes: c.bytes,
            complete_at: self.clock,
        }
    }

    /// Wait for an engine receive and apply completion. `src_global` is
    /// only a diagnostic hint for deadlock reports (`usize::MAX` = unknown).
    pub(crate) async fn wait_recv_raw(&mut self, recv_id: u64, src_global: usize) -> RecvStatus {
        self.set_blocked(blocked::recv(src_global));
        let c = self.shared.engine.wait(self.rank, recv_id).await;
        self.clear_blocked();
        self.finish_recv(&c)
    }

    /// Blocking send through the wire model (shared by app ops and
    /// collective plumbing).
    pub(crate) async fn p2p_send_blocking(
        &mut self,
        dst_global: usize,
        src_comm_rank: usize,
        comm: CommId,
        channel: Channel,
        bytes: usize,
    ) {
        let machine = *self.machine();
        let net = machine.net;
        let same = machine.platform.same_node(self.rank, dst_global);
        match net.protocol(bytes) {
            Protocol::Eager => {
                let avail = self.clock + net.send_overhead_ns + net.transfer_ns(bytes, same);
                self.shared.engine.send(
                    dst_global,
                    Envelope {
                        src_global: self.rank,
                        src_comm_rank,
                        comm,
                        channel,
                        bytes,
                        protocol: WireProtocol::Eager { avail },
                        ack: None,
                    },
                );
                // Sender is busy for the software overhead plus the local
                // buffer copy.
                self.clock += net.send_overhead_ns + bytes as f64 / net.shm_bandwidth_bpns;
            }
            Protocol::Rendezvous => {
                let rts_avail = self.clock + net.send_overhead_ns + net.latency(same);
                let ack = Arc::new(AckCell::default());
                self.shared.engine.send(
                    dst_global,
                    Envelope {
                        src_global: self.rank,
                        src_comm_rank,
                        comm,
                        channel,
                        bytes,
                        protocol: WireProtocol::Rendezvous { rts_avail },
                        ack: Some(ack.clone()),
                    },
                );
                self.set_blocked(blocked::ack(dst_global));
                let sender_done = AckWait(&ack).await;
                self.clear_blocked();
                let busy_until = self.clock + net.send_overhead_ns;
                self.note_wait(sender_done - busy_until);
                self.clock = busy_until.max(sender_done);
            }
        }
    }

    /// Build the request state for a non-blocking send, plus the immediate
    /// clock advance it costs the caller.
    fn p2p_isend_state(
        &mut self,
        dst_global: usize,
        src_comm_rank: usize,
        comm: CommId,
        channel: Channel,
        bytes: usize,
    ) -> (ReqState, f64) {
        let machine = *self.machine();
        let net = machine.net;
        let same = machine.platform.same_node(self.rank, dst_global);
        match net.protocol(bytes) {
            Protocol::Eager => {
                let avail = self.clock + net.send_overhead_ns + net.transfer_ns(bytes, same);
                self.shared.engine.send(
                    dst_global,
                    Envelope {
                        src_global: self.rank,
                        src_comm_rank,
                        comm,
                        channel,
                        bytes,
                        protocol: WireProtocol::Eager { avail },
                        ack: None,
                    },
                );
                let advance = net.send_overhead_ns + bytes as f64 / net.shm_bandwidth_bpns;
                (ReqState::SendDone { done: self.clock + advance }, advance)
            }
            Protocol::Rendezvous => {
                let rts_avail = self.clock + net.send_overhead_ns + net.latency(same);
                let ack = Arc::new(AckCell::default());
                self.shared.engine.send(
                    dst_global,
                    Envelope {
                        src_global: self.rank,
                        src_comm_rank,
                        comm,
                        channel,
                        bytes,
                        protocol: WireProtocol::Rendezvous { rts_avail },
                        ack: Some(ack.clone()),
                    },
                );
                (ReqState::SendRendezvous { ack }, net.send_overhead_ns)
            }
        }
    }

    async fn complete_request(&mut self, req: Request) -> RecvStatus {
        let (state, _tag) = self.requests.take(req);
        match state {
            ReqState::RecvPending { recv_id, .. } => {
                self.wait_recv_raw(recv_id, usize::MAX).await
            }
            ReqState::SendDone { done } => {
                self.note_wait(done - self.clock);
                self.clock = self.clock.max(done);
                self.dummy_send_status()
            }
            ReqState::SendRendezvous { ack } => {
                self.set_blocked(blocked::ack(usize::MAX));
                let done = AckWait(&ack).await;
                self.clear_blocked();
                self.note_wait(done - self.clock);
                self.clock = self.clock.max(done);
                self.dummy_send_status()
            }
        }
    }

    fn dummy_send_status(&self) -> RecvStatus {
        RecvStatus { source: self.rank, tag: -3, bytes: 0, complete_at: self.clock }
    }

    pub(crate) fn into_stats(self) -> RankStats {
        RankStats {
            rank: self.rank,
            finish_ns: self.clock,
            counters: self.counters,
            compute_ns: self.compute_ns,
            mpi_ns: self.mpi_ns,
            wait_ns: self.wait_ns_total,
            app_calls: self.app_calls,
            bytes_sent: self.bytes_sent,
            compute_events: self.compute_events,
            sched_hash: self.sched_hash,
        }
    }
}
