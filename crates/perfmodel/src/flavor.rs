//! MPI implementation "flavors" (OpenMPI / MPICH / MVAPICH).
//!
//! The paper generates proxy-apps under OpenMPI and replays them under all
//! three implementations (its Figure 7). Implementations differ in their
//! point-to-point tuning (eager thresholds, software overheads, effective
//! latency/bandwidth) and in which collective algorithms they select at a
//! given (communicator size, message size) point. This module encodes those
//! differences as deterministic parameter transformations.

use crate::net::NetParams;

/// One MPI implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiFlavor {
    OpenMpi,
    Mpich,
    Mvapich,
}

/// Collective algorithm families implemented by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Binomial tree (log P rounds, root-out or leaf-in).
    BinomialTree,
    /// Ring / pipeline (P-1 rounds of neighbor exchange).
    Ring,
    /// Recursive doubling (log P rounds of pairwise exchange).
    RecursiveDoubling,
    /// All pairs exchange directly (P-1 rounds, alltoall style).
    Pairwise,
    /// Bruck's algorithm (log P rounds with data rotation, small messages).
    Bruck,
    /// Root sends/receives to everyone sequentially.
    Linear,
}

impl MpiFlavor {
    pub const ALL: [MpiFlavor; 3] = [MpiFlavor::OpenMpi, MpiFlavor::Mpich, MpiFlavor::Mvapich];

    pub fn name(&self) -> &'static str {
        match self {
            MpiFlavor::OpenMpi => "openmpi",
            MpiFlavor::Mpich => "mpich",
            MpiFlavor::Mvapich => "mvapich",
        }
    }

    /// Parse a flavor name as printed by [`MpiFlavor::name`].
    pub fn parse(s: &str) -> Option<MpiFlavor> {
        MpiFlavor::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// Apply this implementation's tuning to the platform's raw fabric
    /// parameters. The multipliers are stylized but directionally honest:
    /// MVAPICH is aggressively tuned for InfiniBand-class fabrics, MPICH is
    /// conservative with larger eager buffers, OpenMPI sits in between with
    /// a small default eager limit.
    pub fn tune(&self, base: NetParams) -> NetParams {
        match self {
            MpiFlavor::OpenMpi => NetParams {
                eager_threshold: 4096,
                ..base
            },
            MpiFlavor::Mpich => NetParams {
                latency_ns: base.latency_ns * 1.30,
                bandwidth_bpns: base.bandwidth_bpns * 0.85,
                shm_latency_ns: base.shm_latency_ns * 0.85,
                shm_bandwidth_bpns: base.shm_bandwidth_bpns * 0.90,
                send_overhead_ns: base.send_overhead_ns * 1.35,
                recv_overhead_ns: base.recv_overhead_ns * 1.35,
                collective_overhead_ns: base.collective_overhead_ns * 1.25,
                eager_threshold: 8192,
                ..base
            },
            MpiFlavor::Mvapich => NetParams {
                latency_ns: base.latency_ns * 0.72,
                bandwidth_bpns: base.bandwidth_bpns * 1.20,
                shm_latency_ns: base.shm_latency_ns * 0.90,
                send_overhead_ns: base.send_overhead_ns * 0.75,
                recv_overhead_ns: base.recv_overhead_ns * 0.75,
                rendezvous_extra_ns: base.rendezvous_extra_ns * 0.70,
                eager_threshold: 16384,
                ..base
            },
        }
    }

    /// Broadcast algorithm for `nprocs` ranks moving `bytes` each.
    pub fn bcast_algo(&self, nprocs: usize, bytes: usize) -> CollectiveAlgo {
        match self {
            MpiFlavor::OpenMpi => {
                if bytes <= 8192 || nprocs <= 4 {
                    CollectiveAlgo::BinomialTree
                } else {
                    CollectiveAlgo::Ring // pipelined large bcast
                }
            }
            MpiFlavor::Mpich => {
                if bytes <= 12288 {
                    CollectiveAlgo::BinomialTree
                } else {
                    CollectiveAlgo::Ring // scatter + allgather modelled as ring
                }
            }
            MpiFlavor::Mvapich => CollectiveAlgo::BinomialTree,
        }
    }

    /// Reduce algorithm (leaf-to-root).
    pub fn reduce_algo(&self, _nprocs: usize, bytes: usize) -> CollectiveAlgo {
        if bytes <= 65536 {
            CollectiveAlgo::BinomialTree
        } else {
            CollectiveAlgo::Ring
        }
    }

    /// Allreduce algorithm.
    pub fn allreduce_algo(&self, nprocs: usize, bytes: usize) -> CollectiveAlgo {
        match self {
            MpiFlavor::OpenMpi => {
                if bytes <= 16384 || nprocs < 8 {
                    CollectiveAlgo::RecursiveDoubling
                } else {
                    CollectiveAlgo::Ring
                }
            }
            MpiFlavor::Mpich => {
                if bytes <= 32768 {
                    CollectiveAlgo::RecursiveDoubling
                } else {
                    CollectiveAlgo::Ring
                }
            }
            MpiFlavor::Mvapich => CollectiveAlgo::RecursiveDoubling,
        }
    }

    /// Alltoall algorithm.
    pub fn alltoall_algo(&self, nprocs: usize, bytes_per_peer: usize) -> CollectiveAlgo {
        match self {
            MpiFlavor::OpenMpi => {
                if bytes_per_peer <= 512 && nprocs >= 8 {
                    CollectiveAlgo::Bruck
                } else {
                    CollectiveAlgo::Pairwise
                }
            }
            MpiFlavor::Mpich => {
                if bytes_per_peer <= 256 && nprocs >= 8 {
                    CollectiveAlgo::Bruck
                } else {
                    CollectiveAlgo::Pairwise
                }
            }
            MpiFlavor::Mvapich => CollectiveAlgo::Pairwise,
        }
    }

    /// Allgather algorithm.
    pub fn allgather_algo(&self, nprocs: usize, bytes: usize) -> CollectiveAlgo {
        if bytes * nprocs <= 65536 {
            CollectiveAlgo::RecursiveDoubling
        } else {
            CollectiveAlgo::Ring
        }
    }

    /// Gather/scatter algorithm.
    pub fn gather_algo(&self, nprocs: usize, _bytes: usize) -> CollectiveAlgo {
        if nprocs <= 8 {
            CollectiveAlgo::Linear
        } else {
            CollectiveAlgo::BinomialTree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NetParams {
        NetParams {
            latency_ns: 1000.0,
            bandwidth_bpns: 20.0,
            shm_latency_ns: 300.0,
            shm_bandwidth_bpns: 40.0,
            eager_threshold: 4096,
            rendezvous_extra_ns: 800.0,
            send_overhead_ns: 150.0,
            recv_overhead_ns: 150.0,
            collective_overhead_ns: 400.0,
        }
    }

    #[test]
    fn flavors_have_distinct_eager_thresholds() {
        let thresholds: Vec<usize> = MpiFlavor::ALL
            .iter()
            .map(|f| f.tune(base()).eager_threshold)
            .collect();
        assert_eq!(thresholds, [4096, 8192, 16384]);
    }

    #[test]
    fn flavors_produce_distinct_p2p_costs() {
        let costs: Vec<f64> = MpiFlavor::ALL
            .iter()
            .map(|f| f.tune(base()).blocking_delivery_ns(1 << 16, false))
            .collect();
        assert!(costs[0] != costs[1] && costs[1] != costs[2] && costs[0] != costs[2]);
    }

    #[test]
    fn mvapich_has_lowest_network_latency() {
        let lats: Vec<f64> = MpiFlavor::ALL
            .iter()
            .map(|f| f.tune(base()).latency_ns)
            .collect();
        assert!(lats[2] < lats[0] && lats[0] < lats[1]);
    }

    #[test]
    fn algorithm_selection_depends_on_size() {
        let f = MpiFlavor::OpenMpi;
        assert_eq!(f.bcast_algo(64, 64), CollectiveAlgo::BinomialTree);
        assert_eq!(f.bcast_algo(64, 1 << 20), CollectiveAlgo::Ring);
        assert_eq!(f.allreduce_algo(64, 64), CollectiveAlgo::RecursiveDoubling);
        assert_eq!(f.allreduce_algo(64, 1 << 20), CollectiveAlgo::Ring);
        assert_eq!(f.alltoall_algo(64, 64), CollectiveAlgo::Bruck);
        assert_eq!(f.alltoall_algo(64, 1 << 16), CollectiveAlgo::Pairwise);
    }

    #[test]
    fn flavors_differ_on_some_algorithm_choice() {
        // 64 ranks, 24 KiB bcast: OpenMPI pipelines, MVAPICH stays binomial.
        assert_ne!(
            MpiFlavor::OpenMpi.bcast_algo(64, 24 * 1024),
            MpiFlavor::Mvapich.bcast_algo(64, 24 * 1024)
        );
    }

    #[test]
    fn name_parse_round_trip() {
        for f in MpiFlavor::ALL {
            assert_eq!(MpiFlavor::parse(f.name()), Some(f));
        }
        assert_eq!(MpiFlavor::parse("lam"), None);
    }
}
