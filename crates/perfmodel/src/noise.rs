//! Deterministic measurement noise.
//!
//! Real hardware-counter reads jitter run to run; the paper leans on this
//! ("the statistics from the performance counter are noisy, \[so\] it is
//! unnecessary to store accurate counts") to justify clustering similar
//! computation events. We reproduce the jitter with a counter-mode hash so
//! that the *whole experiment* is still a pure function of its seeds.

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` derived from a seed.
#[inline]
pub fn unit(seed: u64) -> f64 {
    // 53 high bits → double in [0,1).
    (splitmix64(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Approximately standard-normal sample (sum of 4 uniforms, rescaled).
/// Light tails are fine — counters never jitter by many sigma.
#[inline]
pub fn gaussian(seed: u64) -> f64 {
    let s = unit(seed)
        + unit(seed.wrapping_add(0x9e37_79b9))
        + unit(seed.wrapping_add(0x3c6e_f372))
        + unit(seed.wrapping_add(0xdaa6_6d2b));
    // Sum of 4 U(0,1): mean 2, variance 4/12 → std sqrt(1/3).
    (s - 2.0) * (3.0f64).sqrt()
}

/// Multiplicative jitter: `value * (1 + sigma * N(0,1))`, clamped to stay
/// non-negative. Returns `value` untouched when it is zero so that "this
/// kernel has no divides" never becomes "0.3 divides".
#[inline]
pub fn jitter(value: f64, sigma: f64, seed: u64) -> f64 {
    if value == 0.0 || sigma == 0.0 {
        return value;
    }
    (value * (1.0 + sigma * gaussian(seed))).max(0.0)
}

/// Fold several identifiers into one seed.
#[inline]
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_in_range_and_deterministic() {
        for seed in 0..1000u64 {
            let u = unit(seed);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit(seed));
        }
    }

    #[test]
    fn gaussian_has_roughly_unit_moments() {
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for seed in 0..n {
            let g = gaussian(seed as u64 * 7919);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn jitter_preserves_zero_and_stays_nonnegative() {
        assert_eq!(jitter(0.0, 0.5, 1), 0.0);
        assert_eq!(jitter(5.0, 0.0, 1), 5.0);
        for seed in 0..1000u64 {
            assert!(jitter(1.0, 2.0, seed) >= 0.0);
        }
    }

    #[test]
    fn jitter_is_centered() {
        let n = 10_000;
        let mut sum = 0.0;
        for seed in 0..n {
            sum += jitter(100.0, 0.05, seed as u64);
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn combine_differs_on_order_and_content() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_ne!(combine(&[1]), combine(&[1, 0]));
        assert_eq!(combine(&[3, 4, 5]), combine(&[3, 4, 5]));
    }
}
