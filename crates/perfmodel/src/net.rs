//! Network / messaging cost parameters consumed by the virtual-time MPI
//! runtime (`siesta-mpisim`).
//!
//! The model is LogGP-flavored: a message costs software overhead at each
//! end, plus `latency + bytes/bandwidth` on the wire, with distinct
//! parameters for shared-memory (same node) and network (cross node) paths,
//! and an eager/rendezvous protocol switch at a configurable threshold.
//! MPI implementations ("flavors") differ exactly in these parameters plus
//! their collective algorithm choices — which is why the paper's Figure 7
//! (robustness to MPI implementation changes) is reproducible at all.

/// Point-to-point protocol selected for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Message is buffered at the sender and delivered asynchronously;
    /// the sender does not wait for the receiver.
    Eager,
    /// Sender and receiver handshake; the transfer cannot start before the
    /// receive is posted.
    Rendezvous,
}

/// Resolved messaging cost parameters for one (platform, flavor) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    /// One-way cross-node latency in nanoseconds.
    pub latency_ns: f64,
    /// Cross-node bandwidth in bytes per nanosecond (== GB/s).
    pub bandwidth_bpns: f64,
    /// Same-node (shared memory) latency in nanoseconds.
    pub shm_latency_ns: f64,
    /// Same-node bandwidth in bytes per nanosecond.
    pub shm_bandwidth_bpns: f64,
    /// Messages strictly larger than this use the rendezvous protocol.
    pub eager_threshold: usize,
    /// Extra handshake cost of a rendezvous transfer, in nanoseconds.
    pub rendezvous_extra_ns: f64,
    /// Software overhead charged to the sender per point-to-point call.
    pub send_overhead_ns: f64,
    /// Software overhead charged to the receiver per point-to-point call.
    pub recv_overhead_ns: f64,
    /// Software overhead charged per collective call (setup/bookkeeping).
    pub collective_overhead_ns: f64,
}

impl NetParams {
    /// Protocol used for a message of `bytes` bytes.
    pub fn protocol(&self, bytes: usize) -> Protocol {
        if bytes <= self.eager_threshold {
            Protocol::Eager
        } else {
            Protocol::Rendezvous
        }
    }

    /// One-way latency for the given placement.
    pub fn latency(&self, same_node: bool) -> f64 {
        if same_node {
            self.shm_latency_ns
        } else {
            self.latency_ns
        }
    }

    /// Bandwidth in bytes/ns for the given placement.
    pub fn bandwidth(&self, same_node: bool) -> f64 {
        if same_node {
            self.shm_bandwidth_bpns
        } else {
            self.bandwidth_bpns
        }
    }

    /// Wire time of a message: latency plus serialization.
    pub fn transfer_ns(&self, bytes: usize, same_node: bool) -> f64 {
        self.latency(same_node) + bytes as f64 / self.bandwidth(same_node)
    }

    /// Full cost of a *blocking* ping (send start to data available at the
    /// receiver), used by the communication-shrinking regression model.
    pub fn blocking_delivery_ns(&self, bytes: usize, same_node: bool) -> f64 {
        let base = self.send_overhead_ns + self.transfer_ns(bytes, same_node);
        match self.protocol(bytes) {
            Protocol::Eager => base,
            Protocol::Rendezvous => base + self.rendezvous_extra_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetParams {
        NetParams {
            latency_ns: 1000.0,
            bandwidth_bpns: 20.0,
            shm_latency_ns: 300.0,
            shm_bandwidth_bpns: 40.0,
            eager_threshold: 4096,
            rendezvous_extra_ns: 800.0,
            send_overhead_ns: 150.0,
            recv_overhead_ns: 150.0,
            collective_overhead_ns: 400.0,
        }
    }

    #[test]
    fn protocol_switches_at_threshold() {
        let p = params();
        assert_eq!(p.protocol(0), Protocol::Eager);
        assert_eq!(p.protocol(4096), Protocol::Eager);
        assert_eq!(p.protocol(4097), Protocol::Rendezvous);
    }

    #[test]
    fn shared_memory_is_faster() {
        let p = params();
        assert!(p.transfer_ns(1 << 20, true) < p.transfer_ns(1 << 20, false));
        assert!(p.latency(true) < p.latency(false));
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let p = params();
        let mut last = 0.0;
        for sz in [0usize, 64, 1024, 65536, 1 << 20] {
            let t = p.transfer_ns(sz, false);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn rendezvous_adds_handshake() {
        let p = params();
        let just_below = p.blocking_delivery_ns(4096, false);
        let just_above = p.blocking_delivery_ns(4097, false);
        assert!(just_above > just_below + p.rendezvous_extra_ns * 0.99);
    }

    #[test]
    fn large_messages_are_bandwidth_bound() {
        let p = params();
        let bytes = 64usize << 20;
        let t = p.transfer_ns(bytes, false);
        let serial = bytes as f64 / p.bandwidth_bpns;
        assert!((t - serial) / t < 0.01);
    }
}
