//! Analytic processor model: micro-op mixes → Table-1 counters → time.
//!
//! This replaces PAPI in the reproduction. The model is deliberately simple —
//! a bottleneck-plus-penalties pipeline model over a two-level cache — but it
//! has the three properties the Siesta pipeline actually relies on:
//!
//! 1. **Diversity**: kernels with different op mixes produce linearly
//!    independent counter vectors, so the QP search space (the 11 blocks) is
//!    well-conditioned.
//! 2. **Platform sensitivity**: the same kernel yields different CYC (and
//!    therefore time) on platforms with different width / frequency / cache,
//!    which is what makes proxy-apps *portable* in Figs 8–9 while
//!    sleep-based replay (ScalaBench) is not.
//! 3. **Determinism**: identical inputs produce identical counters, so every
//!    experiment in this repository is exactly reproducible.

use crate::counters::CounterVec;
use crate::kernel::KernelDesc;
use crate::noise;

/// Parameters of one processor core plus its cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Core frequency in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// Sustained issue width (instructions per cycle upper bound).
    pub issue_width: f64,
    /// Load/store operations the core can retire per cycle.
    pub mem_ports: f64,
    /// Latency in cycles of one unpipelined floating divide.
    pub fp_div_latency: f64,
    /// L1 data cache size in bytes.
    pub l1_size: f64,
    /// Cache line size in bytes.
    pub line_size: f64,
    /// L2 cache size in bytes.
    pub l2_size: f64,
    /// Cycles lost per L1 miss that hits in L2.
    pub l2_hit_penalty: f64,
    /// Cycles lost per access that misses all caches.
    pub mem_penalty: f64,
    /// Cycles lost per mispredicted branch.
    pub mispredict_penalty: f64,
    /// Relative 1-sigma noise applied to "measured" counters.
    pub noise_sigma: f64,
}

impl CpuModel {
    /// Exact (noise-free) counters for one execution of `kernel`.
    pub fn counters(&self, kernel: &KernelDesc) -> CounterVec {
        let ins = kernel.instructions();
        let lst = kernel.loads + kernel.stores;
        let l1_dcm = self.l1_misses(kernel);
        let br_cn = kernel.branches;
        let msp = kernel.branches * kernel.mispredict_rate.clamp(0.0, 1.0);
        let cyc = self.cycles(kernel, l1_dcm, msp);
        CounterVec { ins, cyc, lst, l1_dcm, br_cn, msp }
    }

    /// Counters with deterministic measurement noise, as a PAPI read would
    /// give. The `seed` should identify the measurement site (rank, event
    /// index, ...) so repeated reads of different events jitter differently
    /// but the whole experiment stays reproducible.
    pub fn counters_noisy(&self, kernel: &KernelDesc, seed: u64) -> CounterVec {
        // INS / LST / BR_CN are architectural and nearly exact on real
        // hardware; CYC, L1_DCM and MSP are micro-architectural and jittery
        // (`observe` applies per-metric sigmas accordingly).
        self.observe(&self.counters(kernel), seed)
    }

    /// Wall-clock nanoseconds implied by a counter reading on this core.
    pub fn time_ns(&self, c: &CounterVec) -> f64 {
        c.cyc / self.freq_ghz
    }

    /// Apply measurement noise to an already-computed counter vector (used
    /// when replaying synthesized proxies, whose exact counters are known
    /// as per-block sums rather than via a single [`KernelDesc`]).
    pub fn observe(&self, exact: &CounterVec, seed: u64) -> CounterVec {
        if self.noise_sigma == 0.0 {
            return *exact;
        }
        let a = exact.as_array();
        let mut out = [0.0f64; 6];
        for (i, v) in a.iter().enumerate() {
            let sigma = match i {
                0 | 2 | 4 => self.noise_sigma * 0.1,
                _ => self.noise_sigma,
            };
            out[i] = noise::jitter(*v, sigma, seed.wrapping_add(i as u64));
        }
        CounterVec::from_array(out)
    }

    /// Convenience: exact execution time of a kernel in nanoseconds.
    pub fn kernel_time_ns(&self, kernel: &KernelDesc) -> f64 {
        self.time_ns(&self.counters(kernel))
    }

    /// Expected L1 data-cache misses for one execution.
    ///
    /// Model: accesses walk `working_set` bytes with the given stride. If the
    /// set fits in L1 only compulsory misses remain (one per line of the
    /// set, amortized across repetitions — we charge a small residual). If it
    /// does not fit, the miss ratio grows with how badly it overflows and
    /// with how line-unfriendly the stride is.
    fn l1_misses(&self, kernel: &KernelDesc) -> f64 {
        let accesses = kernel.loads + kernel.stores;
        if accesses <= 0.0 || kernel.working_set <= 0.0 {
            return 0.0;
        }
        let lines_touched = (kernel.working_set / self.line_size).max(1.0);
        if kernel.working_set <= self.l1_size {
            // Warm working set: only a trickle of conflict misses.
            return (0.002 * accesses).min(lines_touched);
        }
        // Fraction of the set that cannot be resident.
        let overflow = 1.0 - self.l1_size / kernel.working_set;
        // Fraction of accesses that start a new line.
        let line_fraction = (kernel.stride / self.line_size).clamp(1.0 / 16.0, 1.0);
        accesses * overflow * line_fraction
    }

    /// Bottleneck-plus-penalty cycle count.
    fn cycles(&self, kernel: &KernelDesc, l1_dcm: f64, msp: f64) -> f64 {
        let issue = kernel.instructions() / self.issue_width;
        let mem = (kernel.loads + kernel.stores) / self.mem_ports;
        let div = kernel.fp_div * self.fp_div_latency;
        let base = issue.max(mem).max(div);
        let miss_penalty = if kernel.working_set > self.l2_size {
            // Blend L2 and memory penalties by how far past L2 the set goes.
            let beyond = (1.0 - self.l2_size / kernel.working_set).clamp(0.0, 1.0);
            self.l2_hit_penalty * (1.0 - beyond) + self.mem_penalty * beyond
        } else {
            self.l2_hit_penalty
        };
        base + l1_dcm * miss_penalty + msp * self.mispredict_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{platform_a, platform_b, platform_c};

    fn cpu() -> CpuModel {
        platform_a().cpu
    }

    #[test]
    fn counters_match_kernel_architectural_counts() {
        let k = KernelDesc::stencil(1000.0, 4.0, 65536.0);
        let c = cpu().counters(&k);
        assert!((c.ins - k.instructions()).abs() < 1e-9);
        assert!((c.lst - (k.loads + k.stores)).abs() < 1e-9);
        assert!((c.br_cn - k.branches).abs() < 1e-9);
        assert!(c.msp <= c.br_cn);
        assert!(c.is_valid());
    }

    #[test]
    fn small_working_set_has_few_misses() {
        let warm = KernelDesc::stencil(10_000.0, 4.0, 16.0 * 1024.0);
        let cold = KernelDesc::stencil(10_000.0, 4.0, 16.0 * 1024.0 * 1024.0);
        let cw = cpu().counters(&warm);
        let cc = cpu().counters(&cold);
        assert!(cw.cmr() < 0.01, "warm cmr {}", cw.cmr());
        assert!(cc.cmr() > 0.05, "cold cmr {}", cc.cmr());
        // Misses cost cycles.
        assert!(cc.cyc > cw.cyc);
    }

    #[test]
    fn divides_serialize() {
        let adds = KernelDesc {
            fp_add: 10_000.0,
            ..KernelDesc::ZERO
        };
        let divs = KernelDesc {
            fp_div: 10_000.0,
            ..KernelDesc::ZERO
        };
        let c = cpu();
        assert!(c.counters(&divs).cyc > 5.0 * c.counters(&adds).cyc);
        // Same instruction count, far fewer instructions per cycle.
        assert!(c.counters(&divs).ipc() < 0.5 * c.counters(&adds).ipc());
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let predictable = KernelDesc {
            branches: 10_000.0,
            mispredict_rate: 0.0,
            int_alu: 10_000.0,
            ..KernelDesc::ZERO
        };
        let random = KernelDesc {
            mispredict_rate: 0.5,
            ..predictable
        };
        let c = cpu();
        assert!(c.counters(&random).cyc > c.counters(&predictable).cyc);
        assert!((c.counters(&random).msp - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn platforms_disagree_on_time_for_same_kernel() {
        let k = KernelDesc::stencil(100_000.0, 8.0, 4194304.0);
        let ta = platform_a().cpu.kernel_time_ns(&k);
        let tb = platform_b().cpu.kernel_time_ns(&k);
        let tc = platform_c().cpu.kernel_time_ns(&k);
        // Knights Landing (platform B) is much slower per-core than the Xeons.
        assert!(tb > 1.5 * ta, "ta={ta} tb={tb}");
        // A and C are close but not identical (frequency + L2 differ).
        assert!(ta != tc);
        assert!((ta - tc).abs() / ta < 0.6);
    }

    #[test]
    fn noisy_counters_are_deterministic_per_seed_and_close_to_exact() {
        let k = KernelDesc::stencil(10_000.0, 4.0, 1048576.0);
        let c = cpu();
        let a = c.counters_noisy(&k, 42);
        let b = c.counters_noisy(&k, 42);
        assert_eq!(a, b);
        let other = c.counters_noisy(&k, 43);
        assert_ne!(a, other);
        let exact = c.counters(&k);
        assert!(a.mean_relative_error(&exact) < 5.0 * c.noise_sigma + 1e-9);
    }

    #[test]
    fn time_scales_inverse_to_frequency() {
        let k = KernelDesc::stencil(10_000.0, 4.0, 16384.0);
        let mut fast = cpu();
        let mut slow = cpu();
        fast.freq_ghz = 4.0;
        slow.freq_ghz = 1.0;
        let cf = fast.counters(&k);
        let cs = slow.counters(&k);
        assert_eq!(cf.cyc, cs.cyc); // cycles are frequency-independent
        assert!((slow.time_ns(&cs) / fast.time_ns(&cf) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_kernel_is_free() {
        let c = cpu().counters(&KernelDesc::ZERO);
        assert_eq!(c.total(), 0.0);
        let _ = platform_c(); // silence unused in some cfgs
    }
}
