//! Hardware performance models for the Siesta proxy-app synthesizer.
//!
//! The Siesta paper (CLUSTER 2024) characterizes every *computation event* of
//! an MPI program by six hardware performance counters (its Table 1):
//! instructions, cycles, load/stores, L1 data-cache misses, conditional
//! branches, and mispredicted conditional branches. On the authors' testbed
//! these come from PAPI; in this reproduction they come from an analytic CPU
//! model so that the whole pipeline runs on any machine, deterministically.
//!
//! This crate provides:
//!
//! * [`CounterVec`] — the six Table-1 metrics plus arithmetic and the derived
//!   ratios (IPC / cache-miss rate / branch-misprediction rate) used by the
//!   MINIME comparison.
//! * [`KernelDesc`] — an abstract micro-op description of a computation
//!   kernel (what a basic block *does*, independent of any platform).
//! * [`CpuModel`] — maps a [`KernelDesc`] to a [`CounterVec`] and to cycles /
//!   wall time for a specific processor.
//! * [`Platform`] — the three evaluation platforms of the paper's Table 2
//!   (Xeon Scale 6248, Xeon Phi 7210, Xeon E5-2680 v4).
//! * [`MpiFlavor`] and [`NetParams`] — network / MPI-implementation cost
//!   parameters consumed by the `siesta-mpisim` virtual-time runtime.
//! * [`noise`] — deterministic measurement noise, so that counter readings
//!   behave like real (jittery) hardware counters and the trace-side
//!   clustering of similar computation events has real work to do.
//!
//! Everything here is pure and deterministic: the same inputs always produce
//! the same "measurements", which is what makes the repo's experiment
//! harnesses reproducible.

pub mod counters;
pub mod cpu;
pub mod flavor;
pub mod kernel;
pub mod net;
pub mod noise;
pub mod platform;

pub use counters::{CounterVec, Metric, MEASUREMENT_FLOOR, METRICS};
pub use cpu::CpuModel;
pub use flavor::{CollectiveAlgo, MpiFlavor};
pub use kernel::{KernelDesc, TILE_BYTES};
pub use net::{NetParams, Protocol};
pub use platform::{platform_a, platform_b, platform_by_name, platform_c, Machine, Platform};
