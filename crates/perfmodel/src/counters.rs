//! The six performance metrics of the paper's Table 1, and arithmetic on them.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Counts below this are within a hardware counter's run-to-run noise
/// (interrupt skid, OS activity): relative comparisons of smaller readings
/// are not meaningful, and evaluation metrics skip them.
pub const MEASUREMENT_FLOOR: f64 = 1000.0;

/// Identifier of one of the six hardware metrics (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Retired instructions (`PAPI_TOT_INS`).
    Ins,
    /// Elapsed core cycles (`PAPI_TOT_CYC`).
    Cyc,
    /// Load/store instructions (`PAPI_LST_INS`).
    Lst,
    /// L1 data-cache misses (`PAPI_L1_DCM`).
    L1Dcm,
    /// Conditional branches executed (`PAPI_BR_CN`).
    BrCn,
    /// Mispredicted conditional branches (`PAPI_BR_MSP`).
    Msp,
}

/// All six metrics in the order the paper's Table 1 lists them.
pub const METRICS: [Metric; 6] = [
    Metric::Ins,
    Metric::Cyc,
    Metric::Lst,
    Metric::L1Dcm,
    Metric::BrCn,
    Metric::Msp,
];

impl Metric {
    /// Short name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Ins => "INS",
            Metric::Cyc => "CYC",
            Metric::Lst => "LST",
            Metric::L1Dcm => "L1_DCM",
            Metric::BrCn => "BR_CN",
            Metric::Msp => "MSP",
        }
    }

    /// Index of this metric inside a [`CounterVec`] array view.
    pub fn index(self) -> usize {
        match self {
            Metric::Ins => 0,
            Metric::Cyc => 1,
            Metric::Lst => 2,
            Metric::L1Dcm => 3,
            Metric::BrCn => 4,
            Metric::Msp => 5,
        }
    }
}

/// A reading of the six Table-1 hardware counters.
///
/// Counts are kept as `f64` because the synthesis pipeline constantly scales,
/// averages, and fits them; they are only rounded when a proxy is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterVec {
    pub ins: f64,
    pub cyc: f64,
    pub lst: f64,
    pub l1_dcm: f64,
    pub br_cn: f64,
    pub msp: f64,
}

impl CounterVec {
    pub const ZERO: CounterVec = CounterVec {
        ins: 0.0,
        cyc: 0.0,
        lst: 0.0,
        l1_dcm: 0.0,
        br_cn: 0.0,
        msp: 0.0,
    };

    pub fn new(ins: f64, cyc: f64, lst: f64, l1_dcm: f64, br_cn: f64, msp: f64) -> Self {
        CounterVec { ins, cyc, lst, l1_dcm, br_cn, msp }
    }

    pub fn from_array(a: [f64; 6]) -> Self {
        CounterVec { ins: a[0], cyc: a[1], lst: a[2], l1_dcm: a[3], br_cn: a[4], msp: a[5] }
    }

    pub fn as_array(&self) -> [f64; 6] {
        [self.ins, self.cyc, self.lst, self.l1_dcm, self.br_cn, self.msp]
    }

    pub fn get(&self, m: Metric) -> f64 {
        self.as_array()[m.index()]
    }

    pub fn set(&mut self, m: Metric, v: f64) {
        match m {
            Metric::Ins => self.ins = v,
            Metric::Cyc => self.cyc = v,
            Metric::Lst => self.lst = v,
            Metric::L1Dcm => self.l1_dcm = v,
            Metric::BrCn => self.br_cn = v,
            Metric::Msp => self.msp = v,
        }
    }

    /// Instructions per cycle — the first MINIME comparison ratio.
    pub fn ipc(&self) -> f64 {
        if self.cyc > 0.0 {
            self.ins / self.cyc
        } else {
            0.0
        }
    }

    /// Cache-miss rate (L1 data misses per load/store) — second MINIME ratio.
    pub fn cmr(&self) -> f64 {
        if self.lst > 0.0 {
            self.l1_dcm / self.lst
        } else {
            0.0
        }
    }

    /// Branch-misprediction rate — third MINIME ratio.
    pub fn bmr(&self) -> f64 {
        if self.br_cn > 0.0 {
            self.msp / self.br_cn
        } else {
            0.0
        }
    }

    /// Mean relative error of `self` against a reference reading, averaged
    /// over the metrics whose reference value is nonzero.
    ///
    /// This is the error definition of the paper's Section 3.2: "the absolute
    /// difference between the metric values divided by the original program's
    /// metric value", averaged across metrics.
    pub fn mean_relative_error(&self, reference: &CounterVec) -> f64 {
        self.mean_relative_error_floored(reference, f64::EPSILON)
    }

    /// Like [`CounterVec::mean_relative_error`], but metrics whose reference
    /// count is below `floor` are skipped — used by the evaluation harness
    /// with [`MEASUREMENT_FLOOR`], since sub-noise counts cannot be
    /// meaningfully compared in relative terms.
    pub fn mean_relative_error_floored(&self, reference: &CounterVec, floor: f64) -> f64 {
        let a = self.as_array();
        let r = reference.as_array();
        let mut total = 0.0;
        let mut n = 0usize;
        for i in 0..6 {
            if r[i].abs() > floor {
                total += (a[i] - r[i]).abs() / r[i].abs();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// True when every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.as_array().iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Sum of all six components; used as a cheap "is there anything here"
    /// magnitude test by the trace recorder's noise floor.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &CounterVec) -> CounterVec {
        let a = self.as_array();
        let b = other.as_array();
        CounterVec::from_array([
            a[0].max(b[0]),
            a[1].max(b[1]),
            a[2].max(b[2]),
            a[3].max(b[3]),
            a[4].max(b[4]),
            a[5].max(b[5]),
        ])
    }

    /// Round every component to the nearest non-negative integer count.
    pub fn rounded(&self) -> CounterVec {
        let a = self.as_array();
        CounterVec::from_array([
            a[0].round().max(0.0),
            a[1].round().max(0.0),
            a[2].round().max(0.0),
            a[3].round().max(0.0),
            a[4].round().max(0.0),
            a[5].round().max(0.0),
        ])
    }
}

impl Add for CounterVec {
    type Output = CounterVec;
    fn add(self, o: CounterVec) -> CounterVec {
        CounterVec {
            ins: self.ins + o.ins,
            cyc: self.cyc + o.cyc,
            lst: self.lst + o.lst,
            l1_dcm: self.l1_dcm + o.l1_dcm,
            br_cn: self.br_cn + o.br_cn,
            msp: self.msp + o.msp,
        }
    }
}

impl AddAssign for CounterVec {
    fn add_assign(&mut self, o: CounterVec) {
        *self = *self + o;
    }
}

impl Sub for CounterVec {
    type Output = CounterVec;
    fn sub(self, o: CounterVec) -> CounterVec {
        CounterVec {
            ins: self.ins - o.ins,
            cyc: self.cyc - o.cyc,
            lst: self.lst - o.lst,
            l1_dcm: self.l1_dcm - o.l1_dcm,
            br_cn: self.br_cn - o.br_cn,
            msp: self.msp - o.msp,
        }
    }
}

impl Mul<f64> for CounterVec {
    type Output = CounterVec;
    fn mul(self, k: f64) -> CounterVec {
        CounterVec {
            ins: self.ins * k,
            cyc: self.cyc * k,
            lst: self.lst * k,
            l1_dcm: self.l1_dcm * k,
            br_cn: self.br_cn * k,
            msp: self.msp * k,
        }
    }
}

impl Div<f64> for CounterVec {
    type Output = CounterVec;
    fn div(self, k: f64) -> CounterVec {
        self * (1.0 / k)
    }
}

impl fmt::Display for CounterVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "INS={:.0} CYC={:.0} LST={:.0} L1_DCM={:.0} BR_CN={:.0} MSP={:.0}",
            self.ins, self.cyc, self.lst, self.l1_dcm, self.br_cn, self.msp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterVec {
        CounterVec::new(1000.0, 500.0, 300.0, 30.0, 100.0, 5.0)
    }

    #[test]
    fn array_round_trip() {
        let c = sample();
        assert_eq!(CounterVec::from_array(c.as_array()), c);
    }

    #[test]
    fn get_set_matches_fields() {
        let mut c = CounterVec::ZERO;
        for (i, m) in METRICS.iter().enumerate() {
            c.set(*m, (i + 1) as f64);
        }
        assert_eq!(c.ins, 1.0);
        assert_eq!(c.msp, 6.0);
        for (i, m) in METRICS.iter().enumerate() {
            assert_eq!(c.get(*m), (i + 1) as f64);
        }
    }

    #[test]
    fn derived_ratios() {
        let c = sample();
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.cmr() - 0.1).abs() < 1e-12);
        assert!((c.bmr() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ratios_of_zero_are_zero() {
        let c = CounterVec::ZERO;
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.cmr(), 0.0);
        assert_eq!(c.bmr(), 0.0);
    }

    #[test]
    fn relative_error_zero_for_self() {
        let c = sample();
        assert_eq!(c.mean_relative_error(&c), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        let c = sample();
        let doubled = c * 2.0;
        // Every metric is off by 100%.
        assert!((doubled.mean_relative_error(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_skips_zero_reference_metrics() {
        let reference = CounterVec::new(100.0, 100.0, 0.0, 0.0, 0.0, 0.0);
        let measured = CounterVec::new(110.0, 90.0, 5.0, 5.0, 5.0, 5.0);
        // Only INS and CYC contribute: (0.1 + 0.1) / 2.
        assert!((measured.mean_relative_error(&reference) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let c = sample();
        assert_eq!(c + CounterVec::ZERO, c);
        assert_eq!(c - c, CounterVec::ZERO);
        assert_eq!((c * 3.0) / 3.0, c);
        let mut acc = CounterVec::ZERO;
        acc += c;
        acc += c;
        assert_eq!(acc, c * 2.0);
    }

    #[test]
    fn metric_names_and_indices_are_stable() {
        let names: Vec<_> = METRICS.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["INS", "CYC", "LST", "L1_DCM", "BR_CN", "MSP"]);
        for (i, m) in METRICS.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn validity() {
        assert!(sample().is_valid());
        assert!(!(CounterVec::new(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0)).is_valid());
        assert!(!(CounterVec::new(f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0)).is_valid());
    }

    #[test]
    fn rounded_clamps_negatives() {
        let c = CounterVec::new(1.4, 1.6, -0.4, 2.5, 0.0, 0.49);
        let r = c.rounded();
        assert_eq!(r.as_array(), [1.0, 2.0, 0.0, 3.0, 0.0, 0.0]);
    }
}
