//! The three evaluation platforms of the paper's Table 2, and the resolved
//! (platform × MPI-flavor) [`Machine`] that the simulator runs on.
//!
//! | | Platform A | Platform B | Platform C |
//! |---|---|---|---|
//! | Processor | Xeon Scale 6248 | Xeon Phi 7210 | Xeon E5-2680 v4 |
//! | Cores/node | 20 × 2 | 64 | 14 × 2 |
//! | L1 I/D | 32 KB | 32 KB | 32 KB |
//! | L2 | 1024 KB | 256 KB | 256 KB |
//! | Frequency | 2.5 GHz | 1.3 GHz | 2.4 GHz |
//! | Network | Mellanox HDR | Intel OPA | None |
//!
//! The micro-architectural parameters not in Table 2 (issue width, penalties)
//! are set to publicly documented ballpark values for the respective cores:
//! Cascade Lake and Broadwell are 4-wide out-of-order parts; Knights Landing
//! is a 2-wide in-order-ish core with slow divides — which is exactly why the
//! paper's Figure 9 shows large original-time changes when moving from
//! platform A to platform B.

use crate::cpu::CpuModel;
use crate::flavor::MpiFlavor;
use crate::net::NetParams;

/// A hardware platform: one CPU model, a node width, and a fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    pub name: &'static str,
    pub cpu: CpuModel,
    /// Ranks per node; ranks are placed block-wise (`node = rank / cores_per_node`).
    pub cores_per_node: usize,
    /// Raw fabric parameters before flavor tuning. Single-node platforms
    /// still carry network numbers, but no rank pair ever uses them.
    pub net_base: NetParams,
    /// True when the platform has no interconnect (paper's platform C).
    pub single_node: bool,
}

impl Platform {
    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        if self.single_node {
            0
        } else {
            rank / self.cores_per_node
        }
    }

    /// Whether two ranks share a node (and thus the shared-memory path).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Maximum rank count this platform can host. Only the network-less
    /// platform C is limited (one node); clusters are treated as unbounded.
    pub fn max_ranks(&self) -> Option<usize> {
        if self.single_node {
            Some(self.cores_per_node)
        } else {
            None
        }
    }
}

/// Platform A — Intel Xeon Scale 6248 cluster, Mellanox HDR.
pub fn platform_a() -> Platform {
    Platform {
        name: "A",
        cpu: CpuModel {
            freq_ghz: 2.5,
            issue_width: 4.0,
            mem_ports: 2.0,
            fp_div_latency: 14.0,
            l1_size: 32.0 * 1024.0,
            line_size: 64.0,
            l2_size: 1024.0 * 1024.0,
            l2_hit_penalty: 12.0,
            mem_penalty: 190.0,
            mispredict_penalty: 16.0,
            noise_sigma: 0.02,
        },
        cores_per_node: 40,
        net_base: NetParams {
            latency_ns: 1000.0,
            bandwidth_bpns: 23.0, // HDR100-class effective bandwidth
            shm_latency_ns: 250.0,
            shm_bandwidth_bpns: 45.0,
            eager_threshold: 4096,
            rendezvous_extra_ns: 900.0,
            send_overhead_ns: 150.0,
            recv_overhead_ns: 150.0,
            collective_overhead_ns: 400.0,
        },
        single_node: false,
    }
}

/// Platform B — Intel Xeon Phi 7210 (Knights Landing) cluster, Intel OPA.
pub fn platform_b() -> Platform {
    Platform {
        name: "B",
        cpu: CpuModel {
            freq_ghz: 1.3,
            issue_width: 2.0,
            mem_ports: 2.0,
            fp_div_latency: 32.0,
            l1_size: 32.0 * 1024.0,
            line_size: 64.0,
            l2_size: 256.0 * 1024.0,
            l2_hit_penalty: 18.0,
            mem_penalty: 230.0,
            mispredict_penalty: 12.0,
            noise_sigma: 0.03,
        },
        cores_per_node: 64,
        net_base: NetParams {
            latency_ns: 1500.0,
            bandwidth_bpns: 12.0, // Omni-Path 100 effective bandwidth
            shm_latency_ns: 450.0,
            shm_bandwidth_bpns: 18.0,
            eager_threshold: 4096,
            rendezvous_extra_ns: 1200.0,
            send_overhead_ns: 350.0, // slow cores pay more software overhead
            recv_overhead_ns: 350.0,
            collective_overhead_ns: 900.0,
        },
        single_node: false,
    }
}

/// Platform C — Intel Xeon E5-2680 v4 single-node server (no network).
pub fn platform_c() -> Platform {
    Platform {
        name: "C",
        cpu: CpuModel {
            freq_ghz: 2.4,
            issue_width: 4.0,
            mem_ports: 2.0,
            fp_div_latency: 15.0,
            l1_size: 32.0 * 1024.0,
            line_size: 64.0,
            l2_size: 256.0 * 1024.0,
            l2_hit_penalty: 12.0,
            mem_penalty: 170.0,
            mispredict_penalty: 15.0,
            noise_sigma: 0.02,
        },
        cores_per_node: 28,
        net_base: NetParams {
            // Unused in practice (single node), kept finite for safety.
            latency_ns: 10_000.0,
            bandwidth_bpns: 1.0,
            shm_latency_ns: 300.0,
            shm_bandwidth_bpns: 35.0,
            eager_threshold: 4096,
            rendezvous_extra_ns: 700.0,
            send_overhead_ns: 160.0,
            recv_overhead_ns: 160.0,
            collective_overhead_ns: 420.0,
        },
        single_node: true,
    }
}

/// Look up a platform by its Table-2 letter.
pub fn platform_by_name(name: &str) -> Option<Platform> {
    match name {
        "A" | "a" => Some(platform_a()),
        "B" | "b" => Some(platform_b()),
        "C" | "c" => Some(platform_c()),
        _ => None,
    }
}

/// A platform paired with an MPI implementation: the complete execution
/// environment for a run. Holds the flavor-tuned network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    pub platform: Platform,
    pub flavor: MpiFlavor,
    pub net: NetParams,
}

impl Machine {
    pub fn new(platform: Platform, flavor: MpiFlavor) -> Machine {
        let net = flavor.tune(platform.net_base);
        Machine { platform, flavor, net }
    }

    /// Default environment of the paper's evaluation: platform A + OpenMPI.
    pub fn default_eval() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    pub fn cpu(&self) -> &CpuModel {
        &self.platform.cpu
    }

    /// Shorthand: `"A/openmpi"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.platform.name, self.flavor.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_frequencies() {
        assert_eq!(platform_a().cpu.freq_ghz, 2.5);
        assert_eq!(platform_b().cpu.freq_ghz, 1.3);
        assert_eq!(platform_c().cpu.freq_ghz, 2.4);
    }

    #[test]
    fn table2_caches() {
        for p in [platform_a(), platform_b(), platform_c()] {
            assert_eq!(p.cpu.l1_size, 32.0 * 1024.0);
        }
        assert_eq!(platform_a().cpu.l2_size, 1024.0 * 1024.0);
        assert_eq!(platform_b().cpu.l2_size, 256.0 * 1024.0);
        assert_eq!(platform_c().cpu.l2_size, 256.0 * 1024.0);
    }

    #[test]
    fn node_placement_is_blockwise() {
        let a = platform_a();
        assert_eq!(a.node_of(0), 0);
        assert_eq!(a.node_of(39), 0);
        assert_eq!(a.node_of(40), 1);
        assert!(a.same_node(0, 39));
        assert!(!a.same_node(39, 40));
    }

    #[test]
    fn platform_c_is_single_node() {
        let c = platform_c();
        assert_eq!(c.max_ranks(), Some(28));
        assert!(c.same_node(0, 27));
        assert_eq!(platform_a().max_ranks(), None);
    }

    #[test]
    fn machine_applies_flavor_tuning() {
        let m = Machine::new(platform_a(), MpiFlavor::Mvapich);
        assert_eq!(m.net.eager_threshold, 16384);
        assert!(m.net.latency_ns < platform_a().net_base.latency_ns);
        assert_eq!(m.label(), "A/mvapich");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(platform_by_name("A").unwrap().name, "A");
        assert_eq!(platform_by_name("b").unwrap().name, "B");
        assert!(platform_by_name("D").is_none());
    }
}
