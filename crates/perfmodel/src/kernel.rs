//! Abstract, platform-independent descriptions of computation kernels.
//!
//! A [`KernelDesc`] says *what* a stretch of computation does — how many
//! integer adds, floating divides, memory accesses, branches, and over what
//! working set — without saying how long it takes. A [`crate::CpuModel`]
//! turns it into the six Table-1 counters for a concrete processor.
//!
//! Both sides of the Siesta pipeline speak this language:
//!
//! * the workload skeletons (`siesta-workloads`) describe each compute phase
//!   of BT/CG/MG/... as a `KernelDesc`, standing in for the real numeric code;
//! * the 11 pre-designed proxy code blocks (paper Figure 2) are themselves
//!   `KernelDesc`s, so micro-benchmarking a block and replaying a synthesized
//!   proxy use exactly the same cost model as the original program.

/// Largest resident footprint a blocked loop keeps hot (see
/// [`KernelDesc::stencil`]).
pub const TILE_BYTES: f64 = 192.0 * 1024.0;

/// Micro-op mix of a computation kernel.
///
/// All op counts are per one execution of the kernel. Fractional values are
/// allowed (they arise from averaging and scaling); the CPU model works in
/// expectations anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDesc {
    /// Integer ALU operations (adds, shifts, compares feeding branches).
    pub int_alu: f64,
    /// Floating-point add/multiply operations (pipelined).
    pub fp_add: f64,
    /// Floating-point divides (long-latency, unpipelined).
    pub fp_div: f64,
    /// Memory loads.
    pub loads: f64,
    /// Memory stores.
    pub stores: f64,
    /// Conditional branches executed.
    pub branches: f64,
    /// Intrinsic misprediction probability of those branches, in `[0, 1]`.
    /// Data-dependent branches on random bits sit near 0.5; long regular
    /// loops sit near `1/trip_count`.
    pub mispredict_rate: f64,
    /// Bytes of memory the kernel touches repeatedly (its resident set).
    pub working_set: f64,
    /// Access stride in bytes. A stride of one cache line defeats spatial
    /// locality entirely; small strides amortize one miss over many accesses.
    pub stride: f64,
}

impl KernelDesc {
    pub const ZERO: KernelDesc = KernelDesc {
        int_alu: 0.0,
        fp_add: 0.0,
        fp_div: 0.0,
        loads: 0.0,
        stores: 0.0,
        branches: 0.0,
        mispredict_rate: 0.0,
        working_set: 0.0,
        stride: 8.0,
    };

    /// Total dynamic instruction count implied by the mix.
    pub fn instructions(&self) -> f64 {
        self.int_alu + self.fp_add + self.fp_div + self.loads + self.stores + self.branches
    }

    /// Scale every op count by `k` (working set and stride are *not* scaled:
    /// running a loop more times touches the same data more often, it does
    /// not enlarge the data).
    pub fn repeat(&self, k: f64) -> KernelDesc {
        KernelDesc {
            int_alu: self.int_alu * k,
            fp_add: self.fp_add * k,
            fp_div: self.fp_div * k,
            loads: self.loads * k,
            stores: self.stores * k,
            branches: self.branches * k,
            mispredict_rate: self.mispredict_rate,
            working_set: self.working_set,
            stride: self.stride,
        }
    }

    /// Combine two kernels run back to back. Working sets do not add (they
    /// generally overlap in practice); we keep the larger one and a
    /// load/store-weighted stride.
    pub fn then(&self, other: &KernelDesc) -> KernelDesc {
        let w_self = self.loads + self.stores;
        let w_other = other.loads + other.stores;
        let stride = if w_self + w_other > 0.0 {
            (self.stride * w_self + other.stride * w_other) / (w_self + w_other)
        } else {
            self.stride
        };
        KernelDesc {
            int_alu: self.int_alu + other.int_alu,
            fp_add: self.fp_add + other.fp_add,
            fp_div: self.fp_div + other.fp_div,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            branches: self.branches + other.branches,
            mispredict_rate: if self.branches + other.branches > 0.0 {
                (self.mispredict_rate * self.branches + other.mispredict_rate * other.branches)
                    / (self.branches + other.branches)
            } else {
                0.0
            },
            working_set: self.working_set.max(other.working_set),
            stride,
        }
    }

    /// A dense floating-point stencil-like kernel: `points` grid points, each
    /// with `flops_per_point` adds/multiplies, streaming reads/writes over
    /// `bytes` of state. This is the workhorse for the numeric phases of the
    /// NPB / SWEEP3D / FLASH skeletons.
    ///
    /// The *resident* working set is capped at a blocked-loop tile (dense
    /// solvers walk planes and tiles, not their whole state at once), which
    /// keeps the kernels L2-class memory-bound rather than DRAM-bound —
    /// matching the locality of the real NPB codes.
    pub fn stencil(points: f64, flops_per_point: f64, bytes: f64) -> KernelDesc {
        let fp = points * flops_per_point;
        KernelDesc {
            int_alu: points * 4.0, // index arithmetic
            fp_add: fp,
            fp_div: 0.0,
            loads: points * (flops_per_point * 0.5).max(1.0),
            stores: points,
            // Loop control scales with the body size: compiled numeric
            // code retires roughly one branch per ~32 floating ops.
            branches: points * (1.0 + flops_per_point / 32.0) + 16.0,
            mispredict_rate: 0.01,
            working_set: bytes.min(TILE_BYTES),
            stride: 8.0,
        }
    }

    /// A divide-heavy kernel (e.g. Gauss elimination inner steps in BT/SP).
    pub fn divide_heavy(points: f64, divs_per_point: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            int_alu: points * 2.0,
            fp_add: points * divs_per_point * 2.0,
            fp_div: points * divs_per_point,
            loads: points * 2.0,
            stores: points,
            branches: points * 0.5 + 8.0,
            mispredict_rate: 0.01,
            working_set: bytes.min(TILE_BYTES),
            stride: 8.0,
        }
    }

    /// An integer, branchy, cache-unfriendly kernel (e.g. IS key ranking).
    /// The scatter table is capped at the tile bound like the dense kernels
    /// (bucket sorts rank within cache-sized partitions).
    pub fn integer_scatter(keys: f64, table_bytes: f64) -> KernelDesc {
        KernelDesc {
            int_alu: keys * 3.0,
            fp_add: 0.0,
            fp_div: 0.0,
            loads: keys * 2.0,
            stores: keys,
            branches: keys,
            mispredict_rate: 0.25,
            working_set: table_bytes.min(TILE_BYTES),
            // Mixed access: sequential key reads, random table writes —
            // roughly half the accesses start a new line.
            stride: 32.0,
        }
    }

    /// A tiny bookkeeping kernel, used for the short gaps between MPI calls
    /// that real applications always have (argument marshalling, loop
    /// control around a communication phase, ...).
    pub fn bookkeeping(ops: f64) -> KernelDesc {
        KernelDesc {
            int_alu: ops,
            fp_add: 0.0,
            fp_div: 0.0,
            loads: ops * 0.4,
            stores: ops * 0.2,
            branches: ops * 0.2 + 4.0,
            mispredict_rate: 0.05,
            working_set: 4096.0,
            stride: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_total_is_sum_of_classes() {
        let k = KernelDesc {
            int_alu: 10.0,
            fp_add: 20.0,
            fp_div: 5.0,
            loads: 7.0,
            stores: 3.0,
            branches: 5.0,
            mispredict_rate: 0.1,
            working_set: 1024.0,
            stride: 8.0,
        };
        assert_eq!(k.instructions(), 50.0);
    }

    #[test]
    fn repeat_scales_ops_not_working_set() {
        let k = KernelDesc::stencil(100.0, 4.0, 65536.0);
        let r = k.repeat(3.0);
        assert!((r.fp_add - 3.0 * k.fp_add).abs() < 1e-9);
        assert!((r.loads - 3.0 * k.loads).abs() < 1e-9);
        assert_eq!(r.working_set, k.working_set);
        assert_eq!(r.mispredict_rate, k.mispredict_rate);
    }

    #[test]
    fn then_adds_ops_and_keeps_max_working_set() {
        let a = KernelDesc::stencil(100.0, 4.0, 65536.0);
        let b = KernelDesc::integer_scatter(50.0, (1 << 20) as f64);
        let c = a.then(&b);
        assert!((c.instructions() - (a.instructions() + b.instructions())).abs() < 1e-9);
        // Working sets cap at the blocked-loop tile bound.
        assert_eq!(c.working_set, TILE_BYTES);
        // Blended misprediction rate lies between the two inputs.
        assert!(c.mispredict_rate > a.mispredict_rate);
        assert!(c.mispredict_rate < b.mispredict_rate);
    }

    #[test]
    fn then_with_zero_is_identity_on_ops() {
        let a = KernelDesc::divide_heavy(10.0, 2.0, 4096.0);
        let c = a.then(&KernelDesc::ZERO);
        assert!((c.instructions() - a.instructions()).abs() < 1e-9);
    }

    #[test]
    fn constructors_produce_sane_mixes() {
        let s = KernelDesc::stencil(1000.0, 8.0, 1048576.0);
        assert!(s.fp_add > 0.0 && s.fp_div == 0.0);
        let d = KernelDesc::divide_heavy(1000.0, 1.0, 65536.0);
        assert!(d.fp_div > 0.0);
        let i = KernelDesc::integer_scatter(1000.0, 4194304.0);
        assert!(i.fp_add == 0.0 && i.mispredict_rate > 0.1);
        let b = KernelDesc::bookkeeping(100.0);
        assert!(b.instructions() > 100.0);
    }
}
