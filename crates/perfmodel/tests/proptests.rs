//! Property-based tests for the hardware models.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_perfmodel::{
    platform_a, platform_b, platform_c, KernelDesc, Machine, MpiFlavor,
};

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        0.0f64..1e6, // int_alu
        0.0f64..1e6, // fp_add
        0.0f64..1e4, // fp_div
        0.0f64..1e6, // loads
        0.0f64..1e5, // stores
        0.0f64..1e5, // branches
        0.0f64..1.0, // mispredict_rate
        0.0f64..1e7, // working_set
        8.0f64..128.0, // stride
    )
        .prop_map(
            |(int_alu, fp_add, fp_div, loads, stores, branches, mr, ws, stride)| KernelDesc {
                int_alu,
                fp_add,
                fp_div,
                loads,
                stores,
                branches,
                mispredict_rate: mr,
                working_set: ws,
                stride,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Counters are always valid (finite, non-negative) and architectural
    /// counts match the kernel exactly on every platform.
    #[test]
    fn counters_are_valid_everywhere(k in arb_kernel()) {
        for platform in [platform_a(), platform_b(), platform_c()] {
            let c = platform.cpu.counters(&k);
            prop_assert!(c.is_valid());
            prop_assert!((c.ins - k.instructions()).abs() < 1e-6);
            prop_assert!((c.lst - (k.loads + k.stores)).abs() < 1e-6);
            prop_assert!(c.msp <= c.br_cn + 1e-9);
            prop_assert!(c.l1_dcm <= c.lst + 1e-9);
        }
    }

    /// More work never costs fewer cycles (monotonicity in repetition).
    #[test]
    fn cycles_monotone_in_repetitions(k in arb_kernel(), r in 1.0f64..20.0) {
        let cpu = platform_a().cpu;
        let once = cpu.counters(&k).cyc;
        let many = cpu.counters(&k.repeat(r)).cyc;
        prop_assert!(many >= once * 0.999, "repeat {r}: {many} < {once}");
    }

    /// A larger working set never reduces cache misses (other things equal).
    #[test]
    fn misses_monotone_in_working_set(k in arb_kernel(), grow in 1.0f64..50.0) {
        let cpu = platform_a().cpu;
        let small = cpu.counters(&k).l1_dcm;
        let mut big_k = k;
        big_k.working_set *= grow;
        let big = cpu.counters(&big_k).l1_dcm;
        prop_assert!(big >= small * 0.999, "ws×{grow}: {big} < {small}");
    }

    /// Noisy readings stay within a few sigma of the exact values and are
    /// reproducible per seed.
    #[test]
    fn noise_is_bounded_and_deterministic(k in arb_kernel(), seed in any::<u64>()) {
        let cpu = platform_a().cpu;
        let exact = cpu.counters(&k);
        let a = cpu.counters_noisy(&k, seed);
        let b = cpu.counters_noisy(&k, seed);
        prop_assert_eq!(a, b);
        prop_assert!(a.is_valid());
        for (x, e) in a.as_array().iter().zip(exact.as_array().iter()) {
            if *e > 0.0 {
                // Sum-of-uniforms noise is hard-bounded by ±2·√3·σ.
                prop_assert!((x - e).abs() / e <= 2.0 * 3.0f64.sqrt() * cpu.noise_sigma + 1e-12);
            } else {
                prop_assert_eq!(*x, 0.0);
            }
        }
    }

    /// The KNL platform is never faster than platform A for the same kernel.
    #[test]
    fn knl_is_never_faster(k in arb_kernel()) {
        let ta = platform_a().cpu.kernel_time_ns(&k);
        let tb = platform_b().cpu.kernel_time_ns(&k);
        prop_assert!(tb >= ta * 0.999, "B faster than A: {tb} < {ta}");
    }

    /// Flavor tuning keeps network parameters physical (positive, finite).
    #[test]
    fn flavored_networks_are_physical(bytes in 0usize..100_000_000) {
        for platform in [platform_a(), platform_b()] {
            for flavor in MpiFlavor::ALL {
                let m = Machine::new(platform, flavor);
                for same_node in [false, true] {
                    let t = m.net.transfer_ns(bytes, same_node);
                    prop_assert!(t.is_finite() && t > 0.0);
                    let d = m.net.blocking_delivery_ns(bytes, same_node);
                    prop_assert!(d >= t);
                }
            }
        }
    }

    /// Transfer time is monotone in message size for every flavor.
    #[test]
    fn transfer_monotone_in_size(a in 0usize..50_000_000, b in 0usize..50_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for flavor in MpiFlavor::ALL {
            let m = Machine::new(platform_a(), flavor);
            prop_assert!(m.net.transfer_ns(lo, false) <= m.net.transfer_ns(hi, false));
            prop_assert!(
                m.net.blocking_delivery_ns(lo, false) <= m.net.blocking_delivery_ns(hi, false) + 1e-9
            );
        }
    }
}
