//! Binary wire codec for trace data (`.siestatrace` files) and the shared
//! primitives other crates' formats build on.
//!
//! The paper's workflow separates *collection* (PMPI tracing on the
//! production system) from *processing* (merging, grammar extraction,
//! synthesis — possibly offline). Persisting the merged [`GlobalTrace`]
//! makes that split real: `siesta trace --out app.siestatrace` on one
//! machine, `siesta synthesize --from-trace app.siestatrace` anywhere.

use siesta_perfmodel::CounterVec;

use crate::event::{CommEvent, ComputeStats, EventRecord};
use crate::merge::GlobalTrace;

const MAGIC: &[u8; 8] = b"SIESTR1\0";

/// Decoding failure (shared by every Siesta wire format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    BadMagic,
    UnsupportedVersion(u8),
    Truncated,
    BadTag(u8),
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (wrong file type)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            WireError::Truncated => write!(f, "file truncated"),
            WireError::BadTag(t) => write!(f, "corrupt file (unknown tag {t})"),
            WireError::BadString => write!(f, "corrupt file (invalid UTF-8)"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer { buf: Vec::with_capacity(4096) }
    }
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub fn u64s(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
    pub fn u32s(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
    pub fn counters(&mut self, c: &CounterVec) {
        for v in c.as_array() {
            self.f64(v);
        }
    }
}

/// Little-endian byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| WireError::BadString)
    }
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }
    pub fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u32()).collect()
    }
    pub fn counters(&mut self) -> Result<CounterVec, WireError> {
        let mut a = [0.0f64; 6];
        for v in a.iter_mut() {
            *v = self.f64()?;
        }
        Ok(CounterVec::from_array(a))
    }
}

/// Encode one normalized communication event.
pub fn put_event(w: &mut Writer, e: &CommEvent) {
    match e {
        CommEvent::Send { rel, tag, bytes, comm } => {
            w.u8(0);
            w.u32(*rel);
            w.i32(*tag);
            w.u64(*bytes);
            w.u32(*comm);
        }
        CommEvent::Recv { rel, tag, bytes, comm } => {
            w.u8(1);
            w.u32(*rel);
            w.i32(*tag);
            w.u64(*bytes);
            w.u32(*comm);
        }
        CommEvent::Isend { rel, tag, bytes, comm, req } => {
            w.u8(2);
            w.u32(*rel);
            w.i32(*tag);
            w.u64(*bytes);
            w.u32(*comm);
            w.u32(*req);
        }
        CommEvent::Irecv { rel, tag, bytes, comm, req } => {
            w.u8(3);
            w.u32(*rel);
            w.i32(*tag);
            w.u64(*bytes);
            w.u32(*comm);
            w.u32(*req);
        }
        CommEvent::Wait { req } => {
            w.u8(4);
            w.u32(*req);
        }
        CommEvent::Waitall { reqs } => {
            w.u8(5);
            w.u32s(reqs);
        }
        CommEvent::Sendrecv {
            dest_rel,
            send_tag,
            send_bytes,
            src_rel,
            recv_tag,
            recv_bytes,
            comm,
        } => {
            w.u8(6);
            w.u32(*dest_rel);
            w.i32(*send_tag);
            w.u64(*send_bytes);
            w.u32(*src_rel);
            w.i32(*recv_tag);
            w.u64(*recv_bytes);
            w.u32(*comm);
        }
        CommEvent::Barrier { comm } => {
            w.u8(7);
            w.u32(*comm);
        }
        CommEvent::Bcast { comm, root, bytes } => {
            w.u8(8);
            w.u32(*comm);
            w.u32(*root);
            w.u64(*bytes);
        }
        CommEvent::Reduce { comm, root, bytes } => {
            w.u8(9);
            w.u32(*comm);
            w.u32(*root);
            w.u64(*bytes);
        }
        CommEvent::Allreduce { comm, bytes } => {
            w.u8(10);
            w.u32(*comm);
            w.u64(*bytes);
        }
        CommEvent::Allgather { comm, bytes } => {
            w.u8(11);
            w.u32(*comm);
            w.u64(*bytes);
        }
        CommEvent::Alltoall { comm, bytes_per_peer } => {
            w.u8(12);
            w.u32(*comm);
            w.u64(*bytes_per_peer);
        }
        CommEvent::Alltoallv { comm, send_counts, recv_counts } => {
            w.u8(13);
            w.u32(*comm);
            w.u64s(send_counts);
            w.u64s(recv_counts);
        }
        CommEvent::Gather { comm, root, bytes } => {
            w.u8(14);
            w.u32(*comm);
            w.u32(*root);
            w.u64(*bytes);
        }
        CommEvent::Scatter { comm, root, bytes } => {
            w.u8(15);
            w.u32(*comm);
            w.u32(*root);
            w.u64(*bytes);
        }
        CommEvent::CommSplit { parent, color, key, result } => {
            w.u8(16);
            w.u32(*parent);
            w.i64(*color);
            w.i64(*key);
            match result {
                Some(r) => {
                    w.u8(1);
                    w.u32(*r);
                }
                None => w.u8(0),
            }
        }
        CommEvent::CommDup { parent, result } => {
            w.u8(17);
            w.u32(*parent);
            w.u32(*result);
        }
        CommEvent::CommFree { comm } => {
            w.u8(18);
            w.u32(*comm);
        }
        CommEvent::Gatherv { comm, root, counts } => {
            w.u8(19);
            w.u32(*comm);
            w.u32(*root);
            w.u64s(counts);
        }
        CommEvent::Scatterv { comm, root, counts } => {
            w.u8(20);
            w.u32(*comm);
            w.u32(*root);
            w.u64s(counts);
        }
        CommEvent::Scan { comm, bytes } => {
            w.u8(21);
            w.u32(*comm);
            w.u64(*bytes);
        }
        CommEvent::ReduceScatterBlock { comm, bytes_per_rank } => {
            w.u8(22);
            w.u32(*comm);
            w.u64(*bytes_per_rank);
        }
    }
}

/// Decode one normalized communication event.
pub fn get_event(r: &mut Reader) -> Result<CommEvent, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => CommEvent::Send { rel: r.u32()?, tag: r.i32()?, bytes: r.u64()?, comm: r.u32()? },
        1 => CommEvent::Recv { rel: r.u32()?, tag: r.i32()?, bytes: r.u64()?, comm: r.u32()? },
        2 => CommEvent::Isend {
            rel: r.u32()?,
            tag: r.i32()?,
            bytes: r.u64()?,
            comm: r.u32()?,
            req: r.u32()?,
        },
        3 => CommEvent::Irecv {
            rel: r.u32()?,
            tag: r.i32()?,
            bytes: r.u64()?,
            comm: r.u32()?,
            req: r.u32()?,
        },
        4 => CommEvent::Wait { req: r.u32()? },
        5 => CommEvent::Waitall { reqs: r.u32s()? },
        6 => CommEvent::Sendrecv {
            dest_rel: r.u32()?,
            send_tag: r.i32()?,
            send_bytes: r.u64()?,
            src_rel: r.u32()?,
            recv_tag: r.i32()?,
            recv_bytes: r.u64()?,
            comm: r.u32()?,
        },
        7 => CommEvent::Barrier { comm: r.u32()? },
        8 => CommEvent::Bcast { comm: r.u32()?, root: r.u32()?, bytes: r.u64()? },
        9 => CommEvent::Reduce { comm: r.u32()?, root: r.u32()?, bytes: r.u64()? },
        10 => CommEvent::Allreduce { comm: r.u32()?, bytes: r.u64()? },
        11 => CommEvent::Allgather { comm: r.u32()?, bytes: r.u64()? },
        12 => CommEvent::Alltoall { comm: r.u32()?, bytes_per_peer: r.u64()? },
        13 => CommEvent::Alltoallv {
            comm: r.u32()?,
            send_counts: r.u64s()?,
            recv_counts: r.u64s()?,
        },
        14 => CommEvent::Gather { comm: r.u32()?, root: r.u32()?, bytes: r.u64()? },
        15 => CommEvent::Scatter { comm: r.u32()?, root: r.u32()?, bytes: r.u64()? },
        16 => {
            let parent = r.u32()?;
            let color = r.i64()?;
            let key = r.i64()?;
            let result = if r.u8()? == 1 { Some(r.u32()?) } else { None };
            CommEvent::CommSplit { parent, color, key, result }
        }
        17 => CommEvent::CommDup { parent: r.u32()?, result: r.u32()? },
        18 => CommEvent::CommFree { comm: r.u32()? },
        19 => CommEvent::Gatherv { comm: r.u32()?, root: r.u32()?, counts: r.u64s()? },
        20 => CommEvent::Scatterv { comm: r.u32()?, root: r.u32()?, counts: r.u64s()? },
        21 => CommEvent::Scan { comm: r.u32()?, bytes: r.u64()? },
        22 => CommEvent::ReduceScatterBlock { comm: r.u32()?, bytes_per_rank: r.u64()? },
        t => return Err(WireError::BadTag(t)),
    })
}

/// Serialize a merged trace.
pub fn trace_to_bytes(t: &GlobalTrace) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u8(1); // version
    w.u32(t.nranks as u32);
    w.u32(t.merge_rounds);
    w.u64(t.raw_bytes as u64);
    w.u32(t.table.len() as u32);
    for rec in &t.table {
        match rec {
            EventRecord::Comm(e) => {
                w.u8(0);
                put_event(&mut w, e);
            }
            EventRecord::Compute(s) => {
                w.u8(1);
                w.counters(&s.repr);
                w.counters(&s.sum);
                w.u64(s.count);
            }
        }
    }
    w.u32(t.seqs.len() as u32);
    for seq in &t.seqs {
        w.u32s(seq);
    }
    w.buf
}

/// Deserialize a merged trace.
pub fn trace_from_bytes(bytes: &[u8]) -> Result<GlobalTrace, WireError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != 1 {
        return Err(WireError::UnsupportedVersion(version));
    }
    let nranks = r.u32()? as usize;
    let merge_rounds = r.u32()?;
    let raw_bytes = r.u64()? as usize;
    let n_table = r.u32()? as usize;
    let mut table = Vec::with_capacity(n_table);
    for _ in 0..n_table {
        match r.u8()? {
            0 => table.push(EventRecord::Comm(get_event(&mut r)?)),
            1 => {
                let repr = r.counters()?;
                let sum = r.counters()?;
                let count = r.u64()?;
                table.push(EventRecord::Compute(ComputeStats { repr, sum, count }));
            }
            t => return Err(WireError::BadTag(t)),
        }
    }
    let n_seqs = r.u32()? as usize;
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        seqs.push(r.u32s()?);
    }
    Ok(GlobalTrace { nranks, table, seqs, raw_bytes, merge_rounds })
}

/// Save a merged trace to a file in the columnar store format
/// ([`crate::store`]). [`load_trace`] reads both formats.
pub fn save_trace(t: &GlobalTrace, path: &std::path::Path) -> std::io::Result<()> {
    crate::store::write_store(t, path)
}

/// Load a merged trace from a file, auto-detecting the format by magic:
/// the columnar store (`SIESTC1`) or the legacy row codec (`SIESTR1`).
pub fn load_trace(path: &std::path::Path) -> Result<GlobalTrace, Box<dyn std::error::Error>> {
    if crate::store::sniff_store(path)? {
        let store = crate::store::TraceStore::open(path)?;
        return Ok(store.to_global_trace()?);
    }
    let bytes = std::fs::read(path)?;
    Ok(trace_from_bytes(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GlobalTrace {
        GlobalTrace {
            nranks: 3,
            table: vec![
                EventRecord::Comm(CommEvent::Sendrecv {
                    dest_rel: 1,
                    send_tag: 3,
                    send_bytes: 4096,
                    src_rel: 2,
                    recv_tag: 3,
                    recv_bytes: 4096,
                    comm: 0,
                }),
                EventRecord::Compute(ComputeStats {
                    repr: CounterVec::new(1.5, 2.5, 3.5, 4.5, 5.5, 6.5),
                    sum: CounterVec::new(3.0, 5.0, 7.0, 9.0, 11.0, 13.0),
                    count: 2,
                }),
                EventRecord::Comm(CommEvent::Scan { comm: 0, bytes: 8 }),
            ],
            seqs: vec![vec![0, 1, 2], vec![1, 0], vec![]],
            raw_bytes: 12345,
            merge_rounds: 2,
        }
    }

    #[test]
    fn trace_round_trips() {
        let t = sample();
        let bytes = trace_to_bytes(&t);
        let u = trace_from_bytes(&bytes).expect("decode");
        assert_eq!(t.nranks, u.nranks);
        assert_eq!(t.merge_rounds, u.merge_rounds);
        assert_eq!(t.raw_bytes, u.raw_bytes);
        assert_eq!(t.seqs, u.seqs);
        assert_eq!(format!("{:?}", t.table), format!("{:?}", u.table));
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        assert!(matches!(
            trace_from_bytes(b"SIESTA1\0garbage"),
            Err(WireError::BadMagic)
        ));
        let bytes = trace_to_bytes(&sample());
        for cut in [0usize, 8, 9, bytes.len() - 2] {
            assert!(trace_from_bytes(&bytes[..cut]).is_err());
        }
    }
}
