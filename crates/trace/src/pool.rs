//! Free-number pools for handle normalization (paper Section 2.2).
//!
//! `MPI_Request` and `MPI_Comm` values are "randomly determined at runtime
//! ... and difficult to be compressed". The paper's fix: "maintain a pool of
//! free numbers, starting from zero"; allocate the smallest unused number
//! when a handle appears, return it to the pool when the handle is released.
//! Two processes doing the same logical sequence of operations then produce
//! byte-identical records.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// Lowest-free-number allocator.
#[derive(Debug, Default)]
pub struct FreePool {
    next: u32,
    freed: BinaryHeap<Reverse<u32>>,
}

impl FreePool {
    pub fn new() -> FreePool {
        FreePool::default()
    }

    /// Allocate the smallest free number.
    pub fn alloc(&mut self) -> u32 {
        if let Some(Reverse(n)) = self.freed.pop() {
            n
        } else {
            let n = self.next;
            self.next += 1;
            n
        }
    }

    /// Return a number to the pool.
    pub fn release(&mut self, n: u32) {
        debug_assert!(n < self.next, "releasing a never-allocated number");
        self.freed.push(Reverse(n));
    }

    /// Numbers currently live.
    pub fn live(&self) -> usize {
        self.next as usize - self.freed.len()
    }
}

/// Maps volatile runtime handles to stable pool numbers.
#[derive(Debug, Default)]
pub struct HandleMap<K: Eq + Hash + Copy> {
    pool: FreePool,
    map: HashMap<K, u32>,
}

impl<K: Eq + Hash + Copy> HandleMap<K> {
    pub fn new() -> HandleMap<K> {
        HandleMap { pool: FreePool::new(), map: HashMap::new() }
    }

    /// Pre-assign a handle (e.g. `MPI_COMM_WORLD` → 0).
    pub fn preassign(&mut self, handle: K) -> u32 {
        let id = self.pool.alloc();
        self.map.insert(handle, id);
        id
    }

    /// Normalize a newly created handle.
    pub fn bind(&mut self, handle: K) -> u32 {
        debug_assert!(!self.map.contains_key(&handle), "handle bound twice");
        let id = self.pool.alloc();
        self.map.insert(handle, id);
        id
    }

    /// Look up a live handle.
    pub fn get(&self, handle: K) -> Option<u32> {
        self.map.get(&handle).copied()
    }

    /// Release a handle, returning its pool number to the free list.
    pub fn unbind(&mut self, handle: K) -> Option<u32> {
        let id = self.map.remove(&handle)?;
        self.pool.release(id);
        Some(id)
    }

    pub fn live(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_allocates_smallest_free() {
        let mut p = FreePool::new();
        assert_eq!(p.alloc(), 0);
        assert_eq!(p.alloc(), 1);
        assert_eq!(p.alloc(), 2);
        p.release(1);
        p.release(0);
        // Smallest freed first, regardless of release order.
        assert_eq!(p.alloc(), 0);
        assert_eq!(p.alloc(), 1);
        assert_eq!(p.alloc(), 3);
        assert_eq!(p.live(), 4);
    }

    #[test]
    fn handle_map_normalizes_arbitrary_values() {
        // Two "runs" whose runtime handle values differ produce the same
        // normalized ids for the same logical sequence.
        let runs = [[0xdeadbeefusize, 0x1234, 0x9999], [77, 3, 500_000]];
        let mut normalized = Vec::new();
        for handles in runs {
            let mut m: HandleMap<usize> = HandleMap::new();
            let a = m.bind(handles[0]);
            let b = m.bind(handles[1]);
            m.unbind(handles[0]);
            let c = m.bind(handles[2]);
            normalized.push((a, b, c));
        }
        assert_eq!(normalized[0], normalized[1]);
        assert_eq!(normalized[0], (0, 1, 0)); // slot 0 reused after release
    }

    #[test]
    fn unbind_unknown_returns_none() {
        let mut m: HandleMap<u64> = HandleMap::new();
        assert_eq!(m.unbind(42), None);
        m.preassign(1);
        assert_eq!(m.get(1), Some(0));
        assert_eq!(m.live(), 1);
    }
}
