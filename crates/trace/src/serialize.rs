//! Byte-size models for trace records and tables.
//!
//! The paper's Table 3 compares uncompressed trace size against `size_C`
//! (grammar + tables). We model a compact binary trace format: every record
//! carries a timestamp and a function id, plus 4 bytes per scalar parameter
//! and 8 bytes per vector element; computation records carry the six 64-bit
//! counters.

use crate::event::{CommEvent, EventRecord};

/// Per-record fixed header: 8-byte timestamp + 2-byte function id +
/// 2 bytes of flags.
const HEADER: usize = 12;

/// Size of one raw communication record.
pub fn comm_record_bytes(e: &CommEvent) -> usize {
    let params = match e {
        CommEvent::Send { .. } | CommEvent::Recv { .. } => 4 * 4,
        CommEvent::Isend { .. } | CommEvent::Irecv { .. } => 5 * 4,
        CommEvent::Wait { .. } => 4,
        CommEvent::Waitall { reqs } => 4 + 4 * reqs.len(),
        CommEvent::Sendrecv { .. } => 7 * 4,
        CommEvent::Barrier { .. } => 4,
        CommEvent::Bcast { .. }
        | CommEvent::Reduce { .. }
        | CommEvent::Gather { .. }
        | CommEvent::Scatter { .. } => 3 * 4,
        CommEvent::Allreduce { .. }
        | CommEvent::Allgather { .. }
        | CommEvent::Alltoall { .. } => 2 * 4,
        CommEvent::Alltoallv { send_counts, recv_counts, .. } => {
            4 + 8 * (send_counts.len() + recv_counts.len())
        }
        CommEvent::Gatherv { counts, .. } | CommEvent::Scatterv { counts, .. } => {
            2 * 4 + 8 * counts.len()
        }
        CommEvent::Scan { .. } | CommEvent::ReduceScatterBlock { .. } => 2 * 4,
        CommEvent::CommSplit { .. } => 4 * 4,
        CommEvent::CommDup { .. } => 2 * 4,
        CommEvent::CommFree { .. } => 4,
    };
    HEADER + params
}

/// Size of one raw computation record (six 64-bit counters).
pub fn compute_record_bytes() -> usize {
    HEADER + 6 * 8
}

/// Size of a terminal-table entry in the exported grammar file.
pub fn table_entry_bytes(e: &EventRecord) -> usize {
    match e {
        EventRecord::Comm(c) => comm_record_bytes(c),
        // Compute terminal: the six mean counters (the proxy search target).
        EventRecord::Compute(_) => HEADER + 6 * 8,
    }
}

/// Size of a whole terminal table.
pub fn table_bytes(table: &[EventRecord]) -> usize {
    table.iter().map(table_entry_bytes).sum()
}

/// Bytes of one serialized run-length grammar symbol: 4-byte id +
/// 4-byte exponent.
pub const GRAMMAR_SYM_BYTES: usize = 8;

/// Bytes per rank-list range in merged main rules.
pub const RANK_RANGE_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ComputeStats;
    use siesta_perfmodel::CounterVec;

    #[test]
    fn record_sizes_are_plausible() {
        let send = CommEvent::Send { rel: 1, tag: 0, bytes: 64, comm: 0 };
        assert_eq!(comm_record_bytes(&send), 12 + 16);
        assert_eq!(compute_record_bytes(), 12 + 48);
        let wa = CommEvent::Waitall { reqs: vec![0, 1, 2] };
        assert_eq!(comm_record_bytes(&wa), 12 + 4 + 12);
    }

    #[test]
    fn alltoallv_scales_with_comm_size() {
        let small = CommEvent::Alltoallv {
            comm: 0,
            send_counts: vec![1; 4],
            recv_counts: vec![1; 4],
        };
        let large = CommEvent::Alltoallv {
            comm: 0,
            send_counts: vec![1; 64],
            recv_counts: vec![1; 64],
        };
        assert!(comm_record_bytes(&large) > 10 * comm_record_bytes(&small));
    }

    #[test]
    fn table_bytes_sums_entries() {
        let t = vec![
            EventRecord::Comm(CommEvent::Barrier { comm: 0 }),
            EventRecord::Compute(ComputeStats::new(CounterVec::ZERO)),
        ];
        assert_eq!(table_bytes(&t), table_entry_bytes(&t[0]) + table_entry_bytes(&t[1]));
    }
}
