//! Zero-copy columnar trace store (`.siestatrace`, format `SIESTC1`).
//!
//! The row-oriented codec in [`crate::wire`] decodes every event on every
//! load — fine for the proxy artifacts, hopeless for multi-GB traces that
//! replay and baseline comparison re-read many times. This store lays a
//! merged trace out the way readers consume it, following the renacer
//! tracing exemplar (hash-interned ids, mmap-backed logs):
//!
//! * **Struct-of-arrays event table.** One `u8` kind/tag column and one
//!   `u64` payload-reference column (offset ≪ 32 | length into a payload
//!   pool), instead of variable-length rows. Scanning kinds never touches
//!   payload bytes.
//! * **Hash-interned payload pool.** Payload bytes are deduped through a
//!   `siesta-hash` u64 content index before writing — equal payloads
//!   (e.g. mirrored send/recv bodies) share pool storage.
//! * **Chunked sequence append.** Per-rank id sequences are appended as
//!   independent chunks (`rank`, `count`, FxHash checksum, raw
//!   little-endian `u32` ids, 4-byte aligned). A streaming producer emits
//!   chunks as buffers fill; a rank's sequence may span any number of
//!   chunks.
//! * **mmap-able.** [`TraceStore::open`] maps the file (falling back to a
//!   heap read where mapping is unavailable) and hands out chunk id
//!   slices **without deserialization**: on little-endian hosts with the
//!   mapping 4-byte aligned the `&[u32]` view is a pointer cast, checked
//!   and with a decode fallback, so a malformed file can reject but never
//!   produce UB.
//!
//! Every structural field is validated at open time — bounds, markers,
//! per-chunk checksums — so corrupt or truncated files fail with a
//! [`StoreError`] before any data is served.

use std::borrow::Cow;
use std::hash::Hasher;
use std::io::{self, Write};
use std::path::Path;

use siesta_hash::{fx_map_with_capacity, FxHashMap, FxHasher};

use crate::event::{ComputeStats, EventRecord};
use crate::merge::GlobalTrace;
use crate::wire::{get_event, put_event, Reader, WireError, Writer};

pub const STORE_MAGIC: &[u8; 8] = b"SIESTC1\0";
const STORE_VERSION: u32 = 1;
const HEADER_BYTES: usize = 32;
const CHUNK_HEADER_BYTES: usize = 16;
const FOOTER_BYTES: usize = 16;
const CHUNK_MARKER: u32 = u32::from_le_bytes(*b"CHNK");
const FOOTER_MARKER: u32 = u32::from_le_bytes(*b"FOTR");
/// Kind-column value for compute events (comm events use their wire tag).
const KIND_COMPUTE: u8 = 0xFF;
/// Ids per chunk when writing a whole sequence at once.
pub const DEFAULT_CHUNK_IDS: usize = 1 << 16;

/// Columnar-store decode/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    Wire(WireError),
    BadHeader(&'static str),
    BadChunk { index: usize, reason: &'static str },
    ChecksumMismatch { index: usize },
    BadFooter(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Wire(e) => write!(f, "{e}"),
            StoreError::BadHeader(why) => write!(f, "corrupt store header: {why}"),
            StoreError::BadChunk { index, reason } => {
                write!(f, "corrupt chunk {index}: {reason}")
            }
            StoreError::ChecksumMismatch { index } => {
                write!(f, "chunk {index} checksum mismatch")
            }
            StoreError::BadFooter(why) => write!(f, "corrupt store footer: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        StoreError::Wire(e)
    }
}

fn fx_checksum(bytes: &[u8]) -> u32 {
    let mut h = FxHasher::default();
    h.write(bytes);
    let v = h.finish();
    (v ^ (v >> 32)) as u32
}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

// ---------------------------------------------------------------------
// mmap backing (hand-declared against the libc std already links — the
// workspace stays zero-dependency). Linux/macOS share these constants.
// ---------------------------------------------------------------------
#[cfg(unix)]
mod map {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only private mapping of a whole file.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned; no interior mutability.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File) -> Option<Mmap> {
            let len = file.metadata().ok()?.len();
            if len == 0 || len > usize::MAX as u64 {
                return None;
            }
            let len = len as usize;
            // SAFETY: null hint, read-only private mapping over a file we
            // hold open; failure is reported as MAP_FAILED (-1), checked.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mmap { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len come from a successful mmap; the mapping
            // lives until Drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the region map() returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Backing {
    #[cfg(unix)]
    Mapped(map::Mmap),
    Owned(Vec<u8>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Owned(v) => v,
        }
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Chunked-append columnar store writer. Construct with the merged table
/// (header + columns are emitted immediately), then [`append_chunk`] id
/// runs in any order — a streaming producer calls it once per flushed
/// buffer — and [`finish`] seals the file with the footer.
///
/// [`append_chunk`]: StoreWriter::append_chunk
/// [`finish`]: StoreWriter::finish
pub struct StoreWriter<W: Write> {
    sink: W,
    nchunks: u32,
    total_ids: u64,
}

impl<W: Write> StoreWriter<W> {
    pub fn new(
        mut sink: W,
        nranks: usize,
        merge_rounds: u32,
        raw_bytes: usize,
        table: &[EventRecord],
    ) -> io::Result<StoreWriter<W>> {
        // Columns are assembled in memory — the terminal table is the
        // *compressed* side of the trace (hundreds of entries, not
        // millions), only the sequences stream.
        let mut tags = Vec::with_capacity(table.len());
        let mut refs: Vec<u64> = Vec::with_capacity(table.len());
        let mut pool: Vec<u8> = Vec::new();
        // u64 content-hash intern index into the pool; equal payloads
        // share bytes. Buckets hold (offset, len) and are verified by
        // byte comparison, so a hash collision costs a compare, never a
        // wrong reference.
        let mut intern: FxHashMap<u64, Vec<(u32, u32)>> = fx_map_with_capacity(table.len());
        for rec in table {
            let (tag, payload) = encode_record(rec);
            let mut h = FxHasher::default();
            h.write(&payload);
            let key = h.finish();
            let bucket = intern.entry(key).or_default();
            let found = bucket
                .iter()
                .find(|&&(off, len)| {
                    &pool[off as usize..off as usize + len as usize] == payload.as_slice()
                })
                .copied();
            let (off, len) = match found {
                Some(hit) => hit,
                None => {
                    let off = pool.len() as u32;
                    let len = payload.len() as u32;
                    pool.extend_from_slice(&payload);
                    bucket.push((off, len));
                    (off, len)
                }
            };
            tags.push(tag);
            refs.push(((off as u64) << 32) | len as u64);
        }

        let mut head = Writer::new();
        head.buf.extend_from_slice(STORE_MAGIC);
        head.u32(STORE_VERSION);
        head.u32(nranks as u32);
        head.u32(merge_rounds);
        head.u64(raw_bytes as u64);
        head.u32(table.len() as u32);
        debug_assert_eq!(head.buf.len(), HEADER_BYTES);
        head.buf.extend_from_slice(&tags);
        head.buf.resize(pad8(head.buf.len()), 0);
        for r in &refs {
            head.u64(*r);
        }
        head.u64(pool.len() as u64);
        head.buf.extend_from_slice(&pool);
        head.buf.resize(pad8(head.buf.len()), 0);
        sink.write_all(&head.buf)?;
        Ok(StoreWriter { sink, nchunks: 0, total_ids: 0 })
    }

    /// Append one run of ids for `rank`. Runs for the same rank
    /// concatenate in append order.
    pub fn append_chunk(&mut self, rank: u32, ids: &[u32]) -> io::Result<()> {
        let mut w = Writer::new();
        w.u32(CHUNK_MARKER);
        w.u32(rank);
        w.u32(ids.len() as u32);
        let body_start = w.buf.len() + 4; // after the checksum field
        w.u32(0); // checksum placeholder
        for &id in ids {
            w.u32(id);
        }
        let sum = fx_checksum(&w.buf[body_start..]);
        w.buf[body_start - 4..body_start].copy_from_slice(&sum.to_le_bytes());
        debug_assert_eq!(w.buf.len(), CHUNK_HEADER_BYTES + ids.len() * 4);
        self.sink.write_all(&w.buf)?;
        self.nchunks += 1;
        self.total_ids += ids.len() as u64;
        Ok(())
    }

    /// Seal the store and return the sink.
    pub fn finish(mut self) -> io::Result<W> {
        let mut w = Writer::new();
        w.u32(FOOTER_MARKER);
        w.u32(self.nchunks);
        w.u64(self.total_ids);
        debug_assert_eq!(w.buf.len(), FOOTER_BYTES);
        self.sink.write_all(&w.buf)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn encode_record(rec: &EventRecord) -> (u8, Vec<u8>) {
    match rec {
        EventRecord::Comm(e) => {
            let mut w = Writer::new();
            put_event(&mut w, e);
            (w.buf[0], w.buf)
        }
        EventRecord::Compute(s) => {
            let mut w = Writer::new();
            w.counters(&s.repr);
            w.counters(&s.sum);
            w.u64(s.count);
            (KIND_COMPUTE, w.buf)
        }
    }
}

/// Serialize a whole merged trace in store format (sequences chunked at
/// [`DEFAULT_CHUNK_IDS`] ids).
pub fn store_to_bytes(t: &GlobalTrace) -> Vec<u8> {
    let mut w = StoreWriter::new(
        Vec::new(),
        t.nranks,
        t.merge_rounds,
        t.raw_bytes,
        &t.table,
    )
    .expect("Vec sink cannot fail");
    for (rank, seq) in t.seqs.iter().enumerate() {
        for chunk in seq.chunks(DEFAULT_CHUNK_IDS) {
            w.append_chunk(rank as u32, chunk).expect("Vec sink cannot fail");
        }
    }
    w.finish().expect("Vec sink cannot fail")
}

/// Check whether `path` starts with the columnar-store magic.
pub fn sniff_store(path: &Path) -> io::Result<bool> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut f = std::fs::File::open(path)?;
    match f.read_exact(&mut head) {
        Ok(()) => Ok(&head == STORE_MAGIC),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

/// Write a whole merged trace to a store file.
pub fn write_store(t: &GlobalTrace, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    let mut sw = StoreWriter::new(&mut w, t.nranks, t.merge_rounds, t.raw_bytes, &t.table)?;
    for (rank, seq) in t.seqs.iter().enumerate() {
        for chunk in seq.chunks(DEFAULT_CHUNK_IDS) {
            sw.append_chunk(rank as u32, chunk)?;
        }
    }
    sw.finish()?;
    w.flush()
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct ChunkMeta {
    /// Byte offset of the ids array.
    ids_off: usize,
    count: usize,
}

/// An opened columnar trace store: validated once, then served zero-copy.
pub struct TraceStore {
    backing: Backing,
    nranks: usize,
    merge_rounds: u32,
    raw_bytes: usize,
    table_len: usize,
    tags_off: usize,
    refs_off: usize,
    pool_off: usize,
    pool_len: usize,
    chunks: Vec<ChunkMeta>,
    /// Chunk indices per rank, in append order.
    by_rank: Vec<Vec<u32>>,
}

impl TraceStore {
    /// Open a store file, mapping it into memory where the platform
    /// allows (falling back to a heap read).
    pub fn open(path: &Path) -> Result<TraceStore, Box<dyn std::error::Error>> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            if let Some(m) = map::Mmap::map(&file) {
                return Ok(TraceStore::parse(Backing::Mapped(m))?);
            }
        }
        let bytes = std::fs::read(path)?;
        Ok(TraceStore::parse(Backing::Owned(bytes))?)
    }

    /// Open a store from an in-memory image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TraceStore, StoreError> {
        TraceStore::parse(Backing::Owned(bytes))
    }

    fn parse(backing: Backing) -> Result<TraceStore, StoreError> {
        let b = backing.bytes();
        if b.len() < HEADER_BYTES + FOOTER_BYTES {
            return Err(StoreError::BadHeader("file shorter than header + footer"));
        }
        if &b[..8] != STORE_MAGIC {
            return Err(StoreError::Wire(WireError::BadMagic));
        }
        let mut r = Reader::new(&b[8..HEADER_BYTES]);
        let version = r.u32().expect("sized above");
        if version != STORE_VERSION {
            return Err(StoreError::Wire(WireError::UnsupportedVersion(version as u8)));
        }
        let nranks = r.u32().expect("sized above") as usize;
        let merge_rounds = r.u32().expect("sized above");
        let raw_bytes = r.u64().expect("sized above") as usize;
        let table_len = r.u32().expect("sized above") as usize;

        let tags_off = HEADER_BYTES;
        let refs_off = pad8(tags_off + table_len);
        let pool_len_off = refs_off.checked_add(table_len * 8).ok_or(StoreError::BadHeader(
            "table length overflows",
        ))?;
        if pool_len_off + 8 > b.len() - FOOTER_BYTES {
            return Err(StoreError::BadHeader("table columns overrun file"));
        }
        let pool_off = pool_len_off + 8;
        let pool_len =
            u64::from_le_bytes(b[pool_len_off..pool_off].try_into().unwrap()) as usize;
        let chunks_off = pad8(pool_off.checked_add(pool_len).ok_or(StoreError::BadHeader(
            "payload pool length overflows",
        ))?);
        let footer_off = b.len() - FOOTER_BYTES;
        if chunks_off > footer_off {
            return Err(StoreError::BadHeader("payload pool overruns file"));
        }

        // Walk the chunk region, validating structure and checksums.
        let mut chunks = Vec::new();
        let mut by_rank: Vec<Vec<u32>> = vec![Vec::new(); nranks];
        let mut pos = chunks_off;
        let mut total_ids = 0u64;
        while pos < footer_off {
            let index = chunks.len();
            if pos + CHUNK_HEADER_BYTES > footer_off {
                return Err(StoreError::BadChunk { index, reason: "truncated header" });
            }
            let mut ch = Reader::new(&b[pos..pos + CHUNK_HEADER_BYTES]);
            if ch.u32().expect("sized above") != CHUNK_MARKER {
                return Err(StoreError::BadChunk { index, reason: "bad marker" });
            }
            let rank = ch.u32().expect("sized above") as usize;
            let count = ch.u32().expect("sized above") as usize;
            let sum = ch.u32().expect("sized above");
            if rank >= nranks {
                return Err(StoreError::BadChunk { index, reason: "rank out of range" });
            }
            let ids_off = pos + CHUNK_HEADER_BYTES;
            let ids_bytes = count.checked_mul(4).ok_or(StoreError::BadChunk {
                index,
                reason: "count overflows",
            })?;
            if ids_off + ids_bytes > footer_off {
                return Err(StoreError::BadChunk { index, reason: "ids overrun file" });
            }
            if fx_checksum(&b[ids_off..ids_off + ids_bytes]) != sum {
                return Err(StoreError::ChecksumMismatch { index });
            }
            by_rank[rank].push(index as u32);
            chunks.push(ChunkMeta { ids_off, count });
            total_ids += count as u64;
            pos = ids_off + ids_bytes;
        }
        let mut fr = Reader::new(&b[footer_off..]);
        if fr.u32().expect("sized above") != FOOTER_MARKER {
            return Err(StoreError::BadFooter("bad marker"));
        }
        if fr.u32().expect("sized above") as usize != chunks.len() {
            return Err(StoreError::BadFooter("chunk count mismatch"));
        }
        if fr.u64().expect("sized above") != total_ids {
            return Err(StoreError::BadFooter("id count mismatch"));
        }

        Ok(TraceStore {
            backing,
            nranks,
            merge_rounds,
            raw_bytes,
            table_len,
            tags_off,
            refs_off,
            pool_off,
            pool_len,
            chunks,
            by_rank,
        })
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    pub fn merge_rounds(&self) -> u32 {
        self.merge_rounds
    }

    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    pub fn table_len(&self) -> usize {
        self.table_len
    }

    /// The kind column: one byte per table entry (a comm event's wire tag,
    /// or `0xFF` for compute events). Zero-copy.
    pub fn kinds(&self) -> &[u8] {
        &self.backing.bytes()[self.tags_off..self.tags_off + self.table_len]
    }

    /// Decode the terminal table. This is the only deserializing read —
    /// tables are the compressed side of the trace.
    pub fn table(&self) -> Result<Vec<EventRecord>, StoreError> {
        let b = self.backing.bytes();
        let kinds = self.kinds();
        let mut table = Vec::with_capacity(self.table_len);
        for (i, &kind) in kinds.iter().enumerate() {
            let ref_off = self.refs_off + i * 8;
            let packed = u64::from_le_bytes(b[ref_off..ref_off + 8].try_into().unwrap());
            let (off, len) = ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize);
            if off + len > self.pool_len {
                return Err(StoreError::BadHeader("payload reference overruns pool"));
            }
            let payload = &b[self.pool_off + off..self.pool_off + off + len];
            if kind == KIND_COMPUTE {
                let mut r = Reader::new(payload);
                let repr = r.counters()?;
                let sum = r.counters()?;
                let count = r.u64()?;
                table.push(EventRecord::Compute(ComputeStats { repr, sum, count }));
            } else {
                let mut r = Reader::new(payload);
                let e = get_event(&mut r)?;
                if payload.first() != Some(&kind) {
                    return Err(StoreError::BadHeader("kind column disagrees with payload"));
                }
                table.push(EventRecord::Comm(e));
            }
        }
        Ok(table)
    }

    pub fn seq_len(&self, rank: usize) -> usize {
        self.by_rank[rank].iter().map(|&c| self.chunks[c as usize].count).sum()
    }

    /// Iterate a rank's id chunks in append order. On little-endian hosts
    /// with an aligned backing each chunk is a borrowed `&[u32]` view of
    /// the file — no copy, no decode; otherwise the chunk is decoded.
    pub fn rank_chunks(&self, rank: usize) -> impl Iterator<Item = Cow<'_, [u32]>> {
        self.by_rank[rank].iter().map(|&c| {
            let m = &self.chunks[c as usize];
            self.ids_at(m.ids_off, m.count)
        })
    }

    /// Materialize one rank's full sequence.
    pub fn seq(&self, rank: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.seq_len(rank));
        for c in self.rank_chunks(rank) {
            out.extend_from_slice(&c);
        }
        out
    }

    /// True if id reads are served as borrowed casts (little-endian host,
    /// 4-byte-aligned backing) rather than decode copies.
    pub fn zero_copy(&self) -> bool {
        cfg!(target_endian = "little")
            && (self.backing.bytes().as_ptr() as usize).is_multiple_of(4)
    }

    fn ids_at(&self, off: usize, count: usize) -> Cow<'_, [u32]> {
        let bytes = &self.backing.bytes()[off..off + count * 4];
        if cfg!(target_endian = "little") && (bytes.as_ptr() as usize).is_multiple_of(4) {
            // SAFETY: length and 4-byte alignment checked; every bit
            // pattern is a valid u32; lifetime is tied to &self's backing.
            Cow::Borrowed(unsafe {
                std::slice::from_raw_parts(bytes.as_ptr() as *const u32, count)
            })
        } else {
            Cow::Owned(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
    }

    /// Materialize the whole store as a [`GlobalTrace`].
    pub fn to_global_trace(&self) -> Result<GlobalTrace, StoreError> {
        Ok(GlobalTrace {
            nranks: self.nranks,
            table: self.table()?,
            seqs: (0..self.nranks).map(|r| self.seq(r)).collect(),
            raw_bytes: self.raw_bytes,
            merge_rounds: self.merge_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CommEvent;
    use siesta_perfmodel::CounterVec;

    fn sample() -> GlobalTrace {
        GlobalTrace {
            nranks: 3,
            table: vec![
                EventRecord::Comm(CommEvent::Send { rel: 1, tag: 3, bytes: 4096, comm: 0 }),
                EventRecord::Compute(ComputeStats {
                    repr: CounterVec::new(1.5, 2.5, 3.5, 4.5, 5.5, 6.5),
                    sum: CounterVec::new(3.0, 5.0, 7.0, 9.0, 11.0, 13.0),
                    count: 2,
                }),
                EventRecord::Comm(CommEvent::Send { rel: 1, tag: 3, bytes: 4096, comm: 1 }),
                EventRecord::Comm(CommEvent::Waitall { reqs: vec![0, 1, 2] }),
            ],
            seqs: vec![vec![0, 1, 2, 3, 0, 1], vec![1, 0], vec![]],
            raw_bytes: 12345,
            merge_rounds: 2,
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let t = sample();
        let store = TraceStore::from_bytes(store_to_bytes(&t)).expect("parse");
        let u = store.to_global_trace().expect("decode");
        assert_eq!(t.nranks, u.nranks);
        assert_eq!(t.merge_rounds, u.merge_rounds);
        assert_eq!(t.raw_bytes, u.raw_bytes);
        assert_eq!(t.seqs, u.seqs);
        assert_eq!(format!("{:?}", t.table), format!("{:?}", u.table));
    }

    #[test]
    fn round_trips_through_file_mmap() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("siesta-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.siestatrace");
        write_store(&t, &path).expect("write");
        let store = TraceStore::open(&path).expect("open");
        assert_eq!(store.seq(0), t.seqs[0]);
        assert_eq!(store.seq(2), t.seqs[2]);
        assert_eq!(store.to_global_trace().unwrap().seqs, t.seqs);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(store.zero_copy(), "mmap of a page-aligned file must serve borrowed ids");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_append_spans_ranks() {
        // A streaming producer interleaves small chunks across ranks; the
        // reader must reassemble per-rank order.
        let mut w = StoreWriter::new(Vec::new(), 2, 1, 10, &sample().table).unwrap();
        w.append_chunk(0, &[0, 1]).unwrap();
        w.append_chunk(1, &[3]).unwrap();
        w.append_chunk(0, &[2]).unwrap();
        w.append_chunk(1, &[]).unwrap();
        w.append_chunk(0, &[3, 0]).unwrap();
        let store = TraceStore::from_bytes(w.finish().unwrap()).expect("parse");
        assert_eq!(store.seq(0), vec![0, 1, 2, 3, 0]);
        assert_eq!(store.seq(1), vec![3]);
        assert_eq!(store.rank_chunks(0).count(), 3);
    }

    #[test]
    fn payload_pool_interns_duplicates() {
        // Two identical Send bodies (different comm) share nothing, but
        // genuinely equal records do: table entries 0 and 2 differ only in
        // comm, so force a true duplicate and check the pool stays flat.
        let mut t = sample();
        let dup = t.table[0].clone();
        t.table.push(dup);
        let with_dup = store_to_bytes(&t).len();
        t.table.push(EventRecord::Comm(CommEvent::Send {
            rel: 9,
            tag: 9,
            bytes: 999,
            comm: 9,
        }));
        let with_unique = store_to_bytes(&t).len();
        // The duplicate added only a column slot (9 bytes with padding);
        // the unique event added a column slot *and* pool bytes.
        assert!(with_unique > with_dup + 8);
    }

    #[test]
    fn rejects_corruption_structurally() {
        let bytes = store_to_bytes(&sample());
        // Truncations at every section boundary and a few interior points.
        for cut in [0usize, 7, 16, 31, 40, bytes.len() - FOOTER_BYTES, bytes.len() - 1] {
            assert!(TraceStore::from_bytes(bytes[..cut].to_vec()).is_err(), "cut {cut}");
        }
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0x40;
        assert!(matches!(
            TraceStore::from_bytes(b),
            Err(StoreError::Wire(WireError::BadMagic))
        ));
        // Flip one id bit: the chunk checksum must catch it.
        let mut b = bytes.clone();
        let ids_somewhere = b.len() - FOOTER_BYTES - 3;
        b[ids_somewhere] ^= 1;
        assert!(matches!(
            TraceStore::from_bytes(b),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Corrupt a chunk rank to out-of-range.
        let store = TraceStore::from_bytes(bytes.clone()).unwrap();
        let first_chunk_header = store.chunks[0].ids_off - CHUNK_HEADER_BYTES;
        let mut b = bytes.clone();
        b[first_chunk_header + 4..first_chunk_header + 8]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            TraceStore::from_bytes(b),
            Err(StoreError::BadChunk { reason: "rank out of range", .. })
        ));
        // Corrupt the footer id count.
        let mut b = bytes;
        let n = b.len();
        b[n - 8..n].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(TraceStore::from_bytes(b), Err(StoreError::BadFooter(_))));
    }

    #[test]
    fn empty_table_and_empty_seqs() {
        let t = GlobalTrace {
            nranks: 1,
            table: vec![],
            seqs: vec![vec![]],
            raw_bytes: 0,
            merge_rounds: 0,
        };
        let store = TraceStore::from_bytes(store_to_bytes(&t)).expect("parse");
        assert_eq!(store.table().unwrap(), vec![]);
        assert_eq!(store.seq(0), Vec::<u32>::new());
    }
}
